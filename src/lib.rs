//! # query-pricing
//!
//! A reproduction of **"Revenue Maximization for Query Pricing"**
//! (Chawla, Deep, Koutris, Teng — PVLDB 13(1), 2019) as a Rust library.
//!
//! The crate is a thin facade over the workspace members:
//!
//! * [`ItemSet`] (`qp-core`) — the compact bitset over support-database
//!   indices that conflict sets and hyperedges are made of.
//! * [`lp`] — a dense two-phase simplex LP solver (primal + dual).
//! * [`qdb`] — a minimal in-memory relational engine with tuple deltas.
//! * [`pricing`] — hypergraphs, pricing-function classes, and the
//!   [`pricing::algorithms`] registry: every algorithm of the paper (UBP,
//!   UIP, LPIP, CIP, Layering, XOS) as a [`PricingAlgorithm`] trait object,
//!   discoverable with `algorithms::all()` / `algorithms::by_name("LPIP")`,
//!   plus revenue upper bounds.
//! * [`market`] — the Qirana-style query-pricing framework: support sets,
//!   conflict sets, arbitrage-freeness, and the concurrent [`market::Broker`]
//!   engine (assembled with [`market::BrokerBuilder`], re-priceable under
//!   live read traffic, batch quoting, per-sale revenue ledger).
//! * [`workloads`] — dataset generators (world, TPC-H, SSB), the four query
//!   workloads of the paper, buyer-valuation models, and buyer arrival
//!   processes.
//! * [`sim`] — the discrete-event market simulator: buyer populations,
//!   tick-based arrivals, concurrent quote-and-settle through the
//!   transport-agnostic settle driver, pluggable live-repricing policies,
//!   and the four-scenario library (`steady_state`, `flash_crowd`,
//!   `shifting_demand`, `arbitrage_probe`).
//! * [`server`] — the sharded TCP quote-serving front-end: a
//!   length-prefixed binary protocol (`QUOTE`/`PURCHASE`/`STATS`/
//!   `REPRICE`, see `PROTOCOL.md`), broker replicas routed by bundle hash,
//!   per-shard quote caches invalidated by the broker's pricing epoch, and
//!   the `loadgen`/`serve` binaries.
//!
//! ## Quickstart
//!
//! ```
//! use query_pricing::pricing::{Hypergraph, algorithms};
//!
//! // Three support databases (items 0,1,2) and two query bundles.
//! let mut h = Hypergraph::new(3);
//! h.add_edge([1usize], 10.0);      // conflict set {D2}, valuation 10
//! h.add_edge([0usize, 1], 20.0);   // conflict set {D1,D2}, valuation 20
//!
//! // Pick an algorithm from the registry — or iterate algorithms::all().
//! let ubp = algorithms::by_name("UBP").expect("registered").run(&h);
//! assert!(ubp.revenue >= 20.0);
//! ```
//!
//! ## A broker in four lines
//!
//! ```no_run
//! use query_pricing::market::{Broker, SupportConfig};
//! use query_pricing::pricing::Pricing;
//! use query_pricing::qdb::{Database, Query};
//!
//! # let db = Database::new();
//! let broker = Broker::builder(db)
//!     .support_config(SupportConfig::with_size(500))
//!     .algorithm("LPIP")                       // any registry name
//!     .anticipate(Query::scan("User"), 25.0)   // expected buyers
//!     .build()
//!     .unwrap();
//! let quotes = broker.quote_batch(&[Query::scan("User")]);
//! // Re-price through &self — safe while other threads keep quoting.
//! broker.set_pricing(Pricing::UniformBundle { price: quotes[0].price });
//! ```
pub use qp_core::ItemSet;
pub use qp_lp as lp;
pub use qp_market as market;
pub use qp_pricing as pricing;
pub use qp_pricing::algorithms::PricingAlgorithm;
pub use qp_qdb as qdb;
pub use qp_server as server;
pub use qp_sim as sim;
pub use qp_workloads as workloads;

/// Version of the library (mirrors the crate version).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_exist() {
        assert!(!super::VERSION.is_empty());
    }
}
