//! Compare all six pricing algorithms on one workload / valuation model.
//!
//! ```bash
//! cargo run --release --example algorithm_comparison
//! ```
//!
//! A miniature version of the paper's Figure 5: build the skewed workload's
//! hypergraph, draw valuations from a few different models, and print the
//! normalized revenue of every algorithm side by side.

use query_pricing::market::{build_hypergraph, DeltaConflictEngine, SupportConfig, SupportSet};
use query_pricing::pricing::algorithms::{
    capacity_item_price, layering, lp_item_price, uniform_bundle_price, uniform_item_price,
    xos_pricing, CipConfig, LpipConfig,
};
use query_pricing::pricing::bounds;
use query_pricing::workloads::queries::skewed;
use query_pricing::workloads::valuations::{assign_valuations, ValuationModel};
use query_pricing::workloads::world::{self, WorldConfig};
use query_pricing::workloads::Scale;

fn main() {
    let cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&cfg);
    let workload = skewed::workload(&db, cfg.countries);
    let support = SupportSet::generate(&db, &SupportConfig::with_size(250));
    let engine = DeltaConflictEngine::new(&db, &support);
    let base = build_hypergraph(&engine, &workload.queries);
    println!(
        "skewed workload: {} queries, support {}, max degree B = {}",
        base.num_edges(),
        support.len(),
        base.max_degree()
    );

    let lpip_cfg = LpipConfig { max_lps: Some(16), ..Default::default() };
    let cip_cfg = CipConfig { epsilon: 2.0, ..Default::default() };

    let models = [
        ValuationModel::SampledUniform { k: 100.0 },
        ValuationModel::SampledZipf { a: 2.0, max_rank: 10_000 },
        ValuationModel::ScaledExponential { k: 1.0 },
        ValuationModel::AdditiveUniform { k: 100 },
    ];

    println!(
        "\n{:<22} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "valuation model", "UBP", "UIP", "LPIP", "CIP", "Layer", "XOS"
    );
    for model in &models {
        let mut h = base.clone();
        assign_valuations(&mut h, model, 1234);
        let sum = bounds::sum_of_valuations(&h);
        let norm = |r: f64| r / sum;
        let row = [
            uniform_bundle_price(&h).revenue,
            uniform_item_price(&h).revenue,
            lp_item_price(&h, &lpip_cfg).revenue,
            capacity_item_price(&h, &cip_cfg).revenue,
            layering(&h).revenue,
            xos_pricing(&h, &lpip_cfg, &cip_cfg).revenue,
        ];
        println!(
            "{:<22} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            model.label(),
            norm(row[0]),
            norm(row[1]),
            norm(row[2]),
            norm(row[3]),
            norm(row[4]),
            norm(row[5]),
        );
    }
    println!("\n(values are revenue normalized by the sum of valuations)");
}
