//! Compare all six pricing algorithms on one workload / valuation model.
//!
//! ```bash
//! cargo run --release --example algorithm_comparison
//! ```
//!
//! A miniature version of the paper's Figure 5: build the skewed workload's
//! hypergraph, draw valuations from a few different models, and print the
//! normalized revenue of every registry algorithm side by side. The roster
//! comes from `algorithms::all_with`, so new registry entries show up as new
//! columns without touching this example.

use query_pricing::market::{build_hypergraph, DeltaConflictEngine, SupportConfig, SupportSet};
use query_pricing::pricing::algorithms::{self, CipConfig, LpipConfig};
use query_pricing::pricing::bounds;
use query_pricing::workloads::queries::skewed;
use query_pricing::workloads::valuations::{assign_valuations, ValuationModel};
use query_pricing::workloads::world::{self, WorldConfig};
use query_pricing::workloads::Scale;

fn main() {
    let cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&cfg);
    let workload = skewed::workload(&db, cfg.countries);
    let support = SupportSet::generate(&db, &SupportConfig::with_size(250));
    let engine = DeltaConflictEngine::new(&db, &support);
    let base = build_hypergraph(&engine, &workload.queries);
    println!(
        "skewed workload: {} queries, support {}, max degree B = {}",
        base.num_edges(),
        support.len(),
        base.max_degree()
    );

    let lpip_cfg = LpipConfig {
        max_lps: Some(16),
        ..Default::default()
    };
    let cip_cfg = CipConfig {
        epsilon: 2.0,
        ..Default::default()
    };
    let roster = algorithms::all_with(&lpip_cfg, &cip_cfg);

    let models = [
        ValuationModel::SampledUniform { k: 100.0 },
        ValuationModel::SampledZipf {
            a: 2.0,
            max_rank: 10_000,
        },
        ValuationModel::ScaledExponential { k: 1.0 },
        ValuationModel::AdditiveUniform { k: 100 },
    ];

    print!("\n{:<22}", "valuation model");
    for algo in &roster {
        print!(" {:>8}", algo.name());
    }
    println!();
    for model in &models {
        let mut h = base.clone();
        assign_valuations(&mut h, model, 1234);
        let sum = bounds::sum_of_valuations(&h);
        print!("{:<22}", model.label());
        for algo in &roster {
            print!(" {:>8.3}", algo.run(&h).revenue / sum);
        }
        println!();
    }
    println!("\n(values are revenue normalized by the sum of valuations)");
}
