//! The support-size / revenue trade-off (paper §6.5, Figure 8).
//!
//! ```bash
//! cargo run --release --example support_size_tradeoff
//! ```
//!
//! A larger support set gives the pricing function more "items" to
//! discriminate between queries — and therefore more revenue — at the cost of
//! more expensive conflict-set computation. This example sweeps the support
//! size on the skewed workload and reports revenue and construction time.

use std::time::Instant;

use query_pricing::market::{build_hypergraph, DeltaConflictEngine, SupportConfig, SupportSet};
use query_pricing::pricing::algorithms::{self, CipConfig, LpipConfig};
use query_pricing::pricing::bounds;
use query_pricing::workloads::queries::skewed;
use query_pricing::workloads::valuations::{assign_valuations, ValuationModel};
use query_pricing::workloads::world::{self, WorldConfig};
use query_pricing::workloads::Scale;

fn main() {
    let cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&cfg);
    let workload = skewed::workload(&db, cfg.countries);
    let lpip_cfg = LpipConfig {
        max_lps: Some(12),
        ..Default::default()
    };
    let ubp = algorithms::by_name("UBP").expect("UBP is registered");
    let lpip = algorithms::by_name_with("LPIP", &lpip_cfg, &CipConfig::default())
        .expect("LPIP is registered");

    println!(
        "{:>6} {:>14} {:>16} {:>16}",
        "|S|", "construction", "UBP normalized", "LPIP normalized"
    );
    for support_size in [25usize, 50, 100, 200, 400] {
        let support = SupportSet::generate(&db, &SupportConfig::with_size(support_size));
        let start = Instant::now();
        let engine = DeltaConflictEngine::new(&db, &support);
        let mut h = build_hypergraph(&engine, &workload.queries);
        let construction = start.elapsed();

        assign_valuations(&mut h, &ValuationModel::SampledUniform { k: 100.0 }, 7);
        let sum = bounds::sum_of_valuations(&h);
        println!(
            "{:>6} {:>12.2?}s {:>16.3} {:>16.3}",
            support_size,
            construction.as_secs_f64(),
            ubp.run(&h).revenue / sum,
            lpip.run(&h).revenue / sum
        );
    }
    println!("\nUBP is insensitive to the support size; item pricing keeps improving with it.");
}
