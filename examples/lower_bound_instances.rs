//! The worst-case constructions behind the paper's lower bounds (Lemmas 2–4).
//!
//! ```bash
//! cargo run --release --example lower_bound_instances
//! ```
//!
//! Shows concretely why neither uniform bundle pricing nor item pricing can
//! be a constant-factor approximation on its own — and why the paper studies
//! both (plus XOS combinations).

use query_pricing::pricing::algorithms::{
    lp_item_price, uniform_bundle_price, uniform_item_price, LpipConfig,
};
use query_pricing::pricing::{bounds, instances};

fn main() {
    // Lemma 2: item pricing beats uniform bundle pricing by Θ(log m).
    let h = instances::harmonic_singletons(512);
    println!("Lemma 2 — harmonic singletons (m = 512)");
    println!("  sum of valuations      : {:.2}", bounds::sum_of_valuations(&h));
    println!("  best uniform bundle    : {:.2}", uniform_bundle_price(&h).revenue);
    println!("  LPIP item pricing      : {:.2}", lp_item_price(&h, &LpipConfig::default()).revenue);

    // Lemma 3: uniform bundle pricing beats item pricing by Θ(log n).
    let h = instances::partition_classes(64);
    println!("\nLemma 3 — partition classes (n = 64, m = {})", h.num_edges());
    println!("  sum of valuations      : {:.2}", bounds::sum_of_valuations(&h));
    println!("  best uniform bundle    : {:.2}", uniform_bundle_price(&h).revenue);
    println!("  best uniform item price: {:.2}", uniform_item_price(&h).revenue);

    // Lemma 4: both classes lose against the optimal subadditive pricing.
    let t = 4;
    let h = instances::laminar_family(t);
    println!("\nLemma 4 — laminar family (t = {t}, m = {})", h.num_edges());
    println!("  optimal subadditive    : {:.2}", instances::laminar_optimal_revenue(t));
    println!("  best uniform bundle    : {:.2}", uniform_bundle_price(&h).revenue);
    println!("  best uniform item price: {:.2}", uniform_item_price(&h).revenue);
    println!(
        "  LPIP item pricing      : {:.2}",
        lp_item_price(&h, &LpipConfig { max_lps: Some(8), ..Default::default() }).revenue
    );
}
