//! The worst-case constructions behind the paper's lower bounds (Lemmas 2–4).
//!
//! ```bash
//! cargo run --release --example lower_bound_instances
//! ```
//!
//! Shows concretely why neither uniform bundle pricing nor item pricing can
//! be a constant-factor approximation on its own — and why the paper studies
//! both (plus XOS combinations).

use query_pricing::pricing::algorithms::{self, CipConfig, LpipConfig};
use query_pricing::pricing::{bounds, instances};

fn main() {
    let ubp = algorithms::by_name("UBP").expect("UBP is registered");
    let uip = algorithms::by_name("UIP").expect("UIP is registered");
    let lpip = algorithms::by_name("LPIP").expect("LPIP is registered");

    // Lemma 2: item pricing beats uniform bundle pricing by Θ(log m).
    let h = instances::harmonic_singletons(512);
    println!("Lemma 2 — harmonic singletons (m = 512)");
    println!(
        "  sum of valuations      : {:.2}",
        bounds::sum_of_valuations(&h)
    );
    println!("  best uniform bundle    : {:.2}", ubp.run(&h).revenue);
    println!("  LPIP item pricing      : {:.2}", lpip.run(&h).revenue);

    // Lemma 3: uniform bundle pricing beats item pricing by Θ(log n).
    let h = instances::partition_classes(64);
    println!(
        "\nLemma 3 — partition classes (n = 64, m = {})",
        h.num_edges()
    );
    println!(
        "  sum of valuations      : {:.2}",
        bounds::sum_of_valuations(&h)
    );
    println!("  best uniform bundle    : {:.2}", ubp.run(&h).revenue);
    println!("  best uniform item price: {:.2}", uip.run(&h).revenue);

    // Lemma 4: both classes lose against the optimal subadditive pricing.
    let t = 4;
    let h = instances::laminar_family(t);
    let capped_lpip = algorithms::by_name_with(
        "LPIP",
        &LpipConfig {
            max_lps: Some(8),
            ..Default::default()
        },
        &CipConfig::default(),
    )
    .expect("LPIP is registered");
    println!(
        "\nLemma 4 — laminar family (t = {t}, m = {})",
        h.num_edges()
    );
    println!(
        "  optimal subadditive    : {:.2}",
        instances::laminar_optimal_revenue(t)
    );
    println!("  best uniform bundle    : {:.2}", ubp.run(&h).revenue);
    println!("  best uniform item price: {:.2}", uip.run(&h).revenue);
    println!(
        "  LPIP item pricing      : {:.2}",
        capped_lpip.run(&h).revenue
    );
}
