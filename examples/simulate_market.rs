//! A live data market under a flash crowd.
//!
//! ```bash
//! cargo run --release --example simulate_market
//! ```
//!
//! Builds a broker over the `world` dataset, priced with UIP for a slice of
//! the paper's skewed workload, then replays the `flash_crowd` scenario from
//! the `qp-sim` library: Poisson background traffic, a burst of
//! rubberneckers mid-run, and a repricing policy that re-runs the algorithm
//! on observed demand every five ticks while buyers keep quoting from
//! worker threads. Prints the revenue-over-time table the simulator's
//! `BENCH_sim.json` artifact is built from.

use query_pricing::market::{Broker, SupportConfig};
use query_pricing::sim::{library, SimConfig};
use query_pricing::workloads::queries::skewed;
use query_pricing::workloads::world::{self, WorldConfig};
use query_pricing::workloads::Scale;

fn main() {
    // The seller's dataset and the anticipated buyer queries.
    let cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&cfg);
    let pool = skewed::workload(&db, cfg.countries).queries[..80].to_vec();
    println!(
        "world dataset: {} tables, {} tuples; {} anticipated queries",
        db.num_tables(),
        db.total_rows(),
        pool.len()
    );

    let broker = Broker::builder(db)
        .support_config(SupportConfig::with_size(120))
        .algorithm("UIP")
        .anticipate_all(
            pool.iter()
                .enumerate()
                .map(|(i, q)| (q.clone(), 10.0 + (i % 9) as f64 * 5.0)),
        )
        .build()
        .expect("UIP is a registered algorithm");

    // The flash-crowd scenario: traffic spikes mid-run, pricing follows.
    let scenario = library(&pool, 30)
        .into_iter()
        .find(|s| s.name == "flash_crowd")
        .expect("flash_crowd is in the scenario library");
    println!("scenario: {} — {}\n", scenario.name, scenario.description);

    let report = scenario.run(
        &broker,
        &SimConfig {
            seed: 7,
            algorithm: "UIP".to_string(),
            ..SimConfig::default()
        },
    );

    println!("tick  arrivals  sold  declined   revenue   cumulative");
    let cumulative = report.cumulative_revenue();
    for (t, cum) in report.ticks.iter().zip(&cumulative) {
        let repriced = if report.repricings.iter().any(|r| r.tick == t.tick) {
            "  <- repriced"
        } else {
            ""
        };
        println!(
            "{:>4}  {:>8}  {:>4}  {:>8}  {:>8.2}  {:>10.2}{repriced}",
            t.tick, t.arrivals, t.sold, t.declined, t.revenue, cum
        );
    }
    println!("\n{}", report.summary());

    // The broker's ledger saw the same story, tick-stamped.
    let ledger = broker.ledger();
    println!(
        "ledger: {} sales totalling {:.2}, {} declines leaving {:.2} on the table, conversion {:.1}%",
        ledger.len(),
        ledger.total(),
        ledger.declined_count(),
        ledger.declined_total(),
        100.0 * ledger.conversion_rate().unwrap_or(0.0)
    );
}
