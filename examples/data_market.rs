//! A small data marketplace over the `world` dataset.
//!
//! ```bash
//! cargo run --release --example data_market
//! ```
//!
//! Recreates the setting that motivates the paper's introduction: a seller
//! lists the `world` database, buyers ask aggregate and lookup queries with
//! different willingness to pay, and the broker picks an item pricing that
//! maximizes revenue while staying arbitrage-free. The example also runs the
//! empirical arbitrage checks on the resulting prices.

use query_pricing::market::{check_all, Broker, PurchaseOutcome, SupportConfig};
use query_pricing::pricing::{algorithms, bounds, Hypergraph};
use query_pricing::qdb::pretty;
use query_pricing::qdb::{AggFunc, Expr, Query};
use query_pricing::workloads::world::{self, WorldConfig};
use query_pricing::workloads::Scale;

fn main() {
    // The seller's dataset.
    let db = world::generate(&WorldConfig::at_scale(Scale::Test));
    println!(
        "world dataset: {} tables, {} tuples",
        db.num_tables(),
        db.total_rows()
    );

    // Buyers: a data analyst, a journalist, a hedge fund, a student.
    let buyers: Vec<(&str, Query, f64)> = vec![
        (
            "analyst: population by continent",
            Query::scan("Country")
                .aggregate(vec!["Continent"], vec![(AggFunc::Sum, Some("Population"), "pop")]),
            40.0,
        ),
        (
            "journalist: Caribbean countries",
            Query::scan("Country")
                .filter(Expr::col("Region").eq(Expr::lit("Caribbean")))
                .project_cols(&["Name", "Population"]),
            15.0,
        ),
        (
            "hedge fund: the full Country table",
            Query::scan("Country"),
            120.0,
        ),
        (
            "student: number of distinct government forms",
            Query::scan("Country")
                .aggregate(vec![], vec![(AggFunc::CountDistinct, Some("GovernmentForm"), "g")]),
            5.0,
        ),
        (
            "NGO: average life expectancy in Africa",
            Query::scan("Country")
                .filter(Expr::col("Continent").eq(Expr::lit("Africa")))
                .aggregate(vec![], vec![(AggFunc::Avg, Some("LifeExpectancy"), "le")]),
            12.0,
        ),
    ];

    // Broker + conflict sets.
    let mut broker = Broker::new(db, &SupportConfig::with_size(300));
    let mut h = Hypergraph::new(broker.support().len());
    let mut conflict_sets = Vec::new();
    for (_, q, v) in &buyers {
        let cs = broker.conflict_set(q);
        h.add_edge(cs.clone(), *v);
        conflict_sets.push(cs);
    }

    // Compare the pricing algorithms and install the best item pricing.
    let sum = bounds::sum_of_valuations(&h);
    let ubp = algorithms::uniform_bundle_price(&h);
    let lpip = algorithms::lp_item_price(&h, &Default::default());
    let layering = algorithms::layering(&h);
    println!("\nrevenue (out of {sum:.1}):");
    for out in [&ubp, &lpip, &layering] {
        println!("  {:<9} {:>7.2}", out.algorithm, out.revenue);
    }
    let report = check_all(&conflict_sets, &lpip.pricing);
    println!("arbitrage-free: {}", report.is_arbitrage_free());
    broker.set_pricing(lpip.pricing.clone());

    // Sell.
    println!();
    let mut sold = 0;
    for (who, q, budget) in &buyers {
        match broker.purchase(q, *budget).unwrap() {
            PurchaseOutcome::Sold { price, answer } => {
                sold += 1;
                println!("SOLD  {who} for {price:.2}");
                if answer.len() <= 4 {
                    print!("{}", pretty::render_relation(&answer, 4));
                }
            }
            PurchaseOutcome::Declined { price } => {
                println!("PASS  {who}: quoted {price:.2} > budget {budget:.2}");
            }
        }
    }
    println!(
        "\nrealized revenue: {:.2} from {sold}/{} buyers",
        broker.realized_revenue(),
        buyers.len()
    );
}
