//! A small data marketplace over the `world` dataset.
//!
//! ```bash
//! cargo run --release --example data_market
//! ```
//!
//! Recreates the setting that motivates the paper's introduction: a seller
//! lists the `world` database, buyers ask aggregate and lookup queries with
//! different willingness to pay, and the broker A/B-tests registry pricing
//! algorithms — swapping the live pricing through `set_pricing(&self, ...)`
//! — before selling. The example also runs the empirical arbitrage checks
//! and prints the per-sale revenue ledger.

use query_pricing::market::{check_all, Broker, PurchaseOutcome, SupportConfig};
use query_pricing::pricing::{algorithms, bounds, Hypergraph, ItemSet};
use query_pricing::qdb::pretty;
use query_pricing::qdb::{AggFunc, Expr, Query};
use query_pricing::workloads::world::{self, WorldConfig};
use query_pricing::workloads::Scale;

fn main() {
    // The seller's dataset.
    let db = world::generate(&WorldConfig::at_scale(Scale::Test));
    println!(
        "world dataset: {} tables, {} tuples",
        db.num_tables(),
        db.total_rows()
    );

    // Buyers: a data analyst, a journalist, a hedge fund, a student.
    let buyers: Vec<(&str, Query, f64)> = vec![
        (
            "analyst: population by continent",
            Query::scan("Country").aggregate(
                vec!["Continent"],
                vec![(AggFunc::Sum, Some("Population"), "pop")],
            ),
            40.0,
        ),
        (
            "journalist: Caribbean countries",
            Query::scan("Country")
                .filter(Expr::col("Region").eq(Expr::lit("Caribbean")))
                .project_cols(&["Name", "Population"]),
            15.0,
        ),
        (
            "hedge fund: the full Country table",
            Query::scan("Country"),
            120.0,
        ),
        (
            "student: number of distinct government forms",
            Query::scan("Country").aggregate(
                vec![],
                vec![(AggFunc::CountDistinct, Some("GovernmentForm"), "g")],
            ),
            5.0,
        ),
        (
            "NGO: average life expectancy in Africa",
            Query::scan("Country")
                .filter(Expr::col("Continent").eq(Expr::lit("Africa")))
                .aggregate(vec![], vec![(AggFunc::Avg, Some("LifeExpectancy"), "le")]),
            12.0,
        ),
    ];

    // Broker + conflict sets (one engine pass via quote_batch).
    let broker = Broker::new(db, &SupportConfig::with_size(300));
    let queries: Vec<Query> = buyers.iter().map(|(_, q, _)| q.clone()).collect();
    let conflict_sets: Vec<ItemSet> = broker
        .quote_batch(&queries)
        .into_iter()
        .map(|quote| quote.conflict_set)
        .collect();
    let mut h = Hypergraph::new(broker.support().len());
    for (cs, (_, _, v)) in conflict_sets.iter().zip(&buyers) {
        h.add_edge_set(cs.clone(), *v);
    }

    // A/B the registry roster on the anticipated workload; install the best.
    let sum = bounds::sum_of_valuations(&h);
    println!("\nrevenue (out of {sum:.1}):");
    let mut best: Option<(f64, String, query_pricing::pricing::Pricing)> = None;
    for algo in algorithms::all() {
        let out = algo.run(&h);
        println!("  {:<9} {:>7.2}", algo.name(), out.revenue);
        // The swap happens on a shared broker: set_pricing takes &self, so
        // this could just as well be done while other threads quote.
        broker.set_pricing(out.pricing.clone());
        if best.as_ref().is_none_or(|(r, _, _)| out.revenue > *r) {
            best = Some((out.revenue, algo.name().to_string(), out.pricing));
        }
    }
    let (best_revenue, best_name, best_pricing) = best.expect("registry is not empty");
    let report = check_all(&conflict_sets, &best_pricing);
    println!(
        "installing {best_name} (revenue {best_revenue:.2}); arbitrage-free: {}",
        report.is_arbitrage_free()
    );
    broker.set_pricing(best_pricing);

    // Sell.
    println!();
    for (who, q, budget) in &buyers {
        match broker.purchase(q, *budget).unwrap() {
            PurchaseOutcome::Sold { price, answer } => {
                println!("SOLD  {who} for {price:.2}");
                if answer.len() <= 4 {
                    print!("{}", pretty::render_relation(&answer, 4));
                }
            }
            PurchaseOutcome::Declined { price } => {
                println!("PASS  {who}: quoted {price:.2} > budget {budget:.2}");
            }
        }
    }
    let ledger = broker.ledger();
    println!(
        "\nrealized revenue: {:.2} from {}/{} buyers",
        ledger.total(),
        ledger.len(),
        buyers.len()
    );
    for sale in ledger.sales() {
        println!(
            "  sold a bundle of {:>3} support DBs at {:>6.2}",
            sale.conflict_set_len, sale.price
        );
    }
}
