//! Quickstart: price a handful of queries over a tiny dataset, end to end.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! Walks through the full pipeline of the paper using the builder API: give
//! the broker the seller's database, the anticipated buyer queries with
//! their valuations, and the name of a registry algorithm; it samples the
//! support set, computes conflict sets, runs the algorithm, and quotes
//! arbitrage-free prices.

use query_pricing::market::{Broker, SupportConfig};
use query_pricing::qdb::{AggFunc, ColumnType, Database, Expr, Query, Relation, Schema, Value};

fn main() {
    // 1. The seller's dataset: the User relation from Figure 1 of the paper.
    let mut users = Relation::new(Schema::new(vec![
        ("uid", ColumnType::Int),
        ("name", ColumnType::Str),
        ("gender", ColumnType::Str),
        ("age", ColumnType::Int),
    ]));
    for (uid, name, gender, age) in [
        (1, "Abe", "m", 18),
        (2, "Alice", "f", 20),
        (3, "Bob", "m", 25),
        (4, "Cathy", "f", 22),
        (5, "Dan", "m", 31),
        (6, "Eve", "f", 27),
    ] {
        users
            .push(vec![
                Value::Int(uid),
                name.into(),
                gender.into(),
                Value::Int(age),
            ])
            .unwrap();
    }
    let mut db = Database::new();
    db.add_table("User", users);

    // 2. Anticipated buyer queries and their valuations (from market research).
    let buyers: Vec<(Query, f64)> = vec![
        (
            Query::scan("User")
                .filter(Expr::col("gender").eq(Expr::lit("f")))
                .aggregate(vec![], vec![(AggFunc::Count, None, "cnt")]),
            10.0,
        ),
        (
            Query::scan("User").aggregate(vec!["gender"], vec![(AggFunc::Avg, Some("age"), "avg")]),
            25.0,
        ),
        (Query::scan("User").project_cols(&["name"]), 18.0),
        (Query::scan("User"), 60.0),
    ];

    // 3. Database -> support -> algorithm (by registry name) -> broker.
    let broker = Broker::builder(db)
        .support_config(SupportConfig::with_size(200))
        .algorithm("LPIP")
        .anticipate_all(buyers.iter().cloned())
        .build()
        .expect("LPIP is a registered algorithm");

    // 4. Quote the whole batch at once — more informative queries always
    //    cost at least as much.
    let queries: Vec<Query> = buyers.iter().map(|(q, _)| q.clone()).collect();
    for (quote, (_, v)) in broker.quote_batch(&queries).iter().zip(&buyers) {
        println!(
            "bundle of {:>3} support DBs, valuation {:>5.1} -> price {:>6.2}  {}",
            quote.conflict_set.len(),
            v,
            quote.price,
            if quote.price <= *v {
                "(buyer purchases)"
            } else {
                "(too expensive)"
            }
        );
    }
}
