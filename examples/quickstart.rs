//! Quickstart: price a handful of queries over a tiny dataset, end to end.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! Walks through the full pipeline of the paper: build a database, sample a
//! support set, compute conflict sets for the buyers' queries, run a pricing
//! algorithm, and quote arbitrage-free prices through the broker.

use query_pricing::market::{Broker, SupportConfig};
use query_pricing::pricing::{algorithms, bounds, Hypergraph};
use query_pricing::qdb::{
    AggFunc, ColumnType, Database, Expr, Query, Relation, Schema, Value,
};

fn main() {
    // 1. The seller's dataset: the User relation from Figure 1 of the paper.
    let mut users = Relation::new(Schema::new(vec![
        ("uid", ColumnType::Int),
        ("name", ColumnType::Str),
        ("gender", ColumnType::Str),
        ("age", ColumnType::Int),
    ]));
    for (uid, name, gender, age) in [
        (1, "Abe", "m", 18),
        (2, "Alice", "f", 20),
        (3, "Bob", "m", 25),
        (4, "Cathy", "f", 22),
        (5, "Dan", "m", 31),
        (6, "Eve", "f", 27),
    ] {
        users
            .push(vec![Value::Int(uid), name.into(), gender.into(), Value::Int(age)])
            .unwrap();
    }
    let mut db = Database::new();
    db.add_table("User", users);

    // 2. Anticipated buyer queries and their valuations (from market research).
    let buyers: Vec<(Query, f64)> = vec![
        (
            Query::scan("User")
                .filter(Expr::col("gender").eq(Expr::lit("f")))
                .aggregate(vec![], vec![(AggFunc::Count, None, "cnt")]),
            10.0,
        ),
        (
            Query::scan("User").aggregate(vec!["gender"], vec![(AggFunc::Avg, Some("age"), "avg")]),
            25.0,
        ),
        (Query::scan("User").project_cols(&["name"]), 18.0),
        (Query::scan("User"), 60.0),
    ];

    // 3. A broker with a sampled support set (neighbouring databases).
    let mut broker = Broker::new(db, &SupportConfig::with_size(200));

    // 4. Conflict sets -> hypergraph -> pricing algorithm.
    let mut h = Hypergraph::new(broker.support().len());
    for (q, v) in &buyers {
        let conflict = broker.conflict_set(q);
        h.add_edge(conflict, *v);
    }
    let outcome = algorithms::lp_item_price(&h, &Default::default());
    println!(
        "LPIP extracted {:.2} out of {:.2} possible revenue",
        outcome.revenue,
        bounds::sum_of_valuations(&h)
    );
    broker.set_pricing(outcome.pricing);

    // 5. Quote prices — more informative queries always cost at least as much.
    for (q, v) in &buyers {
        let quote = broker.quote(q);
        println!(
            "bundle of {:>3} support DBs, valuation {:>5.1} -> price {:>6.2}  {}",
            quote.conflict_set.len(),
            v,
            quote.price,
            if quote.price <= *v { "(buyer purchases)" } else { "(too expensive)" }
        );
    }
}
