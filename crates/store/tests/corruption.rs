//! WAL/snapshot corruption suite: every way bytes can rot on disk must
//! degrade recovery gracefully — truncate the torn tail, fall back to an
//! older snapshot — and must never replay a corrupt record.

use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use qp_pricing::Pricing;
use qp_store::{
    snapshot_file_name, FileStore, LedgerSnapshot, SaleEntry, Snapshot, Store, WalRecord,
    WAL_FILE_NAME,
};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qp-corrupt-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sale(quote_id: u64, price: f64) -> WalRecord {
    WalRecord::Sale {
        quote_id,
        shard: 0,
        bundle_len: 2,
        price,
        tick: quote_id,
    }
}

fn snapshot(epoch: u64, wal_seq: u64) -> Snapshot {
    Snapshot {
        epoch,
        wal_seq,
        next_quote_id: wal_seq,
        pricing: Pricing::UniformBundle { price: 9.0 },
        shards: vec![LedgerSnapshot {
            sales: vec![SaleEntry {
                bundle_len: 1,
                price: 9.0,
                tick: 0,
            }],
            declined_count: 0,
            declined_total: 0.0,
        }],
    }
}

/// Appends `n` sales and returns the store.
fn seed_wal(dir: &PathBuf, n: u64) -> FileStore {
    let store = FileStore::open(dir).unwrap();
    for i in 0..n {
        store.append(&sale(i, 1.0 + i as f64)).unwrap();
    }
    store
}

#[test]
fn torn_final_record_is_truncated_not_replayed() {
    let dir = test_dir("torn");
    drop(seed_wal(&dir, 6));
    // Tear the last record: chop bytes off the file tail, landing inside
    // the final frame's payload.
    let wal_path = dir.join(WAL_FILE_NAME);
    let len = fs::metadata(&wal_path).unwrap().len();
    let f = OpenOptions::new().write(true).open(&wal_path).unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);

    let store = FileStore::open(&dir).unwrap();
    assert_eq!(store.wal_seq(), 5, "the torn sixth record is gone");
    let recovery = store.recover().unwrap();
    assert_eq!(recovery.wal.len(), 5);
    assert!(recovery
        .wal
        .iter()
        .all(|r| matches!(r, WalRecord::Sale { quote_id, .. } if *quote_id < 5)));
    // Open truncated the tear away: appends land frame-aligned.
    store.append(&sale(100, 3.0)).unwrap();
    let recovery = FileStore::open(&dir).unwrap().recover().unwrap();
    assert_eq!(recovery.wal.len(), 6);
    assert_eq!(recovery.truncated_bytes, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_record_stops_replay_at_the_flip() {
    let dir = test_dir("bitflip");
    drop(seed_wal(&dir, 8));
    // Flip one bit in the middle of the file (inside record ~4's payload).
    let wal_path = dir.join(WAL_FILE_NAME);
    let mut bytes = fs::read(&wal_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&wal_path, &bytes).unwrap();

    let store = FileStore::open(&dir).unwrap();
    let recovery = store.recover().unwrap();
    assert!(
        recovery.wal.len() < 8,
        "the flipped record and everything after it must be dropped"
    );
    assert_eq!(recovery.truncated_bytes, 0, "open() already truncated");
    // Every surviving record is a prefix of what was written, bit-exact.
    for (i, record) in recovery.wal.iter().enumerate() {
        assert_eq!(record.encode(), sale(i as u64, 1.0 + i as f64).encode());
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flipped_crc_field_rejects_an_intact_payload() {
    let dir = test_dir("crcflip");
    drop(seed_wal(&dir, 1));
    let wal_path = dir.join(WAL_FILE_NAME);
    let mut bytes = fs::read(&wal_path).unwrap();
    // Frame starts right after the 8-byte magic: [len][crc][payload].
    bytes[12] ^= 0x01; // first CRC byte
    fs::write(&wal_path, &bytes).unwrap();
    let recovery = FileStore::open(&dir).unwrap().recover().unwrap();
    assert!(recovery.wal.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_snapshot_falls_back_to_the_previous_one() {
    let dir = test_dir("snapfall");
    let store = seed_wal(&dir, 4);
    store.write_snapshot(&snapshot(1, 2)).unwrap();
    store.write_snapshot(&snapshot(2, 4)).unwrap();
    drop(store);
    // Truncate the newest snapshot mid-payload.
    let newest = dir.join(snapshot_file_name(4));
    let len = fs::metadata(&newest).unwrap().len();
    let f = OpenOptions::new().write(true).open(&newest).unwrap();
    f.set_len(len / 2).unwrap();
    drop(f);

    let recovery = FileStore::open(&dir).unwrap().recover().unwrap();
    assert_eq!(recovery.snapshots_skipped, 1);
    let snap = recovery.snapshot.expect("older snapshot must be used");
    assert_eq!(snap.epoch, 1);
    assert_eq!(snap.wal_seq, 2);
    assert_eq!(
        recovery.wal.len(),
        2,
        "replay resumes from the older snapshot's sequence number"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn every_snapshot_corrupt_means_full_wal_replay() {
    let dir = test_dir("snapnone");
    let store = seed_wal(&dir, 3);
    store.write_snapshot(&snapshot(1, 3)).unwrap();
    drop(store);
    // Flip a payload bit in the only snapshot.
    let snap_path = dir.join(snapshot_file_name(3));
    let mut bytes = fs::read(&snap_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x80;
    fs::write(&snap_path, &bytes).unwrap();

    let recovery = FileStore::open(&dir).unwrap().recover().unwrap();
    assert!(recovery.snapshot.is_none());
    assert_eq!(recovery.snapshots_skipped, 1);
    assert_eq!(recovery.wal.len(), 3, "the full WAL still replays");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_magic_resets_the_wal_instead_of_guessing() {
    let dir = test_dir("magic");
    drop(seed_wal(&dir, 2));
    let wal_path = dir.join(WAL_FILE_NAME);
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&wal_path)
        .unwrap();
    f.seek(SeekFrom::Start(0)).unwrap();
    f.write_all(b"garbage!").unwrap();
    let mut rest = Vec::new();
    f.read_to_end(&mut rest).unwrap();
    drop(f);

    let store = FileStore::open(&dir).unwrap();
    assert_eq!(store.wal_seq(), 0, "an unrecognizable log is not replayed");
    store.append(&sale(0, 1.0)).unwrap();
    let recovery = FileStore::open(&dir).unwrap().recover().unwrap();
    assert_eq!(recovery.wal.len(), 1);
    let _ = fs::remove_dir_all(&dir);
}
