//! # qp-store — log-structured durability for broker state
//!
//! Everything revenue-relevant a broker shard set holds in memory — the
//! installed [`Pricing`], the PR 5 pricing epoch, and every shard's
//! [`RevenueLedger`](https://docs.rs) totals — is reconstructible from two
//! artifacts this crate owns:
//!
//! * an **append-only WAL** of [`WalRecord`]s (every sale, every decline —
//!   including pressure evictions — and every `PricingPatch` repricing),
//!   each framed as `[u32 len][u32 crc32][payload]`;
//! * periodic **snapshots** ([`Snapshot`]) of the full state, stamped with
//!   the pricing epoch and the WAL sequence number they reflect, so replay
//!   starts from the snapshot instead of the beginning of time.
//!
//! Both sit behind the [`Store`] trait so backends stay swappable — the
//! same shape Oxigraph uses for its persistent stores. Two backends ship:
//! [`MemStore`] (tests, ephemeral servers) and [`FileStore`] (a data
//! directory with a `wal.log` plus `snap-*.snap` files and a configurable
//! [`FsyncPolicy`]).
//!
//! ## Recovery contract
//!
//! [`Store::recover`] returns the newest snapshot that passes its CRC
//! (falling back to older ones, skipping corrupt files) plus every valid
//! WAL record after that snapshot's sequence number; the file backend
//! truncates the WAL at the first torn or corrupt frame on open, so a
//! partially-written tail is dropped, never replayed. [`Recovery::replay`]
//! then folds the records into a [`ReplayedState`] — the replay oracle the
//! crash harness compares against a live server, **bit-identically**:
//! floats travel as raw bit patterns end to end, and per-shard sale order
//! is preserved so order-sensitive float summation reproduces exactly.
//!
//! ## Durability model
//!
//! Appends issue one `write` syscall per record — an acknowledged settle
//! survives a process crash (the bytes are in the page cache) under every
//! fsync policy. What [`FsyncPolicy`] controls is *power-loss* durability:
//! `Always` fsyncs per append, the default `GroupCommit` amortizes one
//! fsync over N records and runs it on a background flusher thread so the
//! settle path never blocks on stable storage, `Never` leaves flushing to
//! the OS. See `STORAGE.md` for the byte-level format specification.

mod file;
mod mem;
mod record;

use std::fmt;
use std::sync::Arc;

use qp_core::codec::CodecError;
use qp_pricing::algorithms::PricingPatch;
use qp_pricing::Pricing;

pub use file::{snapshot_file_name, FileStore, FsyncPolicy, WAL_FILE_NAME, WAL_MAGIC};
pub use mem::MemStore;
pub use record::{
    put_patch, put_pricing, take_patch, take_pricing, LedgerSnapshot, SaleEntry, Snapshot,
    WalRecord,
};

/// Failures a store operation can produce.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file system failed.
    Io(std::io::Error),
    /// A record failed to encode or decode.
    Codec(CodecError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Codec(e) => write!(f, "store codec error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// A durability backend: an append-only record log plus a snapshot shelf.
///
/// Implementations must be thread-safe; the shard set calls [`append`]
/// concurrently from settle paths (serialized by its own durability lock)
/// and [`write_snapshot`] from the repricing broadcast.
///
/// [`append`]: Store::append
/// [`write_snapshot`]: Store::write_snapshot
pub trait Store: Send + Sync {
    /// Appends one record, returning its 1-based sequence number. The
    /// record is crash-consistent (but not necessarily power-loss durable;
    /// see the crate docs) when this returns.
    fn append(&self, record: &WalRecord) -> Result<u64, StoreError>;

    /// Forces everything appended so far to stable storage.
    fn sync(&self) -> Result<(), StoreError>;

    /// Persists a snapshot; its `wal_seq` keys it into the log.
    fn write_snapshot(&self, snapshot: &Snapshot) -> Result<(), StoreError>;

    /// Loads the newest valid snapshot and the valid WAL suffix after it.
    fn recover(&self) -> Result<Recovery, StoreError>;

    /// Sequence number of the last appended record (0 when empty).
    fn wal_seq(&self) -> u64;
}

/// What [`Store::recover`] found.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Newest snapshot whose CRC and decode both passed, if any.
    pub snapshot: Option<Snapshot>,
    /// Valid WAL records with sequence numbers after `snapshot.wal_seq`
    /// (all valid records when there is no snapshot), in log order.
    pub wal: Vec<WalRecord>,
    /// Bytes dropped from the WAL tail at the first corrupt frame.
    pub truncated_bytes: u64,
    /// Snapshot files skipped because they failed CRC or decode.
    pub snapshots_skipped: usize,
}

impl Recovery {
    /// True when nothing durable was found — a fresh data directory.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.wal.is_empty()
    }

    /// Folds the snapshot and WAL suffix into concrete state.
    ///
    /// `seed_pricing`/`seed_epoch` describe the state a freshly built (not
    /// yet crashed) server starts from — they are used only when no
    /// snapshot exists and no `Replace` record has been replayed yet, and
    /// must be rebuilt deterministically by the caller (the serve binary
    /// re-derives them from its seed). `num_shards` pads the ledger vector
    /// so shards that never settled still get an empty ledger.
    pub fn replay(
        &self,
        seed_pricing: Pricing,
        seed_epoch: u64,
        num_shards: usize,
    ) -> ReplayedState {
        let (mut pricing, mut epoch, mut next_quote_id, mut shards) = match &self.snapshot {
            Some(snap) => (
                snap.pricing.clone(),
                snap.epoch,
                snap.next_quote_id,
                snap.shards.clone(),
            ),
            None => (seed_pricing, seed_epoch, 0, Vec::new()),
        };
        if shards.len() < num_shards {
            shards.resize(num_shards, LedgerSnapshot::default());
        }
        let mut evicted_watermark = 0u64;
        for record in &self.wal {
            match record {
                WalRecord::Sale {
                    quote_id,
                    shard,
                    bundle_len,
                    price,
                    tick,
                } => {
                    let shard = &mut shards[*shard as usize];
                    shard.sales.push(SaleEntry {
                        bundle_len: *bundle_len,
                        price: *price,
                        tick: *tick,
                    });
                    next_quote_id = next_quote_id.max(quote_id + 1);
                }
                WalRecord::Decline {
                    quote_id,
                    shard,
                    price,
                    evicted,
                    ..
                } => {
                    let shard = &mut shards[*shard as usize];
                    shard.declined_count += 1;
                    shard.declined_total += *price;
                    next_quote_id = next_quote_id.max(quote_id + 1);
                    if *evicted {
                        evicted_watermark = evicted_watermark.max(*quote_id);
                    }
                }
                WalRecord::Reprice { patch } => {
                    // Mirrors the broker contract exactly: `Keep` is a
                    // no-op that never takes the write lock, so it must
                    // not bump the replayed epoch either.
                    if !matches!(patch, PricingPatch::Keep) {
                        patch.apply(&mut pricing);
                        epoch += 1;
                    }
                }
            }
        }
        ReplayedState {
            pricing,
            epoch,
            next_quote_id,
            evicted_watermark,
            shards,
        }
    }
}

/// Concrete state reconstructed by [`Recovery::replay`] — the replay
/// oracle, and the seed a recovering shard set installs.
#[derive(Debug, Clone)]
pub struct ReplayedState {
    /// The pricing function after the last replayed repricing.
    pub pricing: Pricing,
    /// The pricing epoch after the last replayed repricing.
    pub epoch: u64,
    /// First quote id safe to issue (past every id the log ever settled).
    pub next_quote_id: u64,
    /// Highest quote id recorded as pressure-evicted (0 when none).
    pub evicted_watermark: u64,
    /// Per-shard ledger state, in shard order.
    pub shards: Vec<LedgerSnapshot>,
}

impl LedgerSnapshot {
    /// Realized revenue: sale prices summed in insertion order via the same
    /// `Sum` impl as `RevenueLedger::total` — float addition is
    /// order-sensitive, and the two must agree even on the sign of an
    /// empty ledger's zero.
    pub fn total(&self) -> f64 {
        self.sales.iter().map(|s| s.price).sum()
    }
}

impl ReplayedState {
    /// Total realized revenue across shards, shard-major — the same
    /// summation order (and `Sum` impl) the server's STATS aggregation uses.
    pub fn revenue(&self) -> f64 {
        self.shards.iter().map(|s| s.total()).sum()
    }

    /// Total sales across shards.
    pub fn sales(&self) -> u64 {
        self.shards.iter().map(|s| s.sales.len() as u64).sum()
    }

    /// Total declines across shards (buyer declines + evictions).
    pub fn declines(&self) -> u64 {
        self.shards.iter().map(|s| s.declined_count).sum()
    }
}

/// A shared, dynamically-typed store handle as threaded through brokers
/// and shard sets.
pub type SharedStore = Arc<dyn Store>;

#[cfg(test)]
mod tests {
    use super::*;

    fn sale(quote_id: u64, shard: u32, price: f64, tick: u64) -> WalRecord {
        WalRecord::Sale {
            quote_id,
            shard,
            bundle_len: 1,
            price,
            tick,
        }
    }

    #[test]
    fn replay_folds_wal_onto_snapshot() {
        let recovery = Recovery {
            snapshot: Some(Snapshot {
                epoch: 5,
                wal_seq: 10,
                next_quote_id: 100,
                pricing: Pricing::UniformBundle { price: 2.0 },
                shards: vec![LedgerSnapshot {
                    sales: vec![SaleEntry {
                        bundle_len: 1,
                        price: 2.0,
                        tick: 0,
                    }],
                    declined_count: 1,
                    declined_total: 2.0,
                }],
            }),
            wal: vec![
                sale(120, 1, 3.5, 7),
                WalRecord::Decline {
                    quote_id: 121,
                    shard: 0,
                    price: 3.5,
                    tick: 7,
                    evicted: true,
                },
                WalRecord::Reprice {
                    patch: PricingPatch::SetUniformPrice(4.0),
                },
                WalRecord::Reprice {
                    patch: PricingPatch::Keep,
                },
            ],
            ..Recovery::default()
        };
        let state = recovery.replay(Pricing::UniformBundle { price: 0.0 }, 0, 2);
        assert_eq!(state.epoch, 6, "Keep must not bump the epoch");
        assert_eq!(state.next_quote_id, 122);
        assert_eq!(state.evicted_watermark, 121);
        assert_eq!(state.shards.len(), 2);
        assert_eq!(state.sales(), 2);
        assert_eq!(state.declines(), 2);
        assert_eq!(state.revenue().to_bits(), (2.0f64 + 3.5).to_bits());
        assert_eq!(state.pricing, Pricing::UniformBundle { price: 4.0 });
    }

    #[test]
    fn replay_without_snapshot_starts_from_the_seed() {
        let recovery = Recovery {
            wal: vec![sale(0, 0, 1.25, 1), sale(1, 0, 1.25, 1)],
            ..Recovery::default()
        };
        let state = recovery.replay(Pricing::UniformBundle { price: 1.25 }, 1, 1);
        assert_eq!(state.epoch, 1);
        assert_eq!(state.next_quote_id, 2);
        assert_eq!(state.revenue().to_bits(), 2.5f64.to_bits());
        assert!(recovery.snapshot.is_none() && !recovery.is_empty());
    }
}
