//! Wire formats for WAL records and snapshots.
//!
//! Everything here is framed with the `qp-core` codec primitives: fields are
//! little-endian, floats travel as raw `to_bits()` patterns (recovery must
//! reproduce revenue *bit-identically*, so no float is ever reformatted),
//! and every count field is sanity-checked against the bytes remaining so a
//! corrupt length cannot drive an allocation. The byte-level layout is
//! specified in `STORAGE.md` at the repository root; the round-trip tests
//! below pin it.

use qp_core::codec::{put_f64, put_u32, put_u64, ByteReader, CodecError};
use qp_pricing::algorithms::PricingPatch;
use qp_pricing::Pricing;

/// Record tags (first payload byte of a WAL frame).
const REC_SALE: u8 = 1;
const REC_DECLINE: u8 = 2;
const REC_REPRICE: u8 = 3;

/// Pricing class tags, shared by snapshots and `Replace` patches.
const PRICING_UNIFORM_BUNDLE: u8 = 0;
const PRICING_ITEM: u8 = 1;
const PRICING_XOS: u8 = 2;

/// `PricingPatch` variant tags.
const PATCH_KEEP: u8 = 0;
const PATCH_REPLACE: u8 = 1;
const PATCH_SET_UNIFORM_PRICE: u8 = 2;
const PATCH_SET_UNIFORM_WEIGHT: u8 = 3;

/// One logged event. The WAL is the authoritative sequence of every
/// revenue-relevant state change a broker shard set makes: each settle
/// (sale or decline, including pressure evictions) and each repricing.
///
/// Records carry the quote id so recovery can restore the id allocator past
/// every id ever settled, and the shard index so per-shard ledgers rebuild
/// exactly — `RevenueLedger::total()` sums in insertion order, and float
/// addition is order-sensitive, so replay must put every sale back on the
/// shard (and in the slot) it originally landed in.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A settled purchase within budget: revenue was recorded.
    Sale {
        /// Quote id the buyer settled.
        quote_id: u64,
        /// Shard whose ledger recorded the sale.
        shard: u32,
        /// Conflict-set size of the quoted bundle (ledger provenance).
        bundle_len: u32,
        /// The sale price (exact bits).
        price: f64,
        /// Sim tick at which the settle landed.
        tick: u64,
    },
    /// A declined purchase (over budget) or a pressure-evicted quote.
    Decline {
        /// Quote id that was declined or evicted.
        quote_id: u64,
        /// Shard whose ledger recorded the decline.
        shard: u32,
        /// The quoted price (exact bits) — forgone revenue.
        price: f64,
        /// Sim tick of the settle, or of the eviction.
        tick: u64,
        /// True when the quote was evicted under `MAX_PENDING_QUOTES`
        /// pressure rather than declined by its buyer.
        evicted: bool,
    },
    /// A repricing applied to every shard. All patch variants are absolute
    /// (idempotent), so replaying one after a crash is always safe.
    Reprice {
        /// The patch the broadcast applied.
        patch: PricingPatch,
    },
}

impl WalRecord {
    /// Serialized payload (the CRC frame is added by the store).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(40);
        match self {
            WalRecord::Sale {
                quote_id,
                shard,
                bundle_len,
                price,
                tick,
            } => {
                buf.push(REC_SALE);
                put_u64(&mut buf, *quote_id);
                put_u32(&mut buf, *shard);
                put_u32(&mut buf, *bundle_len);
                put_f64(&mut buf, *price);
                put_u64(&mut buf, *tick);
            }
            WalRecord::Decline {
                quote_id,
                shard,
                price,
                tick,
                evicted,
            } => {
                buf.push(REC_DECLINE);
                put_u64(&mut buf, *quote_id);
                put_u32(&mut buf, *shard);
                put_f64(&mut buf, *price);
                put_u64(&mut buf, *tick);
                buf.push(u8::from(*evicted));
            }
            WalRecord::Reprice { patch } => {
                buf.push(REC_REPRICE);
                put_patch(&mut buf, patch);
            }
        }
        buf
    }

    /// Decodes one record payload, requiring exact consumption.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, CodecError> {
        let mut r = ByteReader::new(payload);
        let record = match r.u8()? {
            REC_SALE => WalRecord::Sale {
                quote_id: r.u64()?,
                shard: r.u32()?,
                bundle_len: r.u32()?,
                price: r.f64()?,
                tick: r.u64()?,
            },
            REC_DECLINE => WalRecord::Decline {
                quote_id: r.u64()?,
                shard: r.u32()?,
                price: r.f64()?,
                tick: r.u64()?,
                evicted: match r.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(CodecError::BadTag(other)),
                },
            },
            REC_REPRICE => WalRecord::Reprice {
                patch: take_patch(&mut r)?,
            },
            other => return Err(CodecError::BadTag(other)),
        };
        r.finish()?;
        Ok(record)
    }

    /// Quote id carried by settle records (`None` for repricings).
    pub fn quote_id(&self) -> Option<u64> {
        match self {
            WalRecord::Sale { quote_id, .. } | WalRecord::Decline { quote_id, .. } => {
                Some(*quote_id)
            }
            WalRecord::Reprice { .. } => None,
        }
    }
}

/// One recorded sale inside a ledger snapshot, in ledger insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct SaleEntry {
    /// Conflict-set size of the sold bundle.
    pub bundle_len: u32,
    /// Sale price (exact bits).
    pub price: f64,
    /// Tick the sale landed at.
    pub tick: u64,
}

/// The full revenue state of one shard's ledger at snapshot time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerSnapshot {
    /// Every sale, in the order the ledger recorded them.
    pub sales: Vec<SaleEntry>,
    /// Number of declines (buyer declines + pressure evictions).
    pub declined_count: u64,
    /// Sum of declined quote prices (exact bits).
    pub declined_total: f64,
}

/// A consistent point-in-time image of a shard set's durable state.
///
/// `wal_seq` keys the snapshot into the log: every WAL record with sequence
/// number ≤ `wal_seq` is already reflected here, and recovery replays only
/// the records after it. The pricing epoch is stored alongside so recovery
/// restores the PR 5 epoch counter exactly (quote caches re-validate against
/// it, and CI asserts all shards agree on it).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Pricing epoch at snapshot time.
    pub epoch: u64,
    /// Number of WAL records reflected in this snapshot.
    pub wal_seq: u64,
    /// Next quote id the shard set would issue.
    pub next_quote_id: u64,
    /// The installed pricing function (exact bits).
    pub pricing: Pricing,
    /// Per-shard ledger state, indexed by shard.
    pub shards: Vec<LedgerSnapshot>,
}

impl Snapshot {
    /// Serialized payload (the CRC frame is added by the store).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.shards.len() * 32);
        put_u64(&mut buf, self.epoch);
        put_u64(&mut buf, self.wal_seq);
        put_u64(&mut buf, self.next_quote_id);
        put_pricing(&mut buf, &self.pricing);
        put_u64(&mut buf, self.shards.len() as u64);
        for shard in &self.shards {
            put_u64(&mut buf, shard.sales.len() as u64);
            for sale in &shard.sales {
                put_u32(&mut buf, sale.bundle_len);
                put_f64(&mut buf, sale.price);
                put_u64(&mut buf, sale.tick);
            }
            put_u64(&mut buf, shard.declined_count);
            put_f64(&mut buf, shard.declined_total);
        }
        buf
    }

    /// Decodes one snapshot payload, requiring exact consumption.
    pub fn decode(payload: &[u8]) -> Result<Snapshot, CodecError> {
        let mut r = ByteReader::new(payload);
        let epoch = r.u64()?;
        let wal_seq = r.u64()?;
        let next_quote_id = r.u64()?;
        let pricing = take_pricing(&mut r)?;
        let num_shards = r.checked_count(16)?;
        let mut shards = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            let num_sales = r.checked_count(20)?;
            let mut sales = Vec::with_capacity(num_sales);
            for _ in 0..num_sales {
                sales.push(SaleEntry {
                    bundle_len: r.u32()?,
                    price: r.f64()?,
                    tick: r.u64()?,
                });
            }
            shards.push(LedgerSnapshot {
                sales,
                declined_count: r.u64()?,
                declined_total: r.f64()?,
            });
        }
        r.finish()?;
        Ok(Snapshot {
            epoch,
            wal_seq,
            next_quote_id,
            pricing,
            shards,
        })
    }
}

/// Appends a pricing function: class tag + parameters, floats as bits.
pub fn put_pricing(buf: &mut Vec<u8>, pricing: &Pricing) {
    match pricing {
        Pricing::UniformBundle { price } => {
            buf.push(PRICING_UNIFORM_BUNDLE);
            put_f64(buf, *price);
        }
        Pricing::Item { weights } => {
            buf.push(PRICING_ITEM);
            put_u64(buf, weights.len() as u64);
            for w in weights {
                put_f64(buf, *w);
            }
        }
        Pricing::Xos { components } => {
            buf.push(PRICING_XOS);
            put_u64(buf, components.len() as u64);
            for comp in components {
                put_u64(buf, comp.len() as u64);
                for w in comp {
                    put_f64(buf, *w);
                }
            }
        }
    }
}

/// Reads a pricing function written by [`put_pricing`].
pub fn take_pricing(r: &mut ByteReader<'_>) -> Result<Pricing, CodecError> {
    match r.u8()? {
        PRICING_UNIFORM_BUNDLE => Ok(Pricing::UniformBundle { price: r.f64()? }),
        PRICING_ITEM => {
            let n = r.checked_count(8)?;
            let mut weights = Vec::with_capacity(n);
            for _ in 0..n {
                weights.push(r.f64()?);
            }
            Ok(Pricing::Item { weights })
        }
        PRICING_XOS => {
            let n = r.checked_count(8)?;
            let mut components = Vec::with_capacity(n);
            for _ in 0..n {
                let m = r.checked_count(8)?;
                let mut comp = Vec::with_capacity(m);
                for _ in 0..m {
                    comp.push(r.f64()?);
                }
                components.push(comp);
            }
            Ok(Pricing::Xos { components })
        }
        other => Err(CodecError::BadTag(other)),
    }
}

/// Appends a pricing patch: variant tag + parameters.
pub fn put_patch(buf: &mut Vec<u8>, patch: &PricingPatch) {
    match patch {
        PricingPatch::Keep => buf.push(PATCH_KEEP),
        PricingPatch::Replace(pricing) => {
            buf.push(PATCH_REPLACE);
            put_pricing(buf, pricing);
        }
        PricingPatch::SetUniformPrice(price) => {
            buf.push(PATCH_SET_UNIFORM_PRICE);
            put_f64(buf, *price);
        }
        PricingPatch::SetUniformWeight { weight, num_items } => {
            buf.push(PATCH_SET_UNIFORM_WEIGHT);
            put_f64(buf, *weight);
            put_u64(buf, *num_items as u64);
        }
    }
}

/// Reads a pricing patch written by [`put_patch`].
pub fn take_patch(r: &mut ByteReader<'_>) -> Result<PricingPatch, CodecError> {
    match r.u8()? {
        PATCH_KEEP => Ok(PricingPatch::Keep),
        PATCH_REPLACE => Ok(PricingPatch::Replace(take_pricing(r)?)),
        PATCH_SET_UNIFORM_PRICE => Ok(PricingPatch::SetUniformPrice(r.f64()?)),
        PATCH_SET_UNIFORM_WEIGHT => {
            let weight = r.f64()?;
            let num_items = r.u64()?;
            if num_items > (1u64 << 32) {
                return Err(CodecError::BadLength(num_items));
            }
            Ok(PricingPatch::SetUniformWeight {
                weight,
                num_items: num_items as usize,
            })
        }
        other => Err(CodecError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Sale {
                quote_id: 42,
                shard: 3,
                bundle_len: 7,
                price: 12.375,
                tick: 9,
            },
            WalRecord::Decline {
                quote_id: 43,
                shard: 0,
                price: f64::MIN_POSITIVE,
                tick: 10,
                evicted: false,
            },
            WalRecord::Decline {
                quote_id: 1,
                shard: 1,
                price: -0.0,
                tick: 0,
                evicted: true,
            },
            WalRecord::Reprice {
                patch: PricingPatch::Keep,
            },
            WalRecord::Reprice {
                patch: PricingPatch::SetUniformPrice(0.1 + 0.2),
            },
            WalRecord::Reprice {
                patch: PricingPatch::SetUniformWeight {
                    weight: 1.5,
                    num_items: 40,
                },
            },
            WalRecord::Reprice {
                patch: PricingPatch::Replace(Pricing::Xos {
                    components: vec![vec![1.0, 0.5], vec![], vec![2.0]],
                }),
            },
        ]
    }

    #[test]
    fn wal_records_round_trip_bit_exactly() {
        for record in sample_records() {
            let bytes = record.encode();
            let back = WalRecord::decode(&bytes).unwrap();
            // Compare re-encodings: byte equality is bit equality for every
            // float field, with no reliance on float PartialEq semantics.
            assert_eq!(back.encode(), bytes, "{record:?}");
        }
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let snap = Snapshot {
            epoch: 17,
            wal_seq: 1005,
            next_quote_id: 4096,
            pricing: Pricing::Item {
                weights: vec![0.1, 0.2, 0.30000000000000004],
            },
            shards: vec![
                LedgerSnapshot {
                    sales: vec![
                        SaleEntry {
                            bundle_len: 2,
                            price: 5.5,
                            tick: 1,
                        },
                        SaleEntry {
                            bundle_len: 9,
                            price: 0.125,
                            tick: 4,
                        },
                    ],
                    declined_count: 3,
                    declined_total: 11.25,
                },
                LedgerSnapshot::default(),
            ],
        };
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.shards.len(), 2);
        assert_eq!(back.shards[0].sales.len(), 2);
    }

    #[test]
    fn decode_rejects_bad_tags_truncation_and_trailing_bytes() {
        assert_eq!(WalRecord::decode(&[99]), Err(CodecError::BadTag(99)));
        let mut bytes = sample_records()[0].encode();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(WalRecord::decode(&bytes), Err(CodecError::Truncated));
        let mut bytes = sample_records()[0].encode();
        bytes.push(0);
        assert_eq!(WalRecord::decode(&bytes), Err(CodecError::Trailing));
        // Decline's evicted flag must be 0 or 1.
        let mut bytes = sample_records()[1].encode();
        let last = bytes.len() - 1;
        bytes[last] = 7;
        assert_eq!(WalRecord::decode(&bytes), Err(CodecError::BadTag(7)));
    }

    #[test]
    fn corrupt_counts_do_not_allocate() {
        // An Item pricing claiming 2^61 weights inside a 30-byte snapshot.
        let mut buf = Vec::new();
        put_u64(&mut buf, 1); // epoch
        put_u64(&mut buf, 0); // wal_seq
        put_u64(&mut buf, 0); // next_quote_id
        buf.push(super::PRICING_ITEM);
        put_u64(&mut buf, 1 << 61);
        assert!(matches!(
            Snapshot::decode(&buf),
            Err(CodecError::BadLength(_))
        ));
    }
}
