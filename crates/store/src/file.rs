//! The file-backed [`Store`] backend: a data directory holding one
//! append-only `wal.log` plus `snap-<seq>.snap` snapshot files.
//!
//! ## On-disk layout
//!
//! * `wal.log` — 8-byte magic, then back-to-back frames of
//!   `[u32 len][u32 crc32(payload)][payload]`, little-endian. Appends are
//!   one `write` syscall each; fsync cadence is the [`FsyncPolicy`].
//! * `snap-<wal_seq padded to 20 digits>.snap` — 8-byte magic plus one
//!   frame holding an encoded [`Snapshot`]. Written to a temp file, fsynced
//!   and renamed into place, so a snapshot is either entirely present or
//!   absent. The three newest are kept; older ones are pruned.
//!
//! ## Corruption handling
//!
//! Opening scans the WAL and truncates the file at the first frame whose
//! length field overruns the file, whose CRC mismatches, or whose payload
//! fails to decode — a torn tail from a crash is dropped, never replayed.
//! Recovery picks the newest snapshot that passes both CRC and decode,
//! falling back file by file (a snapshot that fails is skipped, not
//! trusted partially).

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use parking_lot::atomic::{AtomicBool, Ordering};
use parking_lot::Mutex;
use qp_core::codec::{crc32, put_u32};
use qp_telemetry::{Counter, Gauge, TelemetrySink};

use crate::{Recovery, Snapshot, Store, StoreError, WalRecord};

/// WAL file name inside a data directory.
pub const WAL_FILE_NAME: &str = "wal.log";
/// Magic bytes opening a WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"QPWAL01\n";
/// Magic bytes opening a snapshot file.
const SNAP_MAGIC: &[u8; 8] = b"QPSNAP1\n";
/// Ceiling on a single frame payload: anything larger is corruption.
const MAX_FRAME: usize = 1 << 26;
/// How many snapshot files to retain.
const SNAPSHOTS_KEPT: usize = 3;

/// Snapshot file name for a given WAL sequence number (zero-padded so
/// lexicographic order is numeric order).
pub fn snapshot_file_name(wal_seq: u64) -> String {
    format!("snap-{wal_seq:020}.snap")
}

/// When appended records are forced to stable storage.
///
/// Every policy is crash-consistent for a process kill (appends are
/// `write` syscalls, so the page cache holds acknowledged records); the
/// policy buys increasing resistance to power loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every append, inline on the appending thread.
    /// Power-loss durable, slowest.
    Always,
    /// Fsync once every `every` appends (and on every explicit `sync` or
    /// snapshot). The default, with `every = 32`. The group fsync runs on
    /// a background flusher thread over its own descriptor, so the settle
    /// path pays one `write` syscall per append and never blocks on
    /// stable storage; under a hot append rate the flusher coalesces
    /// group boundaries to at most one fsync per `FLUSH_COALESCE` (5 ms),
    /// bounding its duty cycle. Explicit
    /// [`Store::sync`](crate::Store::sync) stays synchronous and covers
    /// any group the flusher has not reached yet.
    GroupCommit {
        /// Appends per fsync.
        every: u32,
    },
    /// Never fsync from the store; the OS flushes when it pleases.
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::GroupCommit { every: 32 }
    }
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `always`, `never`, or `group:<N>`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            _ => {
                let n: u32 = s.strip_prefix("group:")?.parse().ok()?;
                if n == 0 {
                    return None;
                }
                Some(FsyncPolicy::GroupCommit { every: n })
            }
        }
    }
}

struct FileInner {
    wal: File,
    /// Records in the WAL (valid ones; the corrupt tail was truncated).
    seq: u64,
    /// Appends since the last fsync (or, under group commit, since the
    /// last group handed to the flusher).
    unsynced: u32,
}

/// Floor between background group-commit fsyncs: group boundaries that
/// pass within this of the previous fsync coalesce into the next one, so
/// the flusher's fsync duty cycle stays bounded (an fsync costs ~100 µs on
/// commodity storage) no matter how hot the append rate runs. Explicit
/// [`Store::sync`](crate::Store::sync) ignores the floor.
const FLUSH_COALESCE: Duration = Duration::from_millis(5);

/// Flags shared between appenders and the background group-commit flusher.
struct FlushState {
    /// Set by `append` when a group boundary passes; cleared by whoever
    /// performs the fsync — the flusher, or an explicit `sync`.
    dirty: AtomicBool,
    /// Set once by `Drop` to retire the flusher thread.
    stop: AtomicBool,
}

/// Background group-commit loop: parked until an appender crosses a group
/// boundary, then `sync_data` on its own clone of the WAL descriptor (same
/// file description, so it flushes the appenders' writes) off the settle
/// path. See [`FsyncPolicy::GroupCommit`].
fn flusher_loop(
    wal: File,
    shared: Arc<FlushState>,
    span: qp_telemetry::SpanHandle,
    fsyncs: Counter,
) {
    loop {
        // ordering: AcqRel pairs with the appender's Release store; only
        // the flag needs sequencing — the frame bytes reached the kernel
        // via `write` before the store, so `sync_data` flushes them
        // without any user-space fence.
        if shared.dirty.swap(false, Ordering::AcqRel) {
            let _span = span.enter();
            match wal.sync_data() {
                Ok(()) => {
                    fsyncs.inc();
                    // Coalescing floor: boundaries crossed during this
                    // sleep fold into one fsync on the next loop pass
                    // (`sleep`, unlike `park_timeout`, ignores unparks, so
                    // the floor holds under a hot append rate).
                    thread::sleep(FLUSH_COALESCE);
                }
                Err(_) => {
                    // ordering: Release — re-mark the group dirty so an
                    // explicit `sync` retries and surfaces the error
                    // synchronously; this thread has nowhere to report it.
                    shared.dirty.store(true, Ordering::Release);
                    // ordering: Acquire pairs with Drop's Release store.
                    if shared.stop.load(Ordering::Acquire) {
                        return;
                    }
                    // Back off instead of hot-spinning on a wedged disk.
                    thread::park_timeout(Duration::from_millis(50));
                }
            }
        // ordering: Acquire pairs with Drop's Release store; checked only
        // with no group pending so the final group is always flushed.
        } else if shared.stop.load(Ordering::Acquire) {
            return;
        } else {
            // Woken by `unpark` from the next group boundary (a missed
            // unpark just before this park leaves a token, so park
            // returns immediately — no lost wakeups).
            thread::park();
        }
    }
}

/// Pre-resolved telemetry handles — one `TelemetrySink` lookup at
/// construction, zero-cost when the sink is disabled.
struct StoreTelemetry {
    append_span: qp_telemetry::SpanHandle,
    fsync_span: qp_telemetry::SpanHandle,
    records: Counter,
    bytes: Counter,
    fsyncs: Counter,
    snapshots: Counter,
    /// `wal.flush_queue_depth` — records appended but not yet covered by
    /// an fsync (under group commit: accumulated toward the next group).
    flush_queue: Gauge,
    /// `recovery.*` — what the last `recover()` / open scan found.
    recovery_records: Counter,
    recovery_truncated: Counter,
    recovery_snapshots_skipped: Counter,
}

impl StoreTelemetry {
    fn new(sink: &TelemetrySink) -> Self {
        StoreTelemetry {
            append_span: sink.span_handle("wal.append"),
            fsync_span: sink.span_handle("wal.fsync"),
            records: sink.counter("wal.records"),
            bytes: sink.counter("wal.bytes"),
            fsyncs: sink.counter("wal.fsyncs"),
            snapshots: sink.counter("store.snapshots"),
            flush_queue: sink.gauge("wal.flush_queue_depth"),
            recovery_records: sink.counter("recovery.records_replayed"),
            recovery_truncated: sink.counter("recovery.truncated_frames"),
            recovery_snapshots_skipped: sink.counter("recovery.snapshots_skipped"),
        }
    }
}

/// The file-backed store. See the module docs for the layout.
pub struct FileStore {
    dir: PathBuf,
    policy: FsyncPolicy,
    inner: Mutex<FileInner>,
    telemetry: StoreTelemetry,
    flush: Arc<FlushState>,
    /// The group-commit flusher; `None` under `Always`/`Never`.
    flusher: Option<thread::JoinHandle<()>>,
}

impl FileStore {
    /// Opens (creating if needed) a data directory with the default
    /// group-commit fsync policy and telemetry disabled.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileStore, StoreError> {
        FileStore::open_with(dir, FsyncPolicy::default(), &TelemetrySink::default())
    }

    /// Opens a data directory with explicit policy and telemetry sink.
    ///
    /// Scans the existing WAL (if any) and truncates it at the first
    /// corrupt frame, so the file is append-clean before the first write.
    pub fn open_with(
        dir: impl AsRef<Path>,
        policy: FsyncPolicy,
        sink: &TelemetrySink,
    ) -> Result<FileStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let wal_path = dir.join(WAL_FILE_NAME);
        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            // An existing WAL is scanned and kept (truncated only at the
            // first corrupt frame below), never blown away on open.
            .truncate(false)
            .open(&wal_path)?;
        let mut bytes = Vec::new();
        wal.read_to_end(&mut bytes)?;
        let (records, valid_end, _) = scan_wal(&bytes);
        let seq = records.len() as u64;
        if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC[..] {
            // Fresh file, or a tear inside the magic itself: start over.
            wal.set_len(0)?;
            wal.seek(SeekFrom::Start(0))?;
            wal.write_all(WAL_MAGIC)?;
        } else if (valid_end as u64) < bytes.len() as u64 {
            wal.set_len(valid_end as u64)?;
        }
        wal.seek(SeekFrom::End(0))?;
        let telemetry = StoreTelemetry::new(sink);
        let flush = Arc::new(FlushState {
            dirty: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        let flusher = if matches!(policy, FsyncPolicy::GroupCommit { .. }) {
            let clone = wal.try_clone()?;
            let shared = Arc::clone(&flush);
            let span = telemetry.fsync_span.clone();
            let fsyncs = telemetry.fsyncs.clone();
            Some(
                thread::Builder::new()
                    .name("qp-store-flush".to_string())
                    .spawn(move || flusher_loop(clone, shared, span, fsyncs))?,
            )
        } else {
            None
        };
        Ok(FileStore {
            dir,
            policy,
            inner: Mutex::new(FileInner {
                wal,
                seq,
                unsynced: 0,
            }),
            telemetry,
            flush,
            flusher,
        })
    }

    /// The data directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn fsync_locked(&self, inner: &mut FileInner) -> Result<(), StoreError> {
        let _span = self.telemetry.fsync_span.enter();
        inner.wal.sync_data()?;
        inner.unsynced = 0;
        self.telemetry.fsyncs.inc();
        self.telemetry.flush_queue.set(0);
        Ok(())
    }

    /// Snapshot files in the directory, oldest first.
    fn snapshot_paths(&self) -> Result<Vec<PathBuf>, StoreError> {
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().is_some_and(|e| e == "snap")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("snap-"))
            })
            .collect();
        paths.sort();
        Ok(paths)
    }
}

impl Store for FileStore {
    fn append(&self, record: &WalRecord) -> Result<u64, StoreError> {
        let _span = self.telemetry.append_span.enter();
        let payload = record.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        let mut inner = self.inner.lock();
        inner.wal.write_all(&frame)?;
        inner.seq += 1;
        inner.unsynced += 1;
        let seq = inner.seq;
        self.telemetry.flush_queue.set(i64::from(inner.unsynced));
        match self.policy {
            FsyncPolicy::Always => self.fsync_locked(&mut inner)?,
            FsyncPolicy::GroupCommit { every } => {
                if inner.unsynced >= every {
                    inner.unsynced = 0;
                    self.telemetry.flush_queue.set(0);
                    // ordering: Release publishes the group boundary to the
                    // flusher's AcqRel swap; the frame bytes are already in
                    // the kernel via the `write_all` above.
                    self.flush.dirty.store(true, Ordering::Release);
                    if let Some(flusher) = &self.flusher {
                        flusher.thread().unpark();
                    }
                }
            }
            FsyncPolicy::Never => {}
        }
        drop(inner);
        self.telemetry.records.inc();
        self.telemetry.bytes.add(frame.len() as u64);
        Ok(seq)
    }

    fn sync(&self) -> Result<(), StoreError> {
        if matches!(self.policy, FsyncPolicy::Never) {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        // ordering: AcqRel — claim any group the flusher has not fsynced
        // yet so this call's own `sync_data` covers it (and the flusher
        // skips a now-redundant one).
        let background_pending = self.flush.dirty.swap(false, Ordering::AcqRel);
        if inner.unsynced == 0 && !background_pending {
            return Ok(());
        }
        self.fsync_locked(&mut inner)
    }

    fn write_snapshot(&self, snapshot: &Snapshot) -> Result<(), StoreError> {
        // The snapshot claims every record ≤ wal_seq is reflected; make
        // those records at least as durable as the snapshot itself first.
        self.sync()?;
        let payload = snapshot.encode();
        let mut bytes = Vec::with_capacity(16 + payload.len());
        bytes.extend_from_slice(SNAP_MAGIC);
        put_u32(&mut bytes, payload.len() as u32);
        put_u32(&mut bytes, crc32(&payload));
        bytes.extend_from_slice(&payload);
        let final_path = self.dir.join(snapshot_file_name(snapshot.wal_seq));
        let tmp_path = self.dir.join("snap.tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&bytes)?;
            if !matches!(self.policy, FsyncPolicy::Never) {
                tmp.sync_data()?;
            }
        }
        fs::rename(&tmp_path, &final_path)?;
        self.telemetry.snapshots.inc();
        // Prune everything but the newest few.
        let paths = self.snapshot_paths()?;
        if paths.len() > SNAPSHOTS_KEPT {
            for stale in &paths[..paths.len() - SNAPSHOTS_KEPT] {
                let _ = fs::remove_file(stale);
            }
        }
        Ok(())
    }

    fn recover(&self) -> Result<Recovery, StoreError> {
        // Newest snapshot that passes CRC + decode wins; corrupt ones are
        // skipped entirely (never trusted partially).
        let mut snapshot = None;
        let mut snapshots_skipped = 0;
        for path in self.snapshot_paths()?.iter().rev() {
            match read_snapshot(path) {
                Some(snap) => {
                    snapshot = Some(snap);
                    break;
                }
                None => snapshots_skipped += 1,
            }
        }
        let bytes = fs::read(self.dir.join(WAL_FILE_NAME))?;
        let (records, valid_end, _) = scan_wal(&bytes);
        let truncated_bytes = (bytes.len() - valid_end) as u64;
        let skip = snapshot.as_ref().map_or(0, |s: &Snapshot| s.wal_seq) as usize;
        let wal = if skip >= records.len() {
            Vec::new()
        } else {
            records[skip..].to_vec()
        };
        self.telemetry.recovery_records.add(wal.len() as u64);
        if truncated_bytes > 0 {
            // The scan stops at the first bad frame; everything after the
            // tear is one untrusted region, counted as one truncated frame.
            self.telemetry.recovery_truncated.inc();
        }
        self.telemetry
            .recovery_snapshots_skipped
            .add(snapshots_skipped as u64);
        Ok(Recovery {
            snapshot,
            wal,
            truncated_bytes,
            snapshots_skipped,
        })
    }

    fn wal_seq(&self) -> u64 {
        self.inner.lock().seq
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        if let Some(flusher) = self.flusher.take() {
            // ordering: Release pairs with the flusher's Acquire load of
            // `stop`; the unpark below guarantees it observes the store.
            self.flush.stop.store(true, Ordering::Release);
            flusher.thread().unpark();
            let _ = flusher.join();
        }
        // Parting flush of any partial group — best-effort, since Drop has
        // nowhere to report; callers needing the error use `sync`.
        let _ = self.sync();
    }
}

/// Walks WAL bytes, returning the decoded records, the byte offset of the
/// end of the last valid frame, and the number of frames dropped (0 or the
/// rest of the file — the scan stops at the first bad frame, because
/// nothing after a tear can be trusted to be frame-aligned).
fn scan_wal(bytes: &[u8]) -> (Vec<WalRecord>, usize, bool) {
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC[..] {
        return (Vec::new(), 0, !bytes.is_empty());
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return (records, pos, false);
        }
        if rest.len() < 8 {
            return (records, pos, true); // torn header
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_FRAME || rest.len() < 8 + len {
            return (records, pos, true); // implausible length or torn payload
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            return (records, pos, true); // bit rot
        }
        match WalRecord::decode(payload) {
            Ok(record) => records.push(record),
            Err(_) => return (records, pos, true),
        }
        pos += 8 + len;
    }
}

/// Reads and validates one snapshot file; any failure means "skip it".
fn read_snapshot(path: &Path) -> Option<Snapshot> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < 16 || bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC[..] {
        return None;
    }
    let rest = &bytes[SNAP_MAGIC.len()..];
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
    if len > MAX_FRAME || rest.len() < 8 + len {
        return None;
    }
    let payload = &rest[8..8 + len];
    if crc32(payload) != crc {
        return None;
    }
    Snapshot::decode(payload).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LedgerSnapshot;
    use qp_pricing::Pricing;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qp-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sale(quote_id: u64) -> WalRecord {
        WalRecord::Sale {
            quote_id,
            shard: 0,
            bundle_len: 1,
            price: 1.5,
            tick: quote_id,
        }
    }

    #[test]
    fn file_store_round_trips_across_reopen() {
        let dir = test_dir("reopen");
        {
            let store = FileStore::open(&dir).unwrap();
            for i in 0..5 {
                store.append(&sale(i)).unwrap();
            }
            store
                .write_snapshot(&Snapshot {
                    epoch: 2,
                    wal_seq: 3,
                    next_quote_id: 3,
                    pricing: Pricing::UniformBundle { price: 1.5 },
                    shards: vec![LedgerSnapshot::default()],
                })
                .unwrap();
        }
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.wal_seq(), 5);
        let recovery = store.recover().unwrap();
        assert_eq!(recovery.snapshot.as_ref().unwrap().epoch, 2);
        assert_eq!(recovery.wal.len(), 2, "records 4 and 5 follow the snapshot");
        assert_eq!(recovery.truncated_bytes, 0);
        // Appends continue after the recovered sequence.
        assert_eq!(store.append(&sale(5)).unwrap(), 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_parses_the_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("group:8"),
            Some(FsyncPolicy::GroupCommit { every: 8 })
        );
        assert_eq!(FsyncPolicy::parse("group:0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn snapshots_are_pruned_to_the_newest_three() {
        let dir = test_dir("prune");
        let store = FileStore::open(&dir).unwrap();
        for seq in 0..6u64 {
            store.append(&sale(seq)).unwrap();
            store
                .write_snapshot(&Snapshot {
                    epoch: seq,
                    wal_seq: seq + 1,
                    next_quote_id: seq + 1,
                    pricing: Pricing::UniformBundle { price: 0.0 },
                    shards: vec![],
                })
                .unwrap();
        }
        let kept = store.snapshot_paths().unwrap();
        assert_eq!(kept.len(), SNAPSHOTS_KEPT);
        let newest = kept.last().unwrap().file_name().unwrap().to_str().unwrap();
        assert_eq!(newest, snapshot_file_name(6));
        let _ = fs::remove_dir_all(&dir);
    }
}
