//! The in-memory [`Store`] backend: tests and ephemeral servers.
//!
//! Records round-trip through the real codec on every append, so the
//! in-memory backend still exercises the exact byte formats the file
//! backend persists — a `MemStore`-backed test cannot pass with a codec
//! the `FileStore` would choke on.

use parking_lot::Mutex;

use crate::{Recovery, Snapshot, Store, StoreError, WalRecord};

#[derive(Default)]
struct MemInner {
    /// Encoded record payloads, in append order.
    records: Vec<Vec<u8>>,
    /// Encoded snapshot payloads, newest last.
    snapshots: Vec<Vec<u8>>,
    syncs: u64,
}

/// A heap-backed store. "Durable" only for the lifetime of the handle —
/// which is exactly what the crash harness needs: the handle survives the
/// simulated server death, the server state does not.
#[derive(Default)]
pub struct MemStore {
    inner: Mutex<MemInner>,
}

impl MemStore {
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Number of `sync` calls observed (test introspection).
    pub fn sync_count(&self) -> u64 {
        self.inner.lock().syncs
    }

    /// Number of snapshots written (test introspection).
    pub fn snapshot_count(&self) -> usize {
        self.inner.lock().snapshots.len()
    }
}

impl Store for MemStore {
    fn append(&self, record: &WalRecord) -> Result<u64, StoreError> {
        let payload = record.encode();
        // Decode-after-encode keeps the in-memory backend honest about the
        // wire format (it is free at test scale).
        WalRecord::decode(&payload)?;
        let mut inner = self.inner.lock();
        inner.records.push(payload);
        Ok(inner.records.len() as u64)
    }

    fn sync(&self) -> Result<(), StoreError> {
        self.inner.lock().syncs += 1;
        Ok(())
    }

    fn write_snapshot(&self, snapshot: &Snapshot) -> Result<(), StoreError> {
        let payload = snapshot.encode();
        Snapshot::decode(&payload)?;
        self.inner.lock().snapshots.push(payload);
        Ok(())
    }

    fn recover(&self) -> Result<Recovery, StoreError> {
        let inner = self.inner.lock();
        let snapshot = match inner.snapshots.last() {
            Some(payload) => Some(Snapshot::decode(payload)?),
            None => None,
        };
        let skip = snapshot.as_ref().map_or(0, |s| s.wal_seq) as usize;
        let wal = inner
            .records
            .iter()
            .skip(skip)
            .map(|payload| WalRecord::decode(payload))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Recovery {
            snapshot,
            wal,
            truncated_bytes: 0,
            snapshots_skipped: 0,
        })
    }

    fn wal_seq(&self) -> u64 {
        self.inner.lock().records.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LedgerSnapshot;
    use qp_pricing::Pricing;

    #[test]
    fn mem_store_recovers_snapshot_plus_suffix() {
        let store = MemStore::new();
        for i in 0..4u64 {
            let seq = store
                .append(&WalRecord::Sale {
                    quote_id: i,
                    shard: 0,
                    bundle_len: 1,
                    price: 1.0,
                    tick: i,
                })
                .unwrap();
            assert_eq!(seq, i + 1);
        }
        store
            .write_snapshot(&Snapshot {
                epoch: 1,
                wal_seq: 3,
                next_quote_id: 3,
                pricing: Pricing::UniformBundle { price: 1.0 },
                shards: vec![LedgerSnapshot::default()],
            })
            .unwrap();
        let recovery = store.recover().unwrap();
        assert_eq!(recovery.snapshot.as_ref().unwrap().wal_seq, 3);
        assert_eq!(recovery.wal.len(), 1, "only the post-snapshot suffix");
        assert_eq!(recovery.wal[0].quote_id(), Some(3));
        assert_eq!(store.wal_seq(), 4);
        store.sync().unwrap();
        assert_eq!(store.sync_count(), 1);
        assert_eq!(store.snapshot_count(), 1);
    }
}
