//! Linear-program construction.

use crate::{simplex, LpError, LpSolution};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx ≥ b`
    Ge,
    /// `aᵀx = b`
    Eq,
}

/// A single linear constraint `aᵀx op b`, with `a` stored sparsely as
/// `(variable, coefficient)` pairs.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse coefficient vector; indices refer to problem variables.
    pub coeffs: Vec<(usize, f64)>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
///
/// Variables are indexed `0..num_vars` and implicitly satisfy `x ≥ 0`.
/// Objective coefficients default to zero.
#[derive(Debug, Clone)]
pub struct LpProblem {
    sense: Sense,
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    max_iterations: usize,
}

impl LpProblem {
    /// Creates an empty problem with `num_vars` non-negative variables.
    pub fn new(sense: Sense, num_vars: usize) -> Self {
        LpProblem {
            sense,
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
            // Generous default: simplex rarely needs more than a few multiples
            // of (rows + cols) pivots on non-degenerate pricing LPs.
            max_iterations: 200_000,
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Objective coefficients (dense).
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Overrides the pivot-iteration budget.
    pub fn set_max_iterations(&mut self, limit: usize) {
        self.max_iterations = limit;
    }

    /// Pivot-iteration budget.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// Sets the objective coefficient of variable `var`.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        assert!(var < self.num_vars, "objective variable out of range");
        self.objective[var] = coeff;
    }

    /// Adds `coeff` to the objective coefficient of variable `var`.
    pub fn add_objective(&mut self, var: usize, coeff: f64) {
        assert!(var < self.num_vars, "objective variable out of range");
        self.objective[var] += coeff;
    }

    /// Adds a constraint; returns its index (used to look up dual values).
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
    ) -> usize {
        self.constraints.push(Constraint { coeffs, op, rhs });
        self.constraints.len() - 1
    }

    /// Validates indices and finiteness of all coefficients.
    pub fn validate(&self) -> Result<(), LpError> {
        for (i, &c) in self.objective.iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::NonFiniteCoefficient);
            }
            debug_assert!(i < self.num_vars);
        }
        for cons in &self.constraints {
            if !cons.rhs.is_finite() {
                return Err(LpError::NonFiniteCoefficient);
            }
            for &(j, a) in &cons.coeffs {
                if j >= self.num_vars {
                    return Err(LpError::VariableOutOfRange {
                        index: j,
                        num_vars: self.num_vars,
                    });
                }
                if !a.is_finite() {
                    return Err(LpError::NonFiniteCoefficient);
                }
            }
        }
        Ok(())
    }

    /// Solves the program with the two-phase simplex method.
    ///
    /// Returns [`LpError::Infeasible`] / [`LpError::Unbounded`] for the
    /// corresponding outcomes.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        self.validate()?;
        simplex::solve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_dimensions() {
        let mut lp = LpProblem::new(Sense::Minimize, 3);
        assert_eq!(lp.num_vars(), 3);
        assert_eq!(lp.num_constraints(), 0);
        let idx = lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 1.0);
        assert_eq!(idx, 0);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.sense(), Sense::Minimize);
    }

    #[test]
    fn objective_accumulation() {
        let mut lp = LpProblem::new(Sense::Maximize, 2);
        lp.set_objective(0, 1.0);
        lp.add_objective(0, 2.0);
        assert_eq!(lp.objective()[0], 3.0);
        assert_eq!(lp.objective()[1], 0.0);
    }

    #[test]
    fn validate_rejects_out_of_range_variable() {
        let mut lp = LpProblem::new(Sense::Maximize, 2);
        lp.add_constraint(vec![(5, 1.0)], ConstraintOp::Le, 1.0);
        assert_eq!(
            lp.validate(),
            Err(LpError::VariableOutOfRange {
                index: 5,
                num_vars: 2
            })
        );
    }

    #[test]
    fn validate_rejects_nan() {
        let mut lp = LpProblem::new(Sense::Maximize, 1);
        lp.add_constraint(vec![(0, f64::NAN)], ConstraintOp::Le, 1.0);
        assert_eq!(lp.validate(), Err(LpError::NonFiniteCoefficient));

        let mut lp2 = LpProblem::new(Sense::Maximize, 1);
        lp2.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, f64::INFINITY);
        assert_eq!(lp2.validate(), Err(LpError::NonFiniteCoefficient));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_objective_panics_out_of_range() {
        let mut lp = LpProblem::new(Sense::Maximize, 1);
        lp.set_objective(3, 1.0);
    }
}
