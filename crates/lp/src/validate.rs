//! Solution validation helpers.
//!
//! These utilities check that a candidate solution is (approximately)
//! feasible and that primal/dual objectives agree — used heavily by the test
//! suites of the pricing algorithms to guard against silent solver drift.

use crate::{ConstraintOp, LpProblem, LpSolution, CHECK_EPS};

/// Returns the largest constraint violation of `x` for problem `p`
/// (0.0 when `x` is feasible). Non-negativity violations are included.
pub fn max_violation(p: &LpProblem, x: &[f64]) -> f64 {
    let mut worst = 0.0f64;
    for &v in x {
        if v < 0.0 {
            worst = worst.max(-v);
        }
    }
    for c in p.constraints() {
        let lhs: f64 = c.coeffs.iter().map(|&(j, a)| a * x[j]).sum();
        let viol = match c.op {
            ConstraintOp::Le => lhs - c.rhs,
            ConstraintOp::Ge => c.rhs - lhs,
            ConstraintOp::Eq => (lhs - c.rhs).abs(),
        };
        worst = worst.max(viol.max(0.0));
    }
    worst
}

/// True if `x` satisfies every constraint of `p` up to `tol`.
pub fn is_feasible(p: &LpProblem, x: &[f64], tol: f64) -> bool {
    max_violation(p, x) <= tol
}

/// Checks an optimal solution: primal feasibility and agreement between the
/// reported objective and `c·x`. Returns a human-readable error otherwise.
pub fn check_solution(p: &LpProblem, sol: &LpSolution) -> Result<(), String> {
    let viol = max_violation(p, &sol.primal);
    if viol > CHECK_EPS {
        return Err(format!("primal infeasible: max violation {viol:e}"));
    }
    let cx: f64 = p
        .objective()
        .iter()
        .zip(&sol.primal)
        .map(|(c, x)| c * x)
        .sum();
    if (cx - sol.objective).abs() > CHECK_EPS * (1.0 + sol.objective.abs()) {
        return Err(format!(
            "objective mismatch: reported {} but c·x = {}",
            sol.objective, cx
        ));
    }
    Ok(())
}

/// Weak-duality / strong-duality check: `bᵀy` must equal the primal objective
/// at optimality (up to tolerance scaled by the magnitude of the objective).
pub fn check_strong_duality(p: &LpProblem, sol: &LpSolution) -> Result<(), String> {
    let by: f64 = p
        .constraints()
        .iter()
        .zip(&sol.dual)
        .map(|(c, y)| c.rhs * y)
        .sum();
    let scale = 1.0 + sol.objective.abs();
    if (by - sol.objective).abs() > 1e-5 * scale {
        return Err(format!(
            "strong duality violated: primal {} vs bᵀy {}",
            sol.objective, by
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstraintOp, LpProblem, Sense};

    fn sample_lp() -> LpProblem {
        let mut lp = LpProblem::new(Sense::Maximize, 2);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, 3.0)], ConstraintOp::Le, 6.0);
        lp
    }

    #[test]
    fn feasibility_check() {
        let lp = sample_lp();
        assert!(is_feasible(&lp, &[1.0, 1.0], 1e-9));
        assert!(!is_feasible(&lp, &[5.0, 0.0], 1e-9));
        assert!(!is_feasible(&lp, &[-1.0, 0.0], 1e-9));
        assert!(max_violation(&lp, &[5.0, 0.0]) > 0.9);
    }

    #[test]
    fn optimal_solution_passes_checks() {
        let lp = sample_lp();
        let sol = lp.solve().unwrap();
        check_solution(&lp, &sol).unwrap();
        check_strong_duality(&lp, &sol).unwrap();
    }

    #[test]
    fn equality_violation_is_two_sided() {
        let mut lp = LpProblem::new(Sense::Maximize, 1);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 2.0);
        assert!(max_violation(&lp, &[2.5]) > 0.4);
        assert!(max_violation(&lp, &[1.5]) > 0.4);
        assert!(is_feasible(&lp, &[2.0], 1e-9));
    }
}
