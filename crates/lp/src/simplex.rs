//! Dense two-phase primal simplex.
//!
//! The implementation keeps the full tableau in row-major `f64` storage and
//! maintains the reduced-cost row incrementally. Phase 1 maximizes the
//! negated sum of artificial variables; phase 2 optimizes the user objective.
//! Dantzig pricing is used by default with a switch to Bland's rule after a
//! pivot budget is exceeded, which guarantees termination.

use crate::{ConstraintOp, LpError, LpProblem, LpSolution, LpStatus, Sense, EPS};

/// Per-row bookkeeping of how the original constraint was normalized.
struct RowInfo {
    /// Column index of the identity ("logical") column of this row: the slack
    /// column for `≤` rows, the artificial column for `≥` / `=` rows. Used to
    /// read the dual value from the reduced-cost row.
    logical_col: usize,
    /// Whether the row was multiplied by -1 to make the right-hand side
    /// non-negative; the reported dual must then be negated.
    negated: bool,
    /// Whether the row is still active (phase 1 may drop redundant rows).
    active: bool,
}

/// Dense simplex tableau.
struct Tableau {
    /// Number of rows (constraints).
    m: usize,
    /// Total number of columns excluding the RHS.
    cols: usize,
    /// Number of structural (user) variables.
    n_struct: usize,
    /// First artificial column index (artificials occupy `art_start..cols`).
    art_start: usize,
    /// Row-major matrix of size `m x (cols + 1)`; the last entry of each row
    /// is the right-hand side.
    a: Vec<f64>,
    /// Reduced-cost row of size `cols + 1` (last entry is the negated
    /// objective value of the current basis).
    obj: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Per-row normalization info.
    rows: Vec<RowInfo>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.cols + 1) + c]
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.a[r * (self.cols + 1) + self.cols]
    }

    /// Performs a pivot on `(pivot_row, pivot_col)`, updating all rows and
    /// the reduced-cost row.
    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let w = self.cols + 1;
        let pr_start = pivot_row * w;
        let piv = self.a[pr_start + pivot_col];
        debug_assert!(piv.abs() > EPS, "pivot element too small");

        // Normalize the pivot row.
        let inv = 1.0 / piv;
        for j in 0..w {
            self.a[pr_start + j] *= inv;
        }
        self.a[pr_start + pivot_col] = 1.0;

        // Eliminate the pivot column from every other row.
        // Split borrows by copying the pivot row once; the copy is reused for
        // the objective row as well.
        let pivot_row_copy: Vec<f64> = self.a[pr_start..pr_start + w].to_vec();
        for r in 0..self.m {
            if r == pivot_row {
                continue;
            }
            let start = r * w;
            let factor = self.a[start + pivot_col];
            if factor.abs() <= EPS {
                self.a[start + pivot_col] = 0.0;
                continue;
            }
            for (j, &pv) in pivot_row_copy.iter().enumerate() {
                self.a[start + j] -= factor * pv;
            }
            self.a[start + pivot_col] = 0.0;
        }
        let factor = self.obj[pivot_col];
        if factor.abs() > EPS {
            for (o, &pv) in self.obj.iter_mut().zip(&pivot_row_copy) {
                *o -= factor * pv;
            }
        }
        self.obj[pivot_col] = 0.0;

        self.basis[pivot_row] = pivot_col;
    }

    /// Recomputes the reduced-cost row `obj[j] = c_B·(tableau col j) − c[j]`
    /// for the cost vector `c` (indexed over all columns; missing entries are
    /// treated as zero).
    fn rebuild_objective(&mut self, c: &[f64]) {
        let w = self.cols + 1;
        self.obj = vec![0.0; w];
        // obj = -c, then add c_B * row_i for every basic row.
        for (j, &cj) in c.iter().enumerate() {
            self.obj[j] = -cj;
        }
        for r in 0..self.m {
            if !self.rows[r].active {
                continue;
            }
            let cb = c.get(self.basis[r]).copied().unwrap_or(0.0);
            // float-eq: exact-zero skip of untouched objective entries;
            // cb is copied, never computed, so 0.0 compares exactly.
            if cb == 0.0 {
                continue;
            }
            let start = r * w;
            for j in 0..w {
                self.obj[j] += cb * self.a[start + j];
            }
        }
        // Reduced costs of basic columns are exactly zero.
        for r in 0..self.m {
            if self.rows[r].active {
                self.obj[self.basis[r]] = 0.0;
            }
        }
    }

    /// Chooses an entering column among `allowed` (columns `< limit`), or
    /// `None` if the current basis is optimal. `bland` selects the smallest
    /// eligible index instead of the most negative reduced cost.
    fn choose_entering(&self, limit: usize, bland: bool) -> Option<usize> {
        if bland {
            (0..limit).find(|&j| self.obj[j] < -EPS)
        } else {
            let mut best = None;
            let mut best_val = -EPS;
            for j in 0..limit {
                let v = self.obj[j];
                if v < best_val {
                    best_val = v;
                    best = Some(j);
                }
            }
            best
        }
    }

    /// Ratio test: chooses the leaving row for entering column `col`.
    /// Returns `None` if the column is unbounded (no positive entries).
    fn choose_leaving(&self, col: usize) -> Option<usize> {
        let mut best_row = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..self.m {
            if !self.rows[r].active {
                continue;
            }
            let a = self.at(r, col);
            if a > EPS {
                let ratio = self.rhs(r) / a;
                // Tie-break on the smallest basic variable index; together
                // with the Bland fallback this prevents cycling in practice.
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && best_row
                            .map(|br: usize| self.basis[r] < self.basis[br])
                            .unwrap_or(true));
                if better {
                    best_ratio = ratio;
                    best_row = Some(r);
                }
            }
        }
        best_row
    }
}

/// Builds the initial tableau from a validated problem.
fn build_tableau(p: &LpProblem) -> Tableau {
    let m = p.num_constraints();
    let n = p.num_vars();

    // Count slack/surplus and artificial columns.
    let mut n_slack = 0;
    let mut n_art = 0;
    for c in p.constraints() {
        // Normalize sense after possible negation for negative rhs.
        let op = effective_op(c.op, c.rhs);
        match op {
            ConstraintOp::Le => n_slack += 1,
            ConstraintOp::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            ConstraintOp::Eq => n_art += 1,
        }
    }

    let slack_start = n;
    let art_start = n + n_slack;
    let cols = n + n_slack + n_art;
    let w = cols + 1;

    let mut a = vec![0.0; m * w];
    let mut basis = vec![0usize; m];
    let mut rows = Vec::with_capacity(m);

    let mut next_slack = slack_start;
    let mut next_art = art_start;

    for (i, c) in p.constraints().iter().enumerate() {
        let negated = c.rhs < 0.0;
        let sign = if negated { -1.0 } else { 1.0 };
        let rhs = c.rhs * sign;
        let op = effective_op(c.op, c.rhs);

        let start = i * w;
        for &(j, v) in &c.coeffs {
            a[start + j] += v * sign;
        }
        a[start + cols] = rhs;

        let logical_col;
        match op {
            ConstraintOp::Le => {
                a[start + next_slack] = 1.0;
                basis[i] = next_slack;
                logical_col = next_slack;
                next_slack += 1;
            }
            ConstraintOp::Ge => {
                a[start + next_slack] = -1.0;
                next_slack += 1;
                a[start + next_art] = 1.0;
                basis[i] = next_art;
                logical_col = next_art;
                next_art += 1;
            }
            ConstraintOp::Eq => {
                a[start + next_art] = 1.0;
                basis[i] = next_art;
                logical_col = next_art;
                next_art += 1;
            }
        }
        rows.push(RowInfo {
            logical_col,
            negated,
            active: true,
        });
    }

    Tableau {
        m,
        cols,
        n_struct: n,
        art_start,
        a,
        obj: vec![0.0; w],
        basis,
        rows,
    }
}

/// The constraint sense after normalizing a negative right-hand side.
fn effective_op(op: ConstraintOp, rhs: f64) -> ConstraintOp {
    if rhs >= 0.0 {
        return op;
    }
    match op {
        ConstraintOp::Le => ConstraintOp::Ge,
        ConstraintOp::Ge => ConstraintOp::Le,
        ConstraintOp::Eq => ConstraintOp::Eq,
    }
}

/// Runs simplex iterations until optimality for the current reduced-cost row.
/// `limit` restricts the entering columns (used to exclude artificials in
/// phase 2). Returns the number of pivots, or an error on unboundedness /
/// iteration exhaustion.
fn iterate(t: &mut Tableau, limit: usize, max_iters: usize) -> Result<usize, LpError> {
    let mut iters = 0usize;
    // Switch to Bland's rule once we have done "suspiciously many" pivots.
    let bland_threshold = 8 * (t.m + t.cols) + 64;
    loop {
        let bland = iters > bland_threshold;
        let Some(col) = t.choose_entering(limit, bland) else {
            return Ok(iters);
        };
        let Some(row) = t.choose_leaving(col) else {
            return Err(LpError::Unbounded);
        };
        t.pivot(row, col);
        iters += 1;
        if iters >= max_iters {
            return Err(LpError::IterationLimit { iterations: iters });
        }
    }
}

/// Solves `p` with the two-phase simplex method.
pub fn solve(p: &LpProblem) -> Result<LpSolution, LpError> {
    let mut t = build_tableau(p);
    let max_iters = p.max_iterations();
    let mut total_iters = 0usize;

    // ---- Phase 1: drive artificial variables to zero. ------------------
    let has_artificials = t.art_start < t.cols;
    if has_artificials {
        let mut c1 = vec![0.0; t.cols];
        for cj in c1.iter_mut().skip(t.art_start) {
            *cj = -1.0; // maximize −Σ artificials
        }
        t.rebuild_objective(&c1);
        let all_cols = t.cols;
        total_iters += iterate(&mut t, all_cols, max_iters)?;

        // Objective value of the phase-1 problem is stored implicitly; we
        // evaluate it directly as −Σ (artificial basic values).
        let mut art_sum = 0.0;
        for r in 0..t.m {
            if t.basis[r] >= t.art_start {
                art_sum += t.rhs(r);
            }
        }
        if art_sum > 1e-7 {
            return Err(LpError::Infeasible);
        }

        // Pivot remaining (zero-valued) artificials out of the basis where
        // possible; rows that cannot be pivoted are redundant and dropped.
        for r in 0..t.m {
            if t.basis[r] < t.art_start {
                continue;
            }
            let mut pivot_col = None;
            for j in 0..t.art_start {
                if t.at(r, j).abs() > 1e-7 {
                    pivot_col = Some(j);
                    break;
                }
            }
            match pivot_col {
                Some(j) => t.pivot(r, j),
                None => t.rows[r].active = false,
            }
        }
    }

    // ---- Phase 2: optimize the user objective. --------------------------
    let flip = match p.sense() {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let mut c2 = vec![0.0; t.cols];
    for (j, &cj) in p.objective().iter().enumerate() {
        c2[j] = cj * flip;
    }
    t.rebuild_objective(&c2);
    // Artificial columns must never re-enter the basis.
    let struct_and_slack = t.art_start;
    total_iters += iterate(&mut t, struct_and_slack, max_iters)?;

    // ---- Extract primal solution. ---------------------------------------
    let mut primal = vec![0.0; t.n_struct];
    for r in 0..t.m {
        if !t.rows[r].active {
            continue;
        }
        let b = t.basis[r];
        if b < t.n_struct {
            // Clamp tiny negative values introduced by rounding.
            primal[b] = t.rhs(r).max(0.0);
        }
    }

    let mut objective = 0.0;
    for (j, &cj) in p.objective().iter().enumerate() {
        objective += cj * primal[j];
    }

    // ---- Extract dual values from the reduced-cost row. -----------------
    // For the internal maximization problem, the dual of row i is the
    // reduced cost of its logical column. Negated rows and minimization
    // problems flip the sign back to the user's convention.
    let mut dual = vec![0.0; t.m];
    for (r, row) in t.rows.iter().enumerate() {
        if !row.active {
            continue;
        }
        let mut y = t.obj[row.logical_col];
        if row.negated {
            y = -y;
        }
        y *= flip;
        dual[r] = y;
    }

    Ok(LpSolution {
        status: LpStatus::Optimal,
        objective,
        primal,
        dual,
        iterations: total_iters,
    })
}

#[cfg(test)]
mod tests {
    use crate::{ConstraintOp, LpError, LpProblem, Sense};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn simple_max_two_vars() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => obj 36 at (2,6)
        let mut lp = LpProblem::new(Sense::Maximize, 2);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 5.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(vec![(1, 2.0)], ConstraintOp::Le, 12.0);
        lp.add_constraint(vec![(0, 3.0), (1, 2.0)], ConstraintOp::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective, 36.0));
        assert!(approx(sol.primal[0], 2.0));
        assert!(approx(sol.primal[1], 6.0));
    }

    #[test]
    fn duals_match_known_shadow_prices() {
        // Same LP as above; known duals are (0, 3/2, 1).
        let mut lp = LpProblem::new(Sense::Maximize, 2);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 5.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(vec![(1, 2.0)], ConstraintOp::Le, 12.0);
        lp.add_constraint(vec![(0, 3.0), (1, 2.0)], ConstraintOp::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.dual[0], 0.0));
        assert!(approx(sol.dual[1], 1.5));
        assert!(approx(sol.dual[2], 1.0));
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 4, x + 2y >= 6 => optimum at (2,2), obj 10
        let mut lp = LpProblem::new(Sense::Minimize, 2);
        lp.set_objective(0, 2.0);
        lp.set_objective(1, 3.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, 2.0)], ConstraintOp::Ge, 6.0);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective, 10.0));
        // Duals of the min problem are non-negative for >= constraints.
        assert!(sol.dual[0] >= -1e-9);
        assert!(sol.dual[1] >= -1e-9);
        // Strong duality: b'y == objective.
        assert!(approx(4.0 * sol.dual[0] + 6.0 * sol.dual[1], 10.0));
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x - y = 1 => (3,2), obj 5
        let mut lp = LpProblem::new(Sense::Maximize, 2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintOp::Eq, 1.0);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective, 5.0));
        assert!(approx(sol.primal[0], 3.0));
        assert!(approx(sol.primal[1], 2.0));
    }

    #[test]
    fn detects_infeasible() {
        // x <= 1 and x >= 3 is infeasible.
        let mut lp = LpProblem::new(Sense::Maximize, 1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 3.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LpProblem::new(Sense::Maximize, 2);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // max -x s.t. -x <= -2  (i.e. x >= 2) => x = 2, obj -2
        let mut lp = LpProblem::new(Sense::Maximize, 1);
        lp.set_objective(0, -1.0);
        lp.add_constraint(vec![(0, -1.0)], ConstraintOp::Le, -2.0);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective, -2.0));
        assert!(approx(sol.primal[0], 2.0));
    }

    #[test]
    fn redundant_equality_rows_are_dropped() {
        // Two identical equalities; still solvable.
        let mut lp = LpProblem::new(Sense::Maximize, 2);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 3.0);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], ConstraintOp::Eq, 6.0);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective, 3.0));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate instance (Beale's example structure).
        let mut lp = LpProblem::new(Sense::Maximize, 4);
        lp.set_objective(0, 0.75);
        lp.set_objective(1, -150.0);
        lp.set_objective(2, 0.02);
        lp.set_objective(3, -6.0);
        lp.add_constraint(
            vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        lp.add_constraint(
            vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            ConstraintOp::Le,
            0.0,
        );
        lp.add_constraint(vec![(2, 1.0)], ConstraintOp::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective, 0.05));
    }

    #[test]
    fn zero_constraint_problem() {
        // Unconstrained with zero objective: optimum 0 at origin.
        let lp = LpProblem::new(Sense::Maximize, 3);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective, 0.0));
        assert!(sol.primal.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn larger_transportation_like_lp() {
        // min sum of x_ij * c_ij with supply/demand equalities.
        // supplies: 20, 30; demands: 10, 25, 15. costs: [[2,3,1],[5,4,8]]
        let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
        let supply = [20.0, 30.0];
        let demand = [10.0, 25.0, 15.0];
        let var = |i: usize, j: usize| i * 3 + j;
        let mut lp = LpProblem::new(Sense::Minimize, 6);
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                lp.set_objective(var(i, j), c);
            }
        }
        for (i, &s) in supply.iter().enumerate() {
            let row: Vec<_> = (0..3).map(|j| (var(i, j), 1.0)).collect();
            lp.add_constraint(row, ConstraintOp::Eq, s);
        }
        for (j, &d) in demand.iter().enumerate() {
            let col: Vec<_> = (0..2).map(|i| (var(i, j), 1.0)).collect();
            lp.add_constraint(col, ConstraintOp::Eq, d);
        }
        let sol = lp.solve().unwrap();
        // Optimal plan: x02=15, x00=5, x01=0 ... compute expected optimum:
        // route cheapest: x02=15 (1), x00=10 (2), remaining supply1=... let's
        // trust a hand-computed optimum of 160:
        // x00=10(2)+x02=15(1)? supply0=20 => x00=5? Verify via assertion of
        // feasibility + objective bound instead of exact value.
        let x: Vec<f64> = sol.primal.clone();
        for (i, &s) in supply.iter().enumerate() {
            let tot: f64 = (0..3).map(|j| x[var(i, j)]).sum();
            assert!(approx(tot, s));
        }
        for (j, &d) in demand.iter().enumerate() {
            let tot: f64 = (0..2).map(|i| x[var(i, j)]).sum();
            assert!(approx(tot, d));
        }
        // The objective must equal c.x and be <= any feasible plan we try.
        let naive = 10.0 * 2.0 + 15.0 * 1.0 + 25.0 * 4.0 + 5.0 * 5.0 + 0.0;
        assert!(sol.objective <= naive + 1e-6);
    }
}
