//! Error type for LP construction and solving.

use std::fmt;

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A variable index referenced in the objective or a constraint is out of
    /// range for the declared number of variables.
    VariableOutOfRange {
        /// The offending variable index.
        index: usize,
        /// The number of variables declared for the problem.
        num_vars: usize,
    },
    /// A coefficient or right-hand side was NaN or infinite.
    NonFiniteCoefficient,
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The solver exceeded its pivot-iteration budget without converging.
    IterationLimit {
        /// The number of pivots performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::VariableOutOfRange { index, num_vars } => write!(
                f,
                "variable index {index} out of range for problem with {num_vars} variables"
            ),
            LpError::NonFiniteCoefficient => {
                write!(f, "objective/constraint coefficients must be finite")
            }
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit { iterations } => {
                write!(f, "simplex did not converge within {iterations} pivots")
            }
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LpError::VariableOutOfRange {
            index: 7,
            num_vars: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::IterationLimit { iterations: 10 }
            .to_string()
            .contains("10"));
        assert!(LpError::NonFiniteCoefficient.to_string().contains("finite"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<LpError>();
    }
}
