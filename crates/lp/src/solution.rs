//! Solution representation.

/// Termination status of the simplex solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
}

/// An optimal solution to a linear program.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status (always [`LpStatus::Optimal`]; non-optimal outcomes
    /// are reported through [`crate::LpError`]).
    pub status: LpStatus,
    /// Optimal objective value in the *original* sense of the problem.
    pub objective: f64,
    /// Optimal values of the decision variables, indexed as in the problem.
    pub primal: Vec<f64>,
    /// Dual value (shadow price) of every constraint, indexed by the order in
    /// which constraints were added.
    ///
    /// Sign convention: duals are reported for the problem *as stated*. For a
    /// maximization problem with a `≤` constraint the dual is non-negative;
    /// for a minimization problem with a `≥` constraint the dual is
    /// non-negative.
    pub dual: Vec<f64>,
    /// Number of simplex pivots performed (both phases).
    pub iterations: usize,
}

impl LpSolution {
    /// Value of variable `var`.
    pub fn value(&self, var: usize) -> f64 {
        self.primal[var]
    }

    /// Dual value of constraint `cons`.
    pub fn dual_value(&self, cons: usize) -> f64 {
        self.dual[cons]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let sol = LpSolution {
            status: LpStatus::Optimal,
            objective: 5.0,
            primal: vec![1.0, 2.0],
            dual: vec![0.5],
            iterations: 3,
        };
        assert_eq!(sol.value(1), 2.0);
        assert_eq!(sol.dual_value(0), 0.5);
        assert_eq!(sol.status, LpStatus::Optimal);
    }
}
