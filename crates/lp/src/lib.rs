//! # qp-lp — a small, dependency-free linear-programming solver
//!
//! The pricing algorithms of Chawla et al. (VLDB 2019) — `LPIP`, `CIP`, the
//! subadditive revenue upper bound and the UBP refinement step — all reduce to
//! moderately sized linear programs. The paper used CVXPY; this crate provides
//! the equivalent substrate in pure Rust: a dense **two-phase primal simplex**
//! solver that returns both the primal solution and the dual values of every
//! constraint.
//!
//! The solver targets the problem shapes that appear in query pricing
//! (hundreds of constraints, a few thousand variables) and favours
//! correctness and clarity over industrial-strength numerics. All arithmetic
//! is `f64` with explicit tolerances.
//!
//! ## Problem form
//!
//! ```text
//! maximize (or minimize)   cᵀ x
//! subject to               aᵢᵀ x  {≤, ≥, =}  bᵢ      for every constraint i
//!                          x ≥ 0
//! ```
//!
//! Variables are non-negative by construction; upper bounds such as `x ≤ 1`
//! are expressed as ordinary `≤` constraints.
//!
//! ## Example
//!
//! ```
//! use qp_lp::{LpProblem, Sense, ConstraintOp};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x,y >= 0
//! let mut lp = LpProblem::new(Sense::Maximize, 2);
//! lp.set_objective(0, 3.0);
//! lp.set_objective(1, 2.0);
//! lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 4.0);
//! lp.add_constraint(vec![(0, 1.0), (1, 3.0)], ConstraintOp::Le, 6.0);
//!
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective - 12.0).abs() < 1e-7);
//! assert!((sol.primal[0] - 4.0).abs() < 1e-7);
//! ```

mod error;
mod problem;
mod simplex;
mod solution;
pub mod validate;

pub use error::LpError;
pub use problem::{Constraint, ConstraintOp, LpProblem, Sense};
pub use solution::{LpSolution, LpStatus};

/// Numerical tolerance used throughout the solver for feasibility and
/// optimality tests.
pub const EPS: f64 = 1e-9;

/// Looser tolerance used when validating solutions (accumulated rounding in
/// long pivot sequences can exceed [`EPS`]).
pub const CHECK_EPS: f64 = 1e-6;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn doc_example_is_correct() {
        let mut lp = LpProblem::new(Sense::Maximize, 2);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, 3.0)], ConstraintOp::Le, 6.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 12.0).abs() < 1e-7);
    }
}
