//! Property-based tests for the simplex solver.
//!
//! Strategy: generate small random LPs of the shape that dominates query
//! pricing (maximize a non-negative objective subject to `≤` constraints with
//! non-negative coefficients and rhs). Such LPs are always feasible (x = 0)
//! and bounded whenever every objective variable appears in some constraint
//! with a positive coefficient, so the solver must return `Optimal`. We then
//! check feasibility, optimality versus random feasible points, and strong
//! duality.

use proptest::prelude::*;
use qp_lp::{validate, ConstraintOp, LpProblem, Sense};

/// A small random packing-style LP together with coefficient matrices so the
/// test can re-derive feasibility independently of the solver.
#[derive(Debug, Clone)]
struct PackingLp {
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn packing_lp_strategy() -> impl Strategy<Value = PackingLp> {
    (2usize..6, 2usize..7).prop_flat_map(|(n, m)| {
        let obj = proptest::collection::vec(0.1f64..10.0, n);
        let rows =
            proptest::collection::vec((proptest::collection::vec(0.0f64..5.0, n), 1.0f64..20.0), m);
        (obj, rows).prop_map(|(objective, rows)| PackingLp { objective, rows })
    })
}

/// Ensures boundedness: every variable gets an extra row `x_j <= 50`.
fn build(lp: &PackingLp) -> LpProblem {
    let n = lp.objective.len();
    let mut p = LpProblem::new(Sense::Maximize, n);
    for (j, &c) in lp.objective.iter().enumerate() {
        p.set_objective(j, c);
    }
    for (coeffs, rhs) in &lp.rows {
        let sparse: Vec<_> = coeffs
            .iter()
            .enumerate()
            .filter(|(_, &a)| a != 0.0)
            .map(|(j, &a)| (j, a))
            .collect();
        p.add_constraint(sparse, ConstraintOp::Le, *rhs);
    }
    for j in 0..n {
        p.add_constraint(vec![(j, 1.0)], ConstraintOp::Le, 50.0);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn solver_returns_feasible_optimal_solutions(lp in packing_lp_strategy()) {
        let p = build(&lp);
        let sol = p.solve().expect("packing LP must be solvable");
        validate::check_solution(&p, &sol).unwrap();
        validate::check_strong_duality(&p, &sol).unwrap();
        // Origin is feasible with objective 0, so the optimum is >= 0.
        prop_assert!(sol.objective >= -1e-9);
    }

    #[test]
    fn optimum_dominates_random_feasible_points(
        lp in packing_lp_strategy(),
        scale in 0.0f64..1.0,
    ) {
        let p = build(&lp);
        let sol = p.solve().unwrap();

        // Construct a feasible point by scaling down the per-variable cap
        // until all rows are satisfied.
        let n = lp.objective.len();
        let mut x = vec![scale * 50.0; n];
        loop {
            let viol = validate::max_violation(&p, &x);
            if viol <= 1e-9 {
                break;
            }
            for v in &mut x {
                *v *= 0.5;
            }
            if x.iter().all(|&v| v < 1e-12) {
                break;
            }
        }
        let val: f64 = lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
        prop_assert!(sol.objective >= val - 1e-6,
            "solver optimum {} worse than feasible value {}", sol.objective, val);
    }

    #[test]
    fn duals_are_nonnegative_for_le_constraints(lp in packing_lp_strategy()) {
        let p = build(&lp);
        let sol = p.solve().unwrap();
        for (i, &y) in sol.dual.iter().enumerate() {
            prop_assert!(y >= -1e-7, "dual {} of constraint {} negative", y, i);
        }
    }

    #[test]
    fn covering_lps_satisfy_weak_duality(
        costs in proptest::collection::vec(0.5f64..5.0, 3),
        demands in proptest::collection::vec(1.0f64..10.0, 3),
    ) {
        // min c·x s.t. x_j >= d_j  => optimum is exactly sum c_j d_j.
        let n = costs.len();
        let mut p = LpProblem::new(Sense::Minimize, n);
        for (j, &c) in costs.iter().enumerate() {
            p.set_objective(j, c);
        }
        for (j, &d) in demands.iter().enumerate() {
            p.add_constraint(vec![(j, 1.0)], ConstraintOp::Ge, d);
        }
        let sol = p.solve().unwrap();
        let expected: f64 = costs.iter().zip(&demands).map(|(c, d)| c * d).sum();
        prop_assert!((sol.objective - expected).abs() < 1e-6);
        validate::check_strong_duality(&p, &sol).unwrap();
    }
}
