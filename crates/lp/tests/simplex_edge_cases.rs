//! Simplex edge cases: degenerate and redundant systems must terminate at
//! the optimum, and pathological problems must come back as the right
//! [`LpError`] variant — never a hang, never a panic.

use qp_lp::{ConstraintOp, LpError, LpProblem, Sense};

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-6
}

// ---- Infeasibility -----------------------------------------------------

#[test]
fn contradictory_bounds_are_infeasible() {
    let mut lp = LpProblem::new(Sense::Maximize, 1);
    lp.set_objective(0, 1.0);
    lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 2.0);
    lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 5.0);
    assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
}

#[test]
fn contradictory_equalities_are_infeasible() {
    // x + y = 1 and x + y = 3 cannot both hold.
    let mut lp = LpProblem::new(Sense::Minimize, 2);
    lp.set_objective(0, 1.0);
    lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 1.0);
    lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 3.0);
    assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
}

#[test]
fn negative_rhs_equality_with_nonnegative_vars_is_infeasible() {
    // x + y = -1 has no solution in x, y ≥ 0 (exercises the rhs-negation
    // normalization path through phase 1).
    let mut lp = LpProblem::new(Sense::Maximize, 2);
    lp.set_objective(0, 1.0);
    lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, -1.0);
    assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
}

#[test]
fn zero_row_with_positive_rhs_is_infeasible() {
    // 0·x ≥ 1: an all-zero constraint row that can never be satisfied.
    let mut lp = LpProblem::new(Sense::Maximize, 1);
    lp.set_objective(0, 1.0);
    lp.add_constraint(vec![(0, 0.0)], ConstraintOp::Ge, 1.0);
    lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 10.0);
    assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
}

// ---- Unboundedness -----------------------------------------------------

#[test]
fn unconstrained_variable_is_unbounded() {
    let mut lp = LpProblem::new(Sense::Maximize, 2);
    lp.set_objective(0, 1.0);
    lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 3.0);
    assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
}

#[test]
fn minimization_can_be_unbounded_too() {
    // min −x with only x ≥ 2: x can grow forever.
    let mut lp = LpProblem::new(Sense::Minimize, 1);
    lp.set_objective(0, -1.0);
    lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 2.0);
    assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
}

#[test]
fn unbounded_ray_through_a_feasible_region() {
    // x − y ≤ 1 holds along the ray x = y + 1 → ∞; maximize x + y.
    let mut lp = LpProblem::new(Sense::Maximize, 2);
    lp.set_objective(0, 1.0);
    lp.set_objective(1, 1.0);
    lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintOp::Le, 1.0);
    assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
}

#[test]
fn bounded_objective_over_an_unbounded_region_still_solves() {
    // The region is unbounded in y, but the objective ignores y: max x with
    // x ≤ 4, y free upward. Must return 4, not Unbounded.
    let mut lp = LpProblem::new(Sense::Maximize, 2);
    lp.set_objective(0, 1.0);
    lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 4.0);
    lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintOp::Le, 2.0);
    let sol = lp.solve().unwrap();
    assert!(approx(sol.objective, 4.0));
}

// ---- Degeneracy and redundancy -----------------------------------------

#[test]
fn redundant_inequalities_do_not_change_the_optimum() {
    // The same face described three times plus a slack copy.
    let mut lp = LpProblem::new(Sense::Maximize, 2);
    lp.set_objective(0, 2.0);
    lp.set_objective(1, 3.0);
    lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 4.0);
    lp.add_constraint(vec![(0, 2.0), (1, 2.0)], ConstraintOp::Le, 8.0);
    lp.add_constraint(vec![(0, 3.0), (1, 3.0)], ConstraintOp::Le, 12.0);
    lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 100.0);
    let sol = lp.solve().unwrap();
    assert!(approx(sol.objective, 12.0)); // all budget on y
    assert!(approx(sol.primal[1], 4.0));
}

#[test]
fn redundant_equalities_mixed_with_inequalities_solve() {
    // x + y = 2 stated twice (scaled), plus x ≤ 2: optimum x = 2, y = 0.
    let mut lp = LpProblem::new(Sense::Maximize, 2);
    lp.set_objective(0, 1.0);
    lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
    lp.add_constraint(vec![(0, 0.5), (1, 0.5)], ConstraintOp::Eq, 1.0);
    lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 2.0);
    let sol = lp.solve().unwrap();
    assert!(approx(sol.objective, 2.0));
    assert!(approx(sol.primal[0], 2.0));
    assert!(approx(sol.primal[1], 0.0));
}

#[test]
fn degenerate_vertex_with_many_tight_constraints_terminates() {
    // Four constraints all tight at the optimum (0, 1) — a classic
    // degenerate vertex that invites pivot cycling.
    let mut lp = LpProblem::new(Sense::Maximize, 2);
    lp.set_objective(0, 1.0);
    lp.set_objective(1, 2.0);
    lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 1.0);
    lp.add_constraint(vec![(0, -1.0), (1, 1.0)], ConstraintOp::Le, 1.0);
    lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 1.0);
    lp.add_constraint(vec![(0, 2.0), (1, 1.0)], ConstraintOp::Le, 1.0);
    let sol = lp.solve().unwrap();
    assert!(approx(sol.objective, 2.0));
    assert!(approx(sol.primal[0], 0.0));
    assert!(approx(sol.primal[1], 1.0));
}

#[test]
fn kuhns_cycling_prone_lp_terminates_at_the_optimum() {
    // A Beale/Kuhn-style degenerate LP with zero right-hand sides; Dantzig
    // pricing alone can cycle here, so this exercises the Bland fallback
    // and the ratio-test tie-breaking.
    let mut lp = LpProblem::new(Sense::Maximize, 4);
    lp.set_objective(0, 2.0);
    lp.set_objective(1, 3.0);
    lp.set_objective(2, -1.0);
    lp.set_objective(3, -12.0);
    lp.add_constraint(
        vec![(0, -2.0), (1, -9.0), (2, 1.0), (3, 9.0)],
        ConstraintOp::Le,
        0.0,
    );
    lp.add_constraint(
        vec![(0, 1.0 / 3.0), (1, 1.0), (2, -1.0 / 3.0), (3, -2.0)],
        ConstraintOp::Le,
        0.0,
    );
    // Bound the feasible region so the LP has a finite optimum.
    lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 10.0);
    let sol = lp.solve().unwrap();
    assert!(sol.objective.is_finite());
    // Optimum: x0 = 10 (worth 2 each) with x2 = 10 absorbing the second
    // constraint's slack (cost 1 each) → objective 10 at (10, 0, 10, 0).
    assert!(approx(sol.objective, 10.0));
    let x = &sol.primal;
    assert!(-2.0 * x[0] - 9.0 * x[1] + x[2] + 9.0 * x[3] <= 1e-6);
    assert!(x[0] / 3.0 + x[1] - x[2] / 3.0 - 2.0 * x[3] <= 1e-6);
    assert!(x[0] + x[1] <= 10.0 + 1e-6);
}

// ---- Budget exhaustion and validation ----------------------------------

#[test]
fn exhausted_pivot_budget_returns_iteration_limit() {
    // A healthy LP that needs several pivots, strangled to one.
    let mut lp = LpProblem::new(Sense::Maximize, 3);
    for j in 0..3 {
        lp.set_objective(j, 1.0 + j as f64);
        lp.add_constraint(vec![(j, 1.0)], ConstraintOp::Le, 1.0);
    }
    lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintOp::Le, 2.0);
    lp.set_max_iterations(1);
    match lp.solve().unwrap_err() {
        LpError::IterationLimit { iterations } => assert_eq!(iterations, 1),
        other => panic!("expected IterationLimit, got {other:?}"),
    }
    // With the budget restored the same problem solves fine.
    lp.set_max_iterations(10_000);
    assert!(lp.solve().is_ok());
}

#[test]
fn iteration_limit_can_hit_in_phase_one() {
    // Equalities force artificials, so phase 1 must pivot — and is capped.
    let mut lp = LpProblem::new(Sense::Maximize, 2);
    lp.set_objective(0, 1.0);
    lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 3.0);
    lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintOp::Eq, 1.0);
    lp.set_max_iterations(1);
    assert!(matches!(
        lp.solve().unwrap_err(),
        LpError::IterationLimit { .. }
    ));
}

#[test]
fn non_finite_coefficients_are_rejected_before_solving() {
    let mut lp = LpProblem::new(Sense::Maximize, 2);
    lp.set_objective(0, f64::NAN);
    assert_eq!(lp.solve().unwrap_err(), LpError::NonFiniteCoefficient);

    let mut lp = LpProblem::new(Sense::Maximize, 2);
    lp.set_objective(0, 1.0);
    lp.add_constraint(vec![(0, f64::INFINITY)], ConstraintOp::Le, 1.0);
    assert_eq!(lp.solve().unwrap_err(), LpError::NonFiniteCoefficient);

    let mut lp = LpProblem::new(Sense::Maximize, 2);
    lp.set_objective(0, 1.0);
    lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, f64::NEG_INFINITY);
    assert_eq!(lp.solve().unwrap_err(), LpError::NonFiniteCoefficient);
}

#[test]
fn out_of_range_variables_are_rejected_before_solving() {
    let mut lp = LpProblem::new(Sense::Minimize, 2);
    lp.set_objective(0, 1.0);
    lp.add_constraint(vec![(7, 1.0)], ConstraintOp::Le, 1.0);
    assert_eq!(
        lp.solve().unwrap_err(),
        LpError::VariableOutOfRange {
            index: 7,
            num_vars: 2
        }
    );
}

#[test]
fn zero_variable_problems_are_fine() {
    // No variables at all: the origin is optimal with objective 0, and a
    // positive-rhs ≥ row over nothing is infeasible.
    let lp = LpProblem::new(Sense::Maximize, 0);
    let sol = lp.solve().unwrap();
    assert!(approx(sol.objective, 0.0));

    let mut lp = LpProblem::new(Sense::Maximize, 0);
    lp.add_constraint(vec![], ConstraintOp::Ge, 1.0);
    assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
}
