//! qp-lint acceptance tests: each rule fires exactly where the fixtures
//! seed a violation (and nowhere else), and the real workspace is clean.

use qp_lint::{lint_source, lint_workspace, Violation};
use std::path::Path;

/// (rule, line) pairs of `violations`, sorted.
fn fired(violations: &[Violation]) -> Vec<(&'static str, usize)> {
    let mut v: Vec<_> = violations.iter().map(|x| (x.rule, x.line)).collect();
    v.sort();
    v
}

#[test]
fn std_sync_rule_fires_exactly_where_seeded() {
    let src = include_str!("fixtures/std_sync.rs");
    let v = lint_source("crates/market/src/fixture.rs", src);
    assert_eq!(
        fired(&v),
        vec![
            ("std-sync", 4),
            ("std-sync", 5),
            ("std-sync", 6),
            ("std-sync", 13),
        ]
    );
}

#[test]
fn std_sync_rule_exempts_the_checker_crate() {
    let src = include_str!("fixtures/std_sync.rs");
    assert!(lint_source("crates/verify/src/fixture.rs", src).is_empty());
}

#[test]
fn ordering_rule_fires_exactly_where_seeded() {
    let src = include_str!("fixtures/ordering.rs");
    let v = lint_source("crates/market/src/fixture.rs", src);
    assert_eq!(
        fired(&v),
        vec![("ordering-comment", 8), ("ordering-comment", 16)]
    );
}

#[test]
fn unwrap_rule_fires_only_on_server_request_paths() {
    let src = include_str!("fixtures/unwrap_server.rs");
    let v = lint_source("crates/server/src/fixture.rs", src);
    assert_eq!(
        fired(&v),
        vec![("unwrap-in-server", 6), ("unwrap-in-server", 7)]
    );
    // The same source is fine outside qp-server, in the loadgen transport,
    // and in CLI binaries.
    assert!(lint_source("crates/market/src/fixture.rs", src).is_empty());
    assert!(lint_source("crates/server/src/transport.rs", src).is_empty());
    assert!(lint_source("crates/server/src/bin/loadgen.rs", src).is_empty());
}

#[test]
fn float_eq_rule_fires_exactly_where_seeded() {
    let src = include_str!("fixtures/float_eq.rs");
    let v = lint_source("crates/qdb/src/fixture.rs", src);
    assert_eq!(fired(&v), vec![("float-eq", 4), ("float-eq", 12)]);
}

#[test]
fn alloc_kernel_rule_fires_exactly_where_seeded() {
    let src = include_str!("fixtures/alloc_kernel.rs");
    // As a kernel module: unjustified allocations fire; `// alloc:`
    // comments (same line or directly above), type-annotated collects,
    // non-Vec `::new()`s, and test code stay quiet.
    let v = lint_source("crates/core/src/set.rs", src);
    assert_eq!(
        fired(&v),
        vec![
            ("alloc-in-kernel", 4),
            ("alloc-in-kernel", 10),
            ("alloc-in-kernel", 11),
        ]
    );
    let v = lint_source("crates/pricing/src/algorithms/incremental.rs", src);
    assert_eq!(fired(&v).len(), 3, "both kernel modules are in scope");
    // The same source is fine anywhere outside the kernel modules.
    assert!(lint_source("crates/core/src/arena.rs", src).is_empty());
    assert!(lint_source("crates/market/src/broker.rs", src).is_empty());
}

#[test]
fn epoch_rule_respects_the_broker_write_lock_region() {
    let src = include_str!("fixtures/epoch.rs");
    // As broker.rs: the mutation after pricing.write() is legal.
    let v = lint_source("crates/market/src/broker.rs", src);
    assert_eq!(
        fired(&v),
        vec![("epoch-outside-lock", 8), ("epoch-outside-lock", 21)]
    );
    // As any other file: every epoch mutation fires.
    let v = lint_source("crates/sim/src/fixture.rs", src);
    assert_eq!(
        fired(&v),
        vec![
            ("epoch-outside-lock", 8),
            ("epoch-outside-lock", 17),
            ("epoch-outside-lock", 21),
        ]
    );
}

#[test]
fn wallclock_rule_fires_outside_telemetry_and_bench() {
    let src = include_str!("fixtures/wallclock.rs");
    let v = lint_source("crates/sim/src/fixture.rs", src);
    assert_eq!(fired(&v), vec![("wallclock", 5), ("wallclock", 9)]);
    // The telemetry crate, the bench harnesses, and CLI binaries own
    // their clocks.
    assert!(lint_source("crates/telemetry/src/histogram.rs", src).is_empty());
    assert!(lint_source("crates/bench/src/fixture.rs", src).is_empty());
    assert!(lint_source("crates/server/src/bin/loadgen.rs", src).is_empty());
}

#[test]
fn out_of_scope_paths_are_ignored() {
    let src = include_str!("fixtures/std_sync.rs");
    assert!(lint_source("vendor/parking_lot/src/lib.rs", src).is_empty());
    assert!(lint_source("crates/server/tests/races.rs", src).is_empty());
    assert!(lint_source("crates/server/src/notes.md", src).is_empty());
}

#[test]
fn real_workspace_is_clean() {
    // CARGO_MANIFEST_DIR = crates/lint; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let violations = lint_workspace(root).expect("lint run");
    assert!(
        violations.is_empty(),
        "workspace not lint-clean:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
