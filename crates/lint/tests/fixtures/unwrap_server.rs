//! Fixture: unwrap-in-server rule (linted as a crates/server/src path).
//! Seeded violations on lines 6, 7.

fn handle(req: Option<u32>) -> u32 {
    let head = req.unwrap_or(0); // allowed: unwrap_or is not unwrap
    let a = req.unwrap(); // VIOLATION: unwrap on a request path
    let b = req.expect("missing request"); // VIOLATION: expect on a request path
    // A comment about .unwrap() must not fire, nor a string:
    let _doc = ".unwrap()";
    head + a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1u32).unwrap(); // allowed: test code is exempt
    }
}
