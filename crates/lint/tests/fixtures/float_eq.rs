//! Fixture: float-eq rule. Seeded violations on lines 4, 12.

fn f(x: f64, y: f64) -> bool {
    if x == 0.0 {
        // VIOLATION above: naked float ==
        return false;
    }
    if x.to_bits() == y.to_bits() {
        // allowed: bitwise comparison
        return true;
    }
    x != 1.5 // VIOLATION: naked float !=
}

fn g(x: f64, n: usize) -> bool {
    // float-eq: exact sentinel comparison — 0.0 is assigned, never computed.
    let zeroed = x == 0.0; // allowed: justified above
    let exact = x == 2.0; // float-eq: powers of two are exact in f64
    zeroed && exact && n == 0 // allowed: integer comparison
}
