//! Fixture: std-sync rule. Seeded violations on lines 4, 5, 6, 13.

use std::sync::Arc; // allowed: Arc is not a synchronization primitive
use std::sync::Mutex; // VIOLATION: direct std::sync::Mutex
use std::sync::{Arc as A2, RwLock}; // VIOLATION: RwLock via import list
use std::sync::atomic::{AtomicU64, Ordering}; // VIOLATION: atomic module

fn quiet() {
    // A string mentioning std::sync::Mutex must not fire:
    let _s = "std::sync::Mutex";
    // Neither must a comment: std::sync::RwLock
    let _a: Arc<u32> = Arc::new(1);
    let _m = std::sync::Condvar::new(); // VIOLATION: Condvar
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex; // allowed: test code is exempt

    #[test]
    fn t() {
        let _ = Mutex::new(0);
    }
}
