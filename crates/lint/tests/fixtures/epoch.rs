//! Fixture: epoch-outside-lock rule (linted once as broker.rs, once as a
//! non-broker path). As broker.rs: violations on lines 8, 21. As any other
//! file: every epoch mutation fires (lines 8, 17, 21).

use parking_lot::atomic::{AtomicU64, Ordering};

fn bump_unlocked(epoch: &AtomicU64) {
    epoch.fetch_add(1, Ordering::SeqCst); // VIOLATION: no write lock in scope
}

struct Broker;

impl Broker {
    fn set_pricing(&self, epoch: &AtomicU64, pricing: &parking_lot::RwLock<u64>) {
        let mut guard = pricing.write();
        *guard += 1;
        epoch.fetch_add(1, Ordering::SeqCst); // allowed in broker.rs: after pricing.write()
    }

    fn reset(&self, epoch: &AtomicU64) {
        epoch.store(0, Ordering::SeqCst); // VIOLATION: mutation without the write lock
    }

    fn observe(&self, epoch: &AtomicU64) -> u64 {
        epoch.load(Ordering::SeqCst) // allowed: loads are not mutations
    }
}
