//! Fixture: ordering-comment rule. Seeded violations on lines 8, 16.

use parking_lot::atomic::{AtomicU64, Ordering};

fn f(a: &AtomicU64) -> u64 {
    a.load(Ordering::SeqCst); // allowed: SeqCst needs no justification
    a.fetch_add(1, Ordering::SeqCst);
    a.load(Ordering::Relaxed) // VIOLATION: unjustified Relaxed
}

fn g(a: &AtomicU64) {
    // ordering: Relaxed — a statistics counter, no ordering required.
    a.fetch_add(1, Ordering::Relaxed); // allowed: justified above
    a.store(0, Ordering::Release); // ordering: Release pairs with h()'s Acquire
    let _ = std::cmp::Ordering::Less; // allowed: cmp::Ordering, not atomics
    a.store(1, Ordering::Release); // VIOLATION: unjustified Release
}
