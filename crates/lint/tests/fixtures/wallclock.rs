// Fixture for the `wallclock` rule.
use std::time::{Instant, SystemTime};

fn bare_instant() -> Instant {
    Instant::now()
}

fn bare_system_time() -> SystemTime {
    SystemTime::now()
}

fn justified_same_line() -> Instant {
    Instant::now() // timing: report-only wall clock, never fed back
}

fn justified_above() -> Instant {
    // timing: measures the run for the throughput figure only.
    Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_in_tests_are_fine() {
        let _ = std::time::Instant::now();
    }
}
