//! Fixture: alloc-in-kernel rule. Seeded violations on lines 4, 10, 11.

fn hot_path(blocks: &[u64]) -> Vec<u64> {
    let staging: Vec<u64> = Vec::new(); // VIOLATION: unjustified allocation
    // alloc: cold construction path, sized once at startup.
    let justified: Vec<u64> = Vec::new(); // allowed: justified above
    let also = Vec::new(); // alloc: same-line justification is fine too
    let _ = (justified, also, staging);

    let copied = blocks.to_vec(); // VIOLATION: unjustified clone of the blocks
    let ids = blocks.iter().map(|b| b + 1).collect::<Vec<_>>(); // VIOLATION
    let typed: Vec<u64> = blocks.iter().map(|b| b + 1).collect(); // allowed: type-annotated collect is not flagged
    let _ = (ids, typed);
    copied
}

struct BlockVec;

impl BlockVec {
    fn new() -> BlockVec {
        BlockVec
    }
}

fn not_a_vec() -> BlockVec {
    BlockVec::new() // allowed: not Vec::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let fresh: Vec<u64> = Vec::new(); // allowed: test code
        let copy = [1u64].to_vec(); // allowed: test code
        assert_eq!(fresh.len() + copy.len(), 1);
    }
}
