//! `qp-lint` — repo-specific concurrency/robustness lint rules for the qp
//! workspace, enforced over `crates/*/src` at line/token level (no rustc
//! internals).
//!
//! The rules encode the discipline the `qp-verify` model checker verifies,
//! so new code stays inside the checked protocol instead of drifting out:
//!
//! | rule | what it denies |
//! |---|---|
//! | `std-sync` | direct `std::sync` `Mutex`/`RwLock`/`Condvar`/`atomic` outside the `parking_lot` facade (use the facade so `cfg(qp_verify)` can interpose the checker) |
//! | `epoch-outside-lock` | epoch mutation (`.fetch_add`/`.store` on an `epoch` atomic) anywhere but the pricing write-lock region in `broker.rs` |
//! | `ordering-comment` | a non-`SeqCst` atomic `Ordering::*` without a `// ordering:` justification comment on the same or a directly preceding line |
//! | `unwrap-in-server` | `.unwrap()`/`.expect(` on `qp-server` request paths (`crates/server/src`, excluding the panic-by-design loadgen `transport.rs` and `bin/`) |
//! | `float-eq` | `==`/`!=` against a float literal without `to_bits` or a `// float-eq:` justification comment |
//! | `alloc-in-kernel` | `Vec::new()` / `.to_vec()` / `collect::<Vec<…>>` in a cache-hot kernel module without an `// alloc:` justification comment (kernels reuse buffers; steady-state allocation is a regression) |
//! | `wallclock` | `Instant::now()` / `SystemTime::now()` outside `qp-telemetry`, `qp-bench`, and `bin/` without a `// timing:` justification comment (ambient clock reads belong in the telemetry layer, where they are provably out-of-band) |
//!
//! All rules skip test code (`#[cfg(test)]`/`#[test]` items and everything
//! under `tests/`), and pattern matching runs on *sanitized* lines —
//! string-literal contents and comments are stripped first — so a rule
//! pattern appearing inside a string or a doc comment never fires.
//!
//! Run with `cargo run --release -p qp-lint` from the workspace root.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding: a rule fired at a specific line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Stable rule identifier (e.g. `std-sync`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A source line split into its code and comment parts, with string/char
/// literal contents already blanked out of `code`.
struct SrcLine {
    code: String,
    comment: String,
}

/// Lexer state carried across lines (block comments and string literals
/// can span lines).
enum Carry {
    None,
    Block(usize),
    Str,
    RawStr(usize),
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Splits source into per-line (code, comment) pairs. String and char
/// literal *contents* are removed from code (delimiters kept), comments —
/// line and block, arbitrarily nested — are moved to the comment part.
fn sanitize(src: &str) -> Vec<SrcLine> {
    let mut out = Vec::new();
    let mut carry = Carry::None;
    for raw in src.lines() {
        let b: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            match carry {
                Carry::Block(ref mut depth) => {
                    if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        *depth -= 1;
                        i += 2;
                        if *depth == 0 {
                            carry = Carry::None;
                        }
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        *depth += 1;
                        i += 2;
                    } else {
                        comment.push(b[i]);
                        i += 1;
                    }
                }
                Carry::Str => {
                    if b[i] == '\\' {
                        i += 2;
                    } else if b[i] == '"' {
                        code.push('"');
                        carry = Carry::None;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Carry::RawStr(hashes) => {
                    if b[i] == '"' && b[i + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
                    {
                        code.push('"');
                        carry = Carry::None;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
                Carry::None => {
                    let c = b[i];
                    let prev_ident = i > 0 && is_ident_char(b[i - 1]);
                    if c == '/' && b.get(i + 1) == Some(&'/') {
                        let rest: String = b[i..].iter().collect();
                        comment.push_str(&rest);
                        i = b.len();
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        carry = Carry::Block(1);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        carry = Carry::Str;
                        i += 1;
                    } else if (c == 'r' || c == 'b') && !prev_ident {
                        // Possible raw/byte string: r", r#"…, br#"…, b", b'.
                        let mut j = i + 1;
                        let mut raw_str = c == 'r';
                        if c == 'b' && b.get(j) == Some(&'r') {
                            raw_str = true;
                            j += 1;
                        }
                        let hashes = b[j..].iter().take_while(|&&x| x == '#').count();
                        let j2 = j + hashes;
                        if raw_str && b.get(j2) == Some(&'"') {
                            code.push('"');
                            carry = Carry::RawStr(hashes);
                            i = j2 + 1;
                        } else if c == 'b' && b.get(i + 1) == Some(&'"') {
                            code.push('"');
                            carry = Carry::Str;
                            i += 2;
                        } else if c == 'b' && b.get(i + 1) == Some(&'\'') {
                            // Byte char literal: skip to the closing quote.
                            let mut k = i + 2;
                            if b.get(k) == Some(&'\\') {
                                k += 1;
                            }
                            while k < b.len() && b[k] != '\'' {
                                k += 1;
                            }
                            i = k + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal or lifetime.
                        if b.get(i + 1) == Some(&'\\') {
                            let mut k = i + 2;
                            while k < b.len() && b[k] != '\'' {
                                if b[k] == '\\' {
                                    k += 1;
                                }
                                k += 1;
                            }
                            i = k + 1;
                        } else if b.get(i + 2) == Some(&'\'') {
                            i += 3; // 'x'
                        } else {
                            code.push('\''); // lifetime / label
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(SrcLine { code, comment });
    }
    out
}

/// Marks each line that belongs to test code: anything under a
/// `#[cfg(test)]` or `#[test]` item (attribute line through closing
/// brace).
fn test_line_mask(lines: &[SrcLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut skip_above: Option<i64> = None;
    let mut pending = false;
    for (i, l) in lines.iter().enumerate() {
        let code = l.code.trim();
        let mut in_test = skip_above.is_some();
        if skip_above.is_none() && (code.contains("#[cfg(test)]") || code.contains("#[test]")) {
            pending = true;
        }
        if pending {
            in_test = true;
        }
        for c in l.code.chars() {
            match c {
                '{' => {
                    if pending {
                        skip_above = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if skip_above.is_some_and(|d| depth <= d) {
                        skip_above = None;
                    }
                }
                _ => {}
            }
        }
        // A brace-less gated item (e.g. `#[cfg(test)] use …;`) ends at the
        // semicolon.
        if pending && code.ends_with(';') {
            pending = false;
        }
        mask[i] = in_test || skip_above.is_some();
    }
    mask
}

/// True when line `i` carries `tag` in its own comment or in a directly
/// preceding run of comment-only lines.
fn justified(lines: &[SrcLine], i: usize, tag: &str) -> bool {
    if lines[i].comment.contains(tag) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if !l.code.trim().is_empty() || l.comment.is_empty() {
            return false;
        }
        if l.comment.contains(tag) {
            return true;
        }
    }
    false
}

/// The identifier (or `{…}` import list) immediately following byte
/// offset `at`.
fn token_after(code: &str, at: usize) -> Vec<String> {
    let rest = code[at..].trim_start();
    if let Some(inner) = rest.strip_prefix('{') {
        let inner = inner.split('}').next().unwrap_or("");
        inner.split(',').map(|s| s.trim().to_string()).collect()
    } else {
        let ident: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
        vec![ident]
    }
}

/// The dotted path ending right at byte offset `end` (e.g. for
/// `self.epoch.fetch_add`, with `end` at the `.fetch_add` dot, returns
/// `self.epoch`).
fn path_before(code: &str, end: usize) -> &str {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if is_ident_char(c) || c == '.' {
            start -= 1;
        } else {
            break;
        }
    }
    &code[start..end]
}

fn is_float_literal(tok: &str) -> bool {
    let t = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .unwrap_or(tok)
        .trim_end_matches('_');
    let Some(first) = t.chars().next() else {
        return false;
    };
    first.is_ascii_digit()
        && t.contains('.')
        && t.chars()
            .all(|c| c.is_ascii_digit() || "._eE+-".contains(c))
}

/// Scope of each rule given a workspace-relative path (`/`-separated).
struct Scope<'a> {
    rel: &'a str,
}

impl Scope<'_> {
    fn in_crates_src(&self) -> bool {
        self.rel.starts_with("crates/") && self.rel.contains("/src/") && self.rel.ends_with(".rs")
    }

    /// `std-sync` skips the checker itself: its shims are *built on*
    /// `std::sync` by design.
    fn std_sync(&self) -> bool {
        self.in_crates_src() && !self.rel.starts_with("crates/verify/")
    }

    /// `epoch-outside-lock` skips the checker: its models deliberately
    /// contain the buggy choreography as seeded-bug variants.
    fn epoch(&self) -> bool {
        self.in_crates_src() && !self.rel.starts_with("crates/verify/")
    }

    fn is_broker(&self) -> bool {
        self.rel == "crates/market/src/broker.rs"
    }

    fn ordering(&self) -> bool {
        self.in_crates_src()
    }

    /// `unwrap-in-server` covers request paths only: not the loadgen
    /// transport (panic-by-design, documented in its module docs) and not
    /// the CLI binaries.
    fn unwrap_server(&self) -> bool {
        self.rel.starts_with("crates/server/src/")
            && !self.rel.starts_with("crates/server/src/bin/")
            && self.rel != "crates/server/src/transport.rs"
    }

    fn float_eq(&self) -> bool {
        self.in_crates_src()
    }

    /// `alloc-in-kernel` covers only the cache-hot kernel modules, where
    /// the allocation discipline (arena + double-buffer reuse) is the
    /// optimization being protected.
    fn alloc_kernel(&self) -> bool {
        KERNEL_MODULES.contains(&self.rel)
    }

    /// `wallclock` exempts the telemetry crate (clock reads are its job),
    /// the benchmark harnesses, and CLI binaries (their wall clocks are
    /// the product); everywhere else an ambient `now()` needs a
    /// `// timing:` note saying why it cannot influence results.
    fn wallclock(&self) -> bool {
        self.in_crates_src()
            && !self.rel.starts_with("crates/telemetry/")
            && !self.rel.starts_with("crates/bench/")
            && !self.rel.contains("/bin/")
    }
}

/// The modules whose hot loops are allocation-free by design: the
/// `ItemSet` representation and kernels, and the incremental repricer's
/// merge machinery.
const KERNEL_MODULES: [&str; 2] = [
    "crates/core/src/set.rs",
    "crates/pricing/src/algorithms/incremental.rs",
];

const STD_SYNC_DENY: [&str; 4] = ["Mutex", "RwLock", "Condvar", "atomic"];
const NON_SEQCST: [&str; 4] = ["Relaxed", "Acquire", "Release", "AcqRel"];

/// Byte offsets of every occurrence of `pat` in `hay`.
fn find_all(hay: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(pat) {
        out.push(from + p);
        from += p + pat.len();
    }
    out
}

/// Lints one file's source under its workspace-relative path. The path
/// drives rule scoping, so fixtures can exercise any scope by pretending
/// to live at the relevant location.
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    let scope = Scope { rel };
    if !scope.in_crates_src() {
        return Vec::new();
    }
    let lines = sanitize(src);
    let in_test = test_line_mask(&lines);
    let mut out = Vec::new();

    // epoch-outside-lock state: inside broker.rs an epoch mutation is
    // legal only after the pricing write lock was taken earlier in the
    // same function.
    let mut pricing_write_seen = false;

    for (i, l) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let code = &l.code;
        let v = |rule: &'static str, message: String| Violation {
            path: rel.to_string(),
            line: i + 1,
            rule,
            message,
        };

        if scope.std_sync() {
            for at in find_all(code, "std::sync::") {
                for name in token_after(code, at + "std::sync::".len()) {
                    if STD_SYNC_DENY.contains(&name.as_str()) {
                        out.push(v(
                            "std-sync",
                            format!(
                                "direct std::sync::{name} — use the parking_lot facade \
                                 (vendor/parking_lot) so cfg(qp_verify) builds can \
                                 interpose the model checker"
                            ),
                        ));
                    }
                }
            }
        }

        if scope.epoch() {
            if code.contains("fn ") {
                pricing_write_seen = false;
            }
            if code.contains("pricing.write()") {
                pricing_write_seen = true;
            }
            for pat in [".fetch_add(", ".store("] {
                for at in find_all(code, pat) {
                    let target = path_before(code, at);
                    let last = target.split('.').next_back().unwrap_or("");
                    if last.contains("epoch") && !(scope.is_broker() && pricing_write_seen) {
                        let place = if scope.is_broker() {
                            "outside the pricing write-lock region"
                        } else {
                            "outside broker.rs"
                        };
                        out.push(v(
                            "epoch-outside-lock",
                            format!(
                                "epoch mutation `{target}{}` {place} — the epoch may only \
                                 move inside Broker's pricing write-lock critical section \
                                 (the no-stale-quote protocol)",
                                pat.trim_end_matches('(')
                            ),
                        ));
                    }
                }
            }
        }

        if scope.ordering() {
            for at in find_all(code, "Ordering::") {
                for name in token_after(code, at + "Ordering::".len()) {
                    if NON_SEQCST.contains(&name.as_str()) && !justified(&lines, i, "ordering:") {
                        out.push(v(
                            "ordering-comment",
                            format!(
                                "Ordering::{name} without a `// ordering:` justification \
                                 comment (same line or directly above)"
                            ),
                        ));
                    }
                }
            }
        }

        if scope.unwrap_server() {
            for (pat, what) in [(".unwrap()", "unwrap"), (".expect(", "expect")] {
                if code.contains(pat) {
                    out.push(v(
                        "unwrap-in-server",
                        format!(
                            "`.{what}` on a qp-server request path — return an error \
                             instead (a panicking worker drops the connection)"
                        ),
                    ));
                }
            }
        }

        if scope.alloc_kernel() {
            for pat in ["Vec::new()", ".to_vec()", "collect::<Vec<"] {
                for at in find_all(code, pat) {
                    // `Vec::new()` must not fire on e.g. `MyVec::new()`
                    // (the dot-prefixed patterns legitimately follow an
                    // identifier).
                    if pat == "Vec::new()"
                        && at > 0
                        && is_ident_char(code.as_bytes()[at - 1] as char)
                    {
                        continue;
                    }
                    if !justified(&lines, i, "alloc:") {
                        out.push(v(
                            "alloc-in-kernel",
                            format!(
                                "`{}` in a kernel module — reuse a buffer \
                                 (arena/double-buffer) or justify with an \
                                 `// alloc:` comment",
                                pat.trim_end_matches('<')
                            ),
                        ));
                    }
                }
            }
        }

        if scope.wallclock() {
            for pat in ["Instant::now()", "SystemTime::now()"] {
                if code.contains(pat) && !justified(&lines, i, "timing:") {
                    out.push(v(
                        "wallclock",
                        format!(
                            "`{pat}` outside the telemetry/bench layers — route the \
                             measurement through qp-telemetry or justify with a \
                             `// timing:` comment explaining why the reading cannot \
                             influence results"
                        ),
                    ));
                }
            }
        }

        if scope.float_eq() && !code.contains("to_bits") {
            for pat in ["==", "!="] {
                for at in find_all(code, pat) {
                    // Skip `<=`, `>=`, `=>`-adjacent and `===`-like hits.
                    if at > 0 && "<>=!".contains(code.as_bytes()[at - 1] as char) {
                        continue;
                    }
                    if code.as_bytes().get(at + 2) == Some(&b'=') {
                        continue;
                    }
                    let right: String = code[at + pat.len()..]
                        .trim_start()
                        .chars()
                        .take_while(|&c| is_ident_char(c) || c == '.')
                        .collect();
                    let left = path_before(code, code[..at].trim_end().len());
                    if (is_float_literal(&right) || is_float_literal(left))
                        && !justified(&lines, i, "float-eq:")
                    {
                        out.push(v(
                            "float-eq",
                            format!(
                                "`{pat}` against a float literal — compare via to_bits \
                                 or justify with a `// float-eq:` comment"
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// output.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            rs_files(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**/*.rs` file under the workspace root.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let crates = root.join("crates");
    let mut dirs: Vec<_> = fs::read_dir(&crates)?.collect::<Result<_, _>>()?;
    dirs.sort_by_key(|e| e.path());
    let mut out = Vec::new();
    for d in dirs {
        let src = d.path().join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&src, &mut files)?;
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let content = fs::read_to_string(&f)?;
            out.extend(lint_source(&rel, &content));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_strips_strings_and_comments() {
        let lines = sanitize("let x = \".unwrap()\"; // tail\nlet y = 'a';");
        assert_eq!(lines[0].code.trim(), "let x = \"\";");
        assert!(lines[0].comment.contains("tail"));
        assert_eq!(lines[1].code.trim(), "let y = ;");
    }

    #[test]
    fn sanitize_handles_lifetimes_and_raw_strings() {
        let lines =
            sanitize("fn f<'a>(x: &'a str) -> &'a str { x }\nlet r = r#\"std::sync::Mutex\"#;");
        assert!(lines[0].code.contains("<'a>"));
        assert!(!lines[1].code.contains("Mutex"));
    }

    #[test]
    fn sanitize_tracks_multiline_block_comments() {
        let lines = sanitize("a /* one\n .unwrap() two\n*/ b");
        assert_eq!(lines[0].code.trim(), "a");
        assert_eq!(lines[1].code.trim(), "");
        assert!(lines[1].comment.contains(".unwrap()"));
        assert_eq!(lines[2].code.trim(), "b");
    }

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let lines = sanitize(src);
        let mask = test_line_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn float_literal_detection() {
        assert!(is_float_literal("0.0"));
        assert!(is_float_literal("1.5f64"));
        assert!(is_float_literal("2.0_f32"));
        assert!(!is_float_literal("0"));
        assert!(!is_float_literal("x"));
        assert!(!is_float_literal("f64"));
        assert!(!is_float_literal(""));
    }
}
