//! `qp-lint` CLI — run the repo-specific lint rules over the workspace.
//!
//! ```text
//! qp-lint            # lint crates/*/src under the current directory
//! qp-lint PATH       # lint a workspace rooted at PATH
//! ```
//!
//! Prints one `path:line: [rule] message` per violation and exits
//! non-zero if any fired. See the library docs for the rule set.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    if !root.join("crates").is_dir() {
        eprintln!(
            "qp-lint: {} has no crates/ directory (run from the workspace root or pass it)",
            root.display()
        );
        return ExitCode::from(2);
    }
    match qp_lint::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("qp-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("qp-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("qp-lint: {e}");
            ExitCode::from(2)
        }
    }
}
