//! Relations (tables) and result sets.

use crate::{QdbError, Schema, Value};

/// A tuple is an ordered list of values matching a schema.
pub type Tuple = Vec<Value>;

/// An in-memory relation: a schema plus a bag of tuples.
///
/// Relations double as query results. Result comparison — the core operation
/// of conflict-set computation — uses *bag semantics*: two results are equal
/// iff they contain the same multiset of tuples, regardless of row order.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Creates a relation from a schema and pre-built rows.
    ///
    /// Returns an error if any row's arity disagrees with the schema.
    pub fn from_rows(schema: Schema, rows: Vec<Tuple>) -> Result<Self, QdbError> {
        for row in &rows {
            if row.len() != schema.arity() {
                return Err(QdbError::ArityMismatch {
                    expected: schema.arity(),
                    got: row.len(),
                });
            }
        }
        Ok(Relation { schema, rows })
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows of the relation in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Mutable access to the rows (used by the delta machinery).
    pub fn rows_mut(&mut self) -> &mut Vec<Tuple> {
        &mut self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a tuple, checking arity.
    pub fn push(&mut self, tuple: Tuple) -> Result<(), QdbError> {
        if tuple.len() != self.schema.arity() {
            return Err(QdbError::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.len(),
            });
        }
        self.rows.push(tuple);
        Ok(())
    }

    /// Returns the rows sorted into a canonical order. Two results are equal
    /// under bag semantics iff their canonical forms are identical.
    pub fn canonical_rows(&self) -> Vec<Tuple> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }

    /// Bag-semantics equality with another result set.
    ///
    /// Returns `false` if the schemas have different arity (results of
    /// structurally different queries are never considered equal).
    pub fn same_answer(&self, other: &Relation) -> bool {
        if self.schema.arity() != other.schema.arity() || self.len() != other.len() {
            return false;
        }
        self.canonical_rows() == other.canonical_rows()
    }

    /// A stable 64-bit fingerprint of the canonicalized result, used to
    /// compare query answers cheaply across many support databases.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.schema.arity().hash(&mut h);
        for row in self.canonical_rows() {
            for v in row {
                v.hash(&mut h);
            }
            0xfeed_u16.hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColumnType;

    fn schema2() -> Schema {
        Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Str)])
    }

    #[test]
    fn push_checks_arity() {
        let mut r = Relation::new(schema2());
        assert!(r.push(vec![Value::Int(1), "x".into()]).is_ok());
        assert!(matches!(
            r.push(vec![Value::Int(1)]),
            Err(QdbError::ArityMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn from_rows_validates() {
        let ok = Relation::from_rows(schema2(), vec![vec![Value::Int(1), "x".into()]]);
        assert!(ok.is_ok());
        let bad = Relation::from_rows(schema2(), vec![vec![Value::Int(1)]]);
        assert!(bad.is_err());
    }

    #[test]
    fn bag_equality_ignores_order() {
        let r1 = Relation::from_rows(
            schema2(),
            vec![
                vec![Value::Int(1), "x".into()],
                vec![Value::Int(2), "y".into()],
            ],
        )
        .unwrap();
        let r2 = Relation::from_rows(
            schema2(),
            vec![
                vec![Value::Int(2), "y".into()],
                vec![Value::Int(1), "x".into()],
            ],
        )
        .unwrap();
        assert!(r1.same_answer(&r2));
        assert_eq!(r1.fingerprint(), r2.fingerprint());
    }

    #[test]
    fn bag_equality_respects_multiplicity() {
        let r1 = Relation::from_rows(
            schema2(),
            vec![
                vec![Value::Int(1), "x".into()],
                vec![Value::Int(1), "x".into()],
            ],
        )
        .unwrap();
        let r2 = Relation::from_rows(schema2(), vec![vec![Value::Int(1), "x".into()]]).unwrap();
        assert!(!r1.same_answer(&r2));
        assert_ne!(r1.fingerprint(), r2.fingerprint());
    }

    #[test]
    fn different_contents_differ() {
        let r1 = Relation::from_rows(schema2(), vec![vec![Value::Int(1), "x".into()]]).unwrap();
        let r2 = Relation::from_rows(schema2(), vec![vec![Value::Int(2), "x".into()]]).unwrap();
        assert!(!r1.same_answer(&r2));
        assert_ne!(r1.fingerprint(), r2.fingerprint());
    }
}
