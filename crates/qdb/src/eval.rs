//! Query-plan evaluation.
//!
//! The evaluator is deliberately simple: every operator fully materializes
//! its output. Joins are hash joins, grouping uses a hash map keyed by the
//! grouping values, and aggregate results are emitted in sorted group-key
//! order so that evaluation is fully deterministic for a given instance.

use std::collections::{HashMap, HashSet};

use crate::plan::{AggFunc, Aggregate};
use crate::relation::Tuple;
use crate::{ColumnType, Expr, Instance, QdbError, Query, Relation, Schema, Value};

/// Evaluates a query plan against a database instance.
pub fn evaluate<I: Instance + ?Sized>(q: &Query, db: &I) -> Result<Relation, QdbError> {
    match q {
        Query::Scan { table } => {
            let schema = db.table_schema(table)?.clone();
            let rows: Vec<Tuple> = db.scan(table)?.map(|r| r.into_owned()).collect();
            Relation::from_rows(schema, rows)
        }
        Query::Filter { input, predicate } => {
            let rel = evaluate(input, db)?;
            let bound = predicate.bind(rel.schema())?;
            let rows: Vec<Tuple> = rel
                .rows()
                .iter()
                .filter(|r| bound.eval_bool(r))
                .cloned()
                .collect();
            Relation::from_rows(rel.schema().clone(), rows)
        }
        Query::Project { input, exprs } => {
            let rel = evaluate(input, db)?;
            let mut bound = Vec::with_capacity(exprs.len());
            let mut schema = Schema::empty();
            for (e, name) in exprs {
                bound.push(e.bind(rel.schema())?);
                schema.push(name.clone(), projected_type(e, rel.schema()));
            }
            let rows: Vec<Tuple> = rel
                .rows()
                .iter()
                .map(|r| bound.iter().map(|b| b.eval(r)).collect())
                .collect();
            Relation::from_rows(schema, rows)
        }
        Query::Join { left, right, on } => {
            let l = evaluate(left, db)?;
            let r = evaluate(right, db)?;
            hash_join(&l, &r, on)
        }
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let rel = evaluate(input, db)?;
            aggregate(&rel, group_by, aggs)
        }
        Query::Distinct { input } => {
            let rel = evaluate(input, db)?;
            let mut seen: HashSet<Tuple> = HashSet::with_capacity(rel.len());
            let mut rows = Vec::new();
            for row in rel.rows() {
                if seen.insert(row.clone()) {
                    rows.push(row.clone());
                }
            }
            Relation::from_rows(rel.schema().clone(), rows)
        }
        Query::Limit { input, n } => {
            let rel = evaluate(input, db)?;
            let rows: Vec<Tuple> = rel.rows().iter().take(*n).cloned().collect();
            Relation::from_rows(rel.schema().clone(), rows)
        }
    }
}

/// Output type of a projected expression.
fn projected_type(e: &Expr, schema: &Schema) -> ColumnType {
    match e {
        Expr::Col(name) => schema
            .index_of(name)
            .map(|i| schema.column_type(i))
            .unwrap_or(ColumnType::Str),
        Expr::Lit(Value::Int(_)) => ColumnType::Int,
        Expr::Lit(Value::Float(_)) => ColumnType::Float,
        Expr::Lit(Value::Bool(_)) => ColumnType::Bool,
        Expr::Lit(_) => ColumnType::Str,
        Expr::Binary { op, .. } => match op {
            crate::BinOp::Add | crate::BinOp::Sub | crate::BinOp::Mul | crate::BinOp::Div => {
                ColumnType::Float
            }
            _ => ColumnType::Bool,
        },
        Expr::Not(_)
        | Expr::Like { .. }
        | Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::IsNull(_) => ColumnType::Bool,
    }
}

/// Hash equi-join of two materialized relations.
fn hash_join(l: &Relation, r: &Relation, on: &[(String, String)]) -> Result<Relation, QdbError> {
    let mut l_keys = Vec::with_capacity(on.len());
    let mut r_keys = Vec::with_capacity(on.len());
    for (lc, rc) in on {
        l_keys.push(l.schema().index_of(lc)?);
        r_keys.push(r.schema().index_of(rc)?);
    }

    // Build on the smaller side for memory friendliness; probe with the other.
    let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(r.len());
    for (i, row) in r.rows().iter().enumerate() {
        let key: Vec<Value> = r_keys.iter().map(|&k| row[k].clone()).collect();
        if key.iter().any(|v| v.is_null()) {
            continue; // NULL keys never join.
        }
        index.entry(key).or_default().push(i);
    }

    let schema = l.schema().join(r.schema(), "r");
    let mut rows = Vec::new();
    for lrow in l.rows() {
        let key: Vec<Value> = l_keys.iter().map(|&k| lrow[k].clone()).collect();
        if key.iter().any(|v| v.is_null()) {
            continue;
        }
        if let Some(matches) = index.get(&key) {
            for &ri in matches {
                let mut out = lrow.clone();
                out.extend_from_slice(&r.rows()[ri]);
                rows.push(out);
            }
        }
    }
    Relation::from_rows(schema, rows)
}

/// Running state of a single aggregate.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    CountDistinct(HashSet<Value>),
    Sum {
        total: f64,
        all_int: bool,
        seen: bool,
    },
    Avg {
        total: f64,
        count: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::CountDistinct(HashSet::new()),
            AggFunc::Sum => AggState::Sum {
                total: 0.0,
                all_int: true,
                seen: false,
            },
            AggFunc::Avg => AggState::Avg {
                total: 0.0,
                count: 0,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, value: Option<&Value>) {
        match self {
            AggState::Count(c) => {
                // COUNT(*) gets `None` as the column and counts every row;
                // COUNT(col) skips NULLs.
                match value {
                    None => *c += 1,
                    Some(v) if !v.is_null() => *c += 1,
                    _ => {}
                }
            }
            AggState::CountDistinct(set) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        set.insert(v.clone());
                    }
                }
            }
            AggState::Sum {
                total,
                all_int,
                seen,
            } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *total += x;
                        *seen = true;
                        if !matches!(v, Value::Int(_) | Value::Bool(_)) {
                            *all_int = false;
                        }
                    }
                }
            }
            AggState::Avg { total, count } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *total += x;
                        *count += 1;
                    }
                }
            }
            AggState::Min(best) => {
                if let Some(v) = value {
                    if !v.is_null() && best.as_ref().map(|b| v < b).unwrap_or(true) {
                        *best = Some(v.clone());
                    }
                }
            }
            AggState::Max(best) => {
                if let Some(v) = value {
                    if !v.is_null() && best.as_ref().map(|b| v > b).unwrap_or(true) {
                        *best = Some(v.clone());
                    }
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::CountDistinct(set) => Value::Int(set.len() as i64),
            AggState::Sum {
                total,
                all_int,
                seen,
            } => {
                if !seen {
                    Value::Null
                // float-eq: fract() of an integral f64 is exactly 0.0 —
                // the standard integral-valued test.
                } else if all_int && total.fract() == 0.0 && total.abs() < i64::MAX as f64 {
                    Value::Int(total as i64)
                } else {
                    Value::Float(total)
                }
            }
            AggState::Avg { total, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(total / count as f64)
                }
            }
            AggState::Min(best) => best.unwrap_or(Value::Null),
            AggState::Max(best) => best.unwrap_or(Value::Null),
        }
    }
}

/// Output column type of an aggregate.
fn agg_output_type(func: AggFunc, input_type: Option<ColumnType>) -> ColumnType {
    match func {
        AggFunc::Count | AggFunc::CountDistinct => ColumnType::Int,
        AggFunc::Avg => ColumnType::Float,
        AggFunc::Sum => input_type.unwrap_or(ColumnType::Float),
        AggFunc::Min | AggFunc::Max => input_type.unwrap_or(ColumnType::Str),
    }
}

/// Grouping + aggregation over a materialized relation.
pub(crate) fn aggregate(
    rel: &Relation,
    group_by: &[String],
    aggs: &[Aggregate],
) -> Result<Relation, QdbError> {
    let schema = rel.schema();
    let key_idx: Vec<usize> = group_by
        .iter()
        .map(|c| schema.index_of(c))
        .collect::<Result<_, _>>()?;
    let agg_idx: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match &a.column {
            Some(c) => schema.index_of(c).map(Some),
            None => Ok(None),
        })
        .collect::<Result<_, _>>()?;

    // Output schema: group columns followed by aggregate aliases.
    let mut out_schema = Schema::empty();
    for (name, &i) in group_by.iter().zip(&key_idx) {
        out_schema.push(name.clone(), schema.column_type(i));
    }
    for (a, idx) in aggs.iter().zip(&agg_idx) {
        out_schema.push(
            a.alias.clone(),
            agg_output_type(a.func, idx.map(|i| schema.column_type(i))),
        );
    }

    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    for row in rel.rows() {
        let key: Vec<Value> = key_idx.iter().map(|&i| row[i].clone()).collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect());
        for (state, idx) in states.iter_mut().zip(&agg_idx) {
            state.update(idx.map(|i| &row[i]));
        }
    }

    // A global aggregate over an empty input still produces one row.
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(
            Vec::new(),
            aggs.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }

    let mut keyed: Vec<(Vec<Value>, Vec<AggState>)> = groups.into_iter().collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));

    let mut rows = Vec::with_capacity(keyed.len());
    for (key, states) in keyed {
        let mut row = key;
        for s in states {
            row.push(s.finish());
        }
        rows.push(row);
    }
    Relation::from_rows(out_schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggFunc, ColumnType, Database, Expr, Query, Schema, Value};

    /// The `User` relation from Figure 1 of the paper.
    fn paper_db() -> Database {
        let mut rel = Relation::new(Schema::new(vec![
            ("uid", ColumnType::Int),
            ("name", ColumnType::Str),
            ("gender", ColumnType::Str),
            ("age", ColumnType::Int),
        ]));
        rel.push(vec![
            Value::Int(1),
            "Abe".into(),
            "m".into(),
            Value::Int(18),
        ])
        .unwrap();
        rel.push(vec![
            Value::Int(2),
            "Alice".into(),
            "f".into(),
            Value::Int(20),
        ])
        .unwrap();
        rel.push(vec![
            Value::Int(3),
            "Bob".into(),
            "m".into(),
            Value::Int(25),
        ])
        .unwrap();
        rel.push(vec![
            Value::Int(4),
            "Cathy".into(),
            "f".into(),
            Value::Int(22),
        ])
        .unwrap();
        let mut db = Database::new();
        db.add_table("User", rel);
        db
    }

    #[test]
    fn q1_count_female_users() {
        // Q1 = SELECT count(*) FROM User WHERE gender = 'f'
        let db = paper_db();
        let q = Query::scan("User")
            .filter(Expr::col("gender").eq(Expr::lit("f")))
            .aggregate(vec![], vec![(AggFunc::Count, None, "cnt")]);
        let out = q.evaluate(&db).unwrap();
        assert_eq!(out.rows(), &[vec![Value::Int(2)]]);
    }

    #[test]
    fn q2_group_by_gender() {
        // Q2 = SELECT gender, count(*) FROM User GROUP BY gender
        let db = paper_db();
        let q = Query::scan("User").aggregate(vec!["gender"], vec![(AggFunc::Count, None, "cnt")]);
        let out = q.evaluate(&db).unwrap();
        assert_eq!(out.len(), 2);
        // Sorted by group key: 'f' before 'm'.
        assert_eq!(out.rows()[0], vec![Value::from("f"), Value::Int(2)]);
        assert_eq!(out.rows()[1], vec![Value::from("m"), Value::Int(2)]);
    }

    #[test]
    fn q3_avg_age_of_female_users() {
        // Q3 = SELECT AVG(age) FROM User WHERE gender = 'f'
        let db = paper_db();
        let q = Query::scan("User")
            .filter(Expr::col("gender").eq(Expr::lit("f")))
            .aggregate(vec![], vec![(AggFunc::Avg, Some("age"), "avg_age")]);
        let out = q.evaluate(&db).unwrap();
        assert_eq!(out.rows()[0][0], Value::Float(21.0));
    }

    #[test]
    fn sum_min_max_and_count_distinct() {
        let db = paper_db();
        let q = Query::scan("User").aggregate(
            vec![],
            vec![
                (AggFunc::Sum, Some("age"), "s"),
                (AggFunc::Min, Some("age"), "mn"),
                (AggFunc::Max, Some("age"), "mx"),
                (AggFunc::CountDistinct, Some("gender"), "g"),
            ],
        );
        let out = q.evaluate(&db).unwrap();
        assert_eq!(
            out.rows()[0],
            vec![
                Value::Int(85),
                Value::Int(18),
                Value::Int(25),
                Value::Int(2)
            ]
        );
    }

    #[test]
    fn projection_and_selection() {
        let db = paper_db();
        let q = Query::scan("User")
            .filter(Expr::col("name").like("A%"))
            .project_cols(&["name"]);
        let out = q.evaluate(&db).unwrap();
        let mut names: Vec<String> = out.rows().iter().map(|r| r[0].to_string()).collect();
        names.sort();
        assert_eq!(names, vec!["Abe", "Alice"]);
        assert_eq!(out.schema().column_name(0), "name");
        assert_eq!(out.schema().column_type(0), ColumnType::Str);
    }

    #[test]
    fn distinct_and_limit() {
        let db = paper_db();
        let q = Query::scan("User").project_cols(&["gender"]).distinct();
        let out = q.evaluate(&db).unwrap();
        assert_eq!(out.len(), 2);

        let q = Query::scan("User").limit(3);
        let out = q.evaluate(&db).unwrap();
        assert_eq!(out.len(), 3);

        let q = Query::scan("User").limit(0);
        assert_eq!(q.evaluate(&db).unwrap().len(), 0);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let db = paper_db();
        let q = Query::scan("User")
            .filter(Expr::col("age").gt(Expr::lit(1000)))
            .aggregate(
                vec![],
                vec![
                    (AggFunc::Count, None, "c"),
                    (AggFunc::Sum, Some("age"), "s"),
                    (AggFunc::Min, Some("age"), "m"),
                    (AggFunc::Avg, Some("age"), "a"),
                ],
            );
        let out = q.evaluate(&db).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(0));
        assert!(out.rows()[0][1].is_null());
        assert!(out.rows()[0][2].is_null());
        assert!(out.rows()[0][3].is_null());
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        let db = paper_db();
        let q = Query::scan("User")
            .filter(Expr::col("age").gt(Expr::lit(1000)))
            .aggregate(vec!["gender"], vec![(AggFunc::Count, None, "c")]);
        assert_eq!(q.evaluate(&db).unwrap().len(), 0);
    }

    fn two_table_db() -> Database {
        let mut db = paper_db();
        let mut lang = Relation::new(Schema::new(vec![
            ("uid", ColumnType::Int),
            ("lang", ColumnType::Str),
        ]));
        lang.push(vec![Value::Int(1), "en".into()]).unwrap();
        lang.push(vec![Value::Int(2), "en".into()]).unwrap();
        lang.push(vec![Value::Int(2), "fr".into()]).unwrap();
        lang.push(vec![Value::Int(9), "de".into()]).unwrap();
        db.add_table("Lang", lang);
        db
    }

    #[test]
    fn hash_join_basic() {
        let db = two_table_db();
        let q = Query::scan("User")
            .join(Query::scan("Lang"), vec![("uid", "uid")])
            .project_cols(&["name", "lang"]);
        let out = q.evaluate(&db).unwrap();
        let mut pairs: Vec<(String, String)> = out
            .rows()
            .iter()
            .map(|r| (r[0].to_string(), r[1].to_string()))
            .collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                ("Abe".to_string(), "en".to_string()),
                ("Alice".to_string(), "en".to_string()),
                ("Alice".to_string(), "fr".to_string()),
            ]
        );
    }

    #[test]
    fn join_column_name_collisions_are_prefixed() {
        let db = two_table_db();
        let q = Query::scan("User").join(Query::scan("Lang"), vec![("uid", "uid")]);
        let out = q.evaluate(&db).unwrap();
        assert_eq!(out.schema().column_name(4), "r.uid");
    }

    #[test]
    fn join_then_aggregate() {
        let db = two_table_db();
        // SELECT lang, count(*) FROM User JOIN Lang USING (uid) GROUP BY lang
        let q = Query::scan("User")
            .join(Query::scan("Lang"), vec![("uid", "uid")])
            .aggregate(vec!["lang"], vec![(AggFunc::Count, None, "c")]);
        let out = q.evaluate(&db).unwrap();
        assert_eq!(out.rows()[0], vec![Value::from("en"), Value::Int(2)]);
        assert_eq!(out.rows()[1], vec![Value::from("fr"), Value::Int(1)]);
    }

    #[test]
    fn null_join_keys_do_not_match() {
        let mut db = Database::new();
        let mut l = Relation::new(Schema::new(vec![("k", ColumnType::Int)]));
        l.push(vec![Value::Null]).unwrap();
        l.push(vec![Value::Int(1)]).unwrap();
        let mut r = Relation::new(Schema::new(vec![("k", ColumnType::Int)]));
        r.push(vec![Value::Null]).unwrap();
        r.push(vec![Value::Int(1)]).unwrap();
        db.add_table("L", l);
        db.add_table("R", r);
        let q = Query::scan("L").join(Query::scan("R"), vec![("k", "k")]);
        assert_eq!(q.evaluate(&db).unwrap().len(), 1);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let db = paper_db();
        assert!(Query::scan("Nope").evaluate(&db).is_err());
        let q = Query::scan("User").filter(Expr::col("nope").eq(Expr::lit(1)));
        assert!(q.evaluate(&db).is_err());
        let q = Query::scan("User").aggregate(vec!["nope"], vec![(AggFunc::Count, None, "c")]);
        assert!(q.evaluate(&db).is_err());
    }
}
