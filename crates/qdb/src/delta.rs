//! Single-tuple deltas and delta instances.
//!
//! Qirana builds its support set from "neighbouring" databases: instances
//! that differ from the base `D` in only a few cells of a single tuple. A
//! [`Delta`] records such a perturbation; a [`DeltaInstance`] lazily overlays
//! one or more deltas on a borrowed base database so that evaluating a query
//! on a support instance never copies the base tables.

use std::borrow::Cow;

use crate::relation::Tuple;
use crate::{Database, Instance, QdbError, Schema, Value};

/// A change to a single cell of a tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct CellChange {
    /// Column index within the tuple.
    pub column: usize,
    /// The replacement value.
    pub new_value: Value,
}

/// A perturbation of a single tuple of a single table.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// The table whose tuple is perturbed.
    pub table: String,
    /// Index of the perturbed row in the base table.
    pub row: usize,
    /// Cell replacements applied to that row.
    pub changes: Vec<CellChange>,
}

impl Delta {
    /// Creates a delta replacing cells of `table[row]`.
    pub fn new(table: impl Into<String>, row: usize, changes: Vec<CellChange>) -> Self {
        Delta {
            table: table.into(),
            row,
            changes: changes.into_iter().collect(),
        }
    }

    /// Convenience constructor for a single-cell change.
    pub fn cell(
        table: impl Into<String>,
        row: usize,
        column: usize,
        new_value: impl Into<Value>,
    ) -> Self {
        Delta::new(
            table,
            row,
            vec![CellChange {
                column,
                new_value: new_value.into(),
            }],
        )
    }

    /// The original version of the perturbed tuple in `base`.
    pub fn old_tuple<'a>(&self, base: &'a Database) -> Result<&'a Tuple, QdbError> {
        let rel = base.table(&self.table)?;
        rel.rows()
            .get(self.row)
            .ok_or_else(|| QdbError::UnknownColumn(format!("row {} of {}", self.row, self.table)))
    }

    /// The perturbed version of the tuple.
    pub fn new_tuple(&self, base: &Database) -> Result<Tuple, QdbError> {
        let mut t = self.old_tuple(base)?.clone();
        for c in &self.changes {
            if c.column >= t.len() {
                return Err(QdbError::UnknownColumn(format!(
                    "column index {} of {}",
                    c.column, self.table
                )));
            }
            t[c.column] = c.new_value.clone();
        }
        Ok(t)
    }

    /// True if the delta leaves the tuple unchanged (all new values equal the
    /// old ones).
    pub fn is_noop(&self, base: &Database) -> Result<bool, QdbError> {
        let old = self.old_tuple(base)?;
        Ok(self.changes.iter().all(|c| {
            old.get(c.column)
                .map(|v| *v == c.new_value)
                .unwrap_or(false)
        }))
    }

    /// Materializes the delta into a full copy of the base database. Used by
    /// tests to cross-check the lazy overlay.
    pub fn materialize(&self, base: &Database) -> Result<Database, QdbError> {
        let mut db = base.clone();
        let new = self.new_tuple(base)?;
        let rel = db.table_mut(&self.table)?;
        rel.rows_mut()[self.row] = new;
        Ok(db)
    }
}

/// A lazily-overlaid database instance: the base plus one or more deltas.
#[derive(Debug, Clone)]
pub struct DeltaInstance<'a> {
    base: &'a Database,
    deltas: Vec<&'a Delta>,
}

impl<'a> DeltaInstance<'a> {
    /// Creates an instance overlaying a single delta.
    pub fn new(base: &'a Database, delta: &'a Delta) -> Self {
        DeltaInstance {
            base,
            deltas: vec![delta],
        }
    }

    /// Creates an instance overlaying several deltas (later deltas win on the
    /// same cell).
    pub fn with_deltas(base: &'a Database, deltas: Vec<&'a Delta>) -> Self {
        DeltaInstance { base, deltas }
    }

    /// The underlying base database.
    pub fn base(&self) -> &'a Database {
        self.base
    }

    /// The overlaid deltas.
    pub fn deltas(&self) -> &[&'a Delta] {
        &self.deltas
    }
}

impl<'a> Instance for DeltaInstance<'a> {
    fn table_schema(&self, table: &str) -> Result<&Schema, QdbError> {
        self.base.table_schema(table)
    }

    fn scan<'b>(
        &'b self,
        table: &str,
    ) -> Result<Box<dyn Iterator<Item = Cow<'b, Tuple>> + 'b>, QdbError> {
        let rel = self.base.table(table)?;
        // Collect the deltas affecting this table (usually zero or one).
        let relevant: Vec<&Delta> = self
            .deltas
            .iter()
            .copied()
            .filter(|d| d.table == table)
            .collect();
        if relevant.is_empty() {
            return Ok(Box::new(rel.rows().iter().map(Cow::Borrowed)));
        }
        let iter = rel.rows().iter().enumerate().map(move |(i, row)| {
            let mut patched: Option<Tuple> = None;
            for d in &relevant {
                if d.row == i {
                    let t = patched.get_or_insert_with(|| row.clone());
                    for c in &d.changes {
                        if c.column < t.len() {
                            t[c.column] = c.new_value.clone();
                        }
                    }
                }
            }
            match patched {
                Some(t) => Cow::Owned(t),
                None => Cow::Borrowed(row),
            }
        });
        Ok(Box::new(iter))
    }

    fn table_len(&self, table: &str) -> Result<usize, QdbError> {
        self.base.table_len(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggFunc, ColumnType, Expr, Query, Relation};

    fn db() -> Database {
        let mut rel = Relation::new(Schema::new(vec![
            ("name", ColumnType::Str),
            ("gender", ColumnType::Str),
            ("age", ColumnType::Int),
        ]));
        rel.push(vec!["Abe".into(), "m".into(), Value::Int(18)])
            .unwrap();
        rel.push(vec!["Alice".into(), "f".into(), Value::Int(20)])
            .unwrap();
        rel.push(vec!["Bob".into(), "m".into(), Value::Int(25)])
            .unwrap();
        let mut db = Database::new();
        db.add_table("User", rel);
        db
    }

    #[test]
    fn delta_old_and_new_tuples() {
        let db = db();
        let d = Delta::cell("User", 1, 2, 30i64);
        assert_eq!(d.old_tuple(&db).unwrap()[2], Value::Int(20));
        assert_eq!(d.new_tuple(&db).unwrap()[2], Value::Int(30));
        assert!(!d.is_noop(&db).unwrap());
        let noop = Delta::cell("User", 1, 2, 20i64);
        assert!(noop.is_noop(&db).unwrap());
    }

    #[test]
    fn overlay_matches_materialized_copy() {
        let db = db();
        let d = Delta::cell("User", 0, 1, "f");
        let overlay = DeltaInstance::new(&db, &d);
        let materialized = d.materialize(&db).unwrap();

        let q = Query::scan("User")
            .filter(Expr::col("gender").eq(Expr::lit("f")))
            .aggregate(vec![], vec![(AggFunc::Count, None, "cnt")]);
        let from_overlay = q.evaluate(&overlay).unwrap();
        let from_copy = q.evaluate(&materialized).unwrap();
        assert!(from_overlay.same_answer(&from_copy));
        assert_eq!(from_overlay.rows()[0][0], Value::Int(2));
    }

    #[test]
    fn overlay_leaves_other_tables_untouched() {
        let mut base = db();
        let mut other = Relation::new(Schema::new(vec![("x", ColumnType::Int)]));
        other.push(vec![Value::Int(42)]).unwrap();
        base.add_table("Other", other);

        let d = Delta::cell("User", 0, 2, 99i64);
        let overlay = DeltaInstance::new(&base, &d);
        let rows: Vec<_> = overlay.scan("Other").unwrap().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(42));
        assert_eq!(overlay.table_len("User").unwrap(), 3);
        assert_eq!(overlay.base().total_rows(), 4);
        assert_eq!(overlay.deltas().len(), 1);
    }

    #[test]
    fn multiple_deltas_compose() {
        let base = db();
        let d1 = Delta::cell("User", 0, 2, 50i64);
        let d2 = Delta::cell("User", 2, 2, 60i64);
        let overlay = DeltaInstance::with_deltas(&base, vec![&d1, &d2]);
        let rows: Vec<_> = overlay.scan("User").unwrap().collect();
        assert_eq!(rows[0][2], Value::Int(50));
        assert_eq!(rows[1][2], Value::Int(20));
        assert_eq!(rows[2][2], Value::Int(60));
    }

    #[test]
    fn out_of_range_delta_errors() {
        let base = db();
        let d = Delta::cell("User", 99, 0, "x");
        assert!(d.old_tuple(&base).is_err());
        let d = Delta::cell("Missing", 0, 0, "x");
        assert!(d.old_tuple(&base).is_err());
        let d = Delta::new(
            "User",
            0,
            vec![CellChange {
                column: 99,
                new_value: Value::Int(1),
            }],
        );
        assert!(d.new_tuple(&base).is_err());
    }
}
