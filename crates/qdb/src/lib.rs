//! # qp-qdb — a minimal in-memory relational engine
//!
//! The query-pricing framework of Chawla et al. (VLDB 2019) needs to evaluate
//! deterministic relational queries on a base database `D` and on a set of
//! *support* databases `S` (small perturbations of `D`) in order to compute
//! conflict sets `C_S(Q, D) = {D' ∈ S | Q(D) ≠ Q(D')}`. The paper used MySQL;
//! this crate provides the equivalent substrate: typed relations, a logical
//! query plan covering selection / projection / equi-join / grouping /
//! aggregation / `DISTINCT` / `LIMIT`, a deterministic evaluator, and
//! single-tuple **deltas** which represent support databases without copying
//! the base instance.
//!
//! ## Example
//!
//! ```
//! use qp_qdb::{Database, Relation, Schema, ColumnType, Value, Query, Expr, AggFunc};
//!
//! let schema = Schema::new(vec![
//!     ("name", ColumnType::Str),
//!     ("gender", ColumnType::Str),
//!     ("age", ColumnType::Int),
//! ]);
//! let mut users = Relation::new(schema);
//! users.push(vec!["Abe".into(), "m".into(), Value::Int(18)]).unwrap();
//! users.push(vec!["Alice".into(), "f".into(), Value::Int(20)]).unwrap();
//!
//! let mut db = Database::new();
//! db.add_table("User", users);
//!
//! // SELECT count(*) FROM User WHERE gender = 'f'
//! let q = Query::scan("User")
//!     .filter(Expr::col("gender").eq(Expr::lit("f")))
//!     .aggregate(vec![], vec![(AggFunc::Count, None, "cnt")]);
//!
//! let out = q.evaluate(&db).unwrap();
//! assert_eq!(out.rows()[0][0], Value::Int(1));
//! ```

mod database;
mod delta;
mod error;
mod expr;
mod instance;
mod plan;
mod relation;
mod schema;
mod value;

pub mod eval;
pub mod pretty;

pub use database::Database;
pub use delta::{CellChange, Delta, DeltaInstance};
pub use error::QdbError;
pub use expr::{BinOp, Expr};
pub use instance::{BaseInstance, Instance};
pub use plan::{AggFunc, Aggregate, Query};
pub use relation::{Relation, Tuple};
pub use schema::{ColumnType, Schema};
pub use value::Value;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn doc_example_runs() {
        let schema = Schema::new(vec![
            ("name", ColumnType::Str),
            ("gender", ColumnType::Str),
            ("age", ColumnType::Int),
        ]);
        let mut users = Relation::new(schema);
        users
            .push(vec!["Abe".into(), "m".into(), Value::Int(18)])
            .unwrap();
        users
            .push(vec!["Alice".into(), "f".into(), Value::Int(20)])
            .unwrap();
        let mut db = Database::new();
        db.add_table("User", users);
        let q = Query::scan("User")
            .filter(Expr::col("gender").eq(Expr::lit("f")))
            .aggregate(vec![], vec![(AggFunc::Count, None, "cnt")]);
        let out = q.evaluate(&db).unwrap();
        assert_eq!(out.rows()[0][0], Value::Int(1));
    }
}
