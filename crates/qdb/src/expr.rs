//! Scalar expressions over tuples.
//!
//! Expressions are written against column *names* and bound to column
//! *indices* once per operator ([`Expr::bind`]), so per-row evaluation never
//! performs string lookups.

use crate::{QdbError, Schema, Value};

/// Binary operators supported in predicates and projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Col(String),
    /// A literal value.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// SQL `LIKE` with `%` and `_` wildcards; operand must evaluate to a string.
    Like {
        /// String operand.
        expr: Box<Expr>,
        /// Pattern with `%` / `_` wildcards.
        pattern: String,
    },
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        /// Tested operand.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// Tested operand.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Value>,
    },
    /// `expr IS NULL`.
    IsNull(Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal value.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    fn binary(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    /// `self = rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Eq, rhs)
    }
    /// `self <> rhs`
    pub fn ne(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ne, rhs)
    }
    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Lt, rhs)
    }
    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Le, rhs)
    }
    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Gt, rhs)
    }
    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ge, rhs)
    }
    /// Logical conjunction.
    pub fn and(self, rhs: Expr) -> Expr {
        self.binary(BinOp::And, rhs)
    }
    /// Logical disjunction.
    pub fn or(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Or, rhs)
    }
    /// Arithmetic `+` (a query-DSL builder, deliberately not `std::ops`
    /// — operands are plan fragments, not values).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Add, rhs)
    }
    /// Arithmetic `-` (a query-DSL builder, deliberately not `std::ops`
    /// — operands are plan fragments, not values).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Sub, rhs)
    }
    /// Arithmetic `*` (a query-DSL builder, deliberately not `std::ops`
    /// — operands are plan fragments, not values).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Mul, rhs)
    }
    /// Arithmetic `/` (a query-DSL builder, deliberately not `std::ops`
    /// — operands are plan fragments, not values).
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Div, rhs)
    }
    /// Logical negation (a query-DSL builder, deliberately not `std::ops`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// SQL `LIKE`.
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: pattern.into(),
        }
    }
    /// SQL `BETWEEN ... AND ...` (inclusive).
    pub fn between(self, low: Expr, high: Expr) -> Expr {
        Expr::Between {
            expr: Box::new(self),
            low: Box::new(low),
            high: Box::new(high),
        }
    }
    /// SQL `IN (...)`.
    pub fn in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
        }
    }
    /// SQL `IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// Column names referenced anywhere in the expression.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(c) => out.push(c),
            Expr::Lit(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) => e.collect_columns(out),
            Expr::Like { expr, .. } => expr.collect_columns(out),
            Expr::Between { expr, low, high } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::InList { expr, .. } => expr.collect_columns(out),
        }
    }

    /// Resolves column names against `schema`, producing an executable
    /// `BoundExpr` (a crate-internal representation).
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr, QdbError> {
        Ok(match self {
            Expr::Col(name) => BoundExpr::Col(schema.index_of(name)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::Not(e) => BoundExpr::Not(Box::new(e.bind(schema)?)),
            Expr::Like { expr, pattern } => BoundExpr::Like {
                expr: Box::new(expr.bind(schema)?),
                pattern: pattern.clone(),
            },
            Expr::Between { expr, low, high } => BoundExpr::Between {
                expr: Box::new(expr.bind(schema)?),
                low: Box::new(low.bind(schema)?),
                high: Box::new(high.bind(schema)?),
            },
            Expr::InList { expr, list } => BoundExpr::InList {
                expr: Box::new(expr.bind(schema)?),
                list: list.clone(),
            },
            Expr::IsNull(e) => BoundExpr::IsNull(Box::new(e.bind(schema)?)),
        })
    }
}

/// An expression with column references resolved to indices.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Column by index.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Negation.
    Not(Box<BoundExpr>),
    /// LIKE.
    Like {
        /// String operand.
        expr: Box<BoundExpr>,
        /// Wildcard pattern.
        pattern: String,
    },
    /// BETWEEN.
    Between {
        /// Tested operand.
        expr: Box<BoundExpr>,
        /// Lower bound.
        low: Box<BoundExpr>,
        /// Upper bound.
        high: Box<BoundExpr>,
    },
    /// IN list.
    InList {
        /// Tested operand.
        expr: Box<BoundExpr>,
        /// Candidate values.
        list: Vec<Value>,
    },
    /// IS NULL.
    IsNull(Box<BoundExpr>),
}

impl BoundExpr {
    /// Evaluates the expression on a row.
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            BoundExpr::Col(i) => row[*i].clone(),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Binary { op, left, right } => {
                let l = left.eval(row);
                let r = right.eval(row);
                eval_binary(*op, &l, &r)
            }
            BoundExpr::Not(e) => Value::Bool(!e.eval(row).is_truthy()),
            BoundExpr::Like { expr, pattern } => {
                let v = expr.eval(row);
                match v.as_str() {
                    Some(s) => Value::Bool(like_match(s, pattern)),
                    None => Value::Bool(false),
                }
            }
            BoundExpr::Between { expr, low, high } => {
                let v = expr.eval(row);
                let lo = low.eval(row);
                let hi = high.eval(row);
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Value::Bool(false);
                }
                Value::Bool(v >= lo && v <= hi)
            }
            BoundExpr::InList { expr, list } => {
                let v = expr.eval(row);
                Value::Bool(list.contains(&v))
            }
            BoundExpr::IsNull(e) => Value::Bool(e.eval(row).is_null()),
        }
    }

    /// Evaluates the expression as a boolean predicate.
    pub fn eval_bool(&self, row: &[Value]) -> bool {
        self.eval(row).is_truthy()
    }
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Value {
    use BinOp::*;
    match op {
        And => return Value::Bool(l.is_truthy() && r.is_truthy()),
        Or => return Value::Bool(l.is_truthy() || r.is_truthy()),
        _ => {}
    }
    // NULL propagates through comparisons (as false) and arithmetic (as NULL).
    if l.is_null() || r.is_null() {
        return match op {
            Add | Sub | Mul | Div => Value::Null,
            _ => Value::Bool(false),
        };
    }
    match op {
        Eq => Value::Bool(l == r),
        Ne => Value::Bool(l != r),
        Lt => Value::Bool(l < r),
        Le => Value::Bool(l <= r),
        Gt => Value::Bool(l > r),
        Ge => Value::Bool(l >= r),
        Add | Sub | Mul | Div => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => {
                let x = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => {
                        // float-eq: exact division-by-zero guard (SQL
                        // semantics: x / 0 is NULL, including -0.0).
                        if b == 0.0 {
                            return Value::Null;
                        }
                        a / b
                    }
                    _ => unreachable!(),
                };
                // Preserve integer typing for exact integer arithmetic.
                if matches!((l, r), (Value::Int(_), Value::Int(_)))
                    && !matches!(op, Div)
                    // float-eq: fract() of an integral f64 is exactly 0.0.
                    && x.fract() == 0.0
                    && x.abs() < i64::MAX as f64
                {
                    Value::Int(x as i64)
                } else {
                    Value::Float(x)
                }
            }
            _ => Value::Null,
        },
        And | Or => unreachable!(),
    }
}

/// SQL `LIKE` matcher supporting `%` (any run) and `_` (single char).
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    like_rec(&s, &p)
}

fn like_rec(s: &[char], p: &[char]) -> bool {
    if p.is_empty() {
        return s.is_empty();
    }
    match p[0] {
        '%' => {
            // Try to consume 0..=len(s) characters.
            (0..=s.len()).any(|k| like_rec(&s[k..], &p[1..]))
        }
        '_' => !s.is_empty() && like_rec(&s[1..], &p[1..]),
        c => !s.is_empty() && s[0] == c && like_rec(&s[1..], &p[1..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColumnType;

    fn schema() -> Schema {
        Schema::new(vec![
            ("name", ColumnType::Str),
            ("age", ColumnType::Int),
            ("score", ColumnType::Float),
        ])
    }

    fn row() -> Vec<Value> {
        vec!["Alice".into(), Value::Int(30), Value::Float(7.5)]
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let e = Expr::col("age").ge(Expr::lit(18)).bind(&s).unwrap();
        assert!(e.eval_bool(&row()));
        let e = Expr::col("age").lt(Expr::lit(18)).bind(&s).unwrap();
        assert!(!e.eval_bool(&row()));
        let e = Expr::col("name").eq(Expr::lit("Alice")).bind(&s).unwrap();
        assert!(e.eval_bool(&row()));
        let e = Expr::col("name").ne(Expr::lit("Bob")).bind(&s).unwrap();
        assert!(e.eval_bool(&row()));
    }

    #[test]
    fn logical_connectives() {
        let s = schema();
        let e = Expr::col("age")
            .gt(Expr::lit(18))
            .and(Expr::col("name").eq(Expr::lit("Alice")))
            .bind(&s)
            .unwrap();
        assert!(e.eval_bool(&row()));
        let e = Expr::col("age")
            .gt(Expr::lit(100))
            .or(Expr::col("score").gt(Expr::lit(5.0)))
            .bind(&s)
            .unwrap();
        assert!(e.eval_bool(&row()));
        let e = Expr::col("age").gt(Expr::lit(100)).not().bind(&s).unwrap();
        assert!(e.eval_bool(&row()));
    }

    #[test]
    fn arithmetic_preserves_int_typing() {
        let s = schema();
        let e = Expr::col("age").add(Expr::lit(5)).bind(&s).unwrap();
        assert_eq!(e.eval(&row()), Value::Int(35));
        let e = Expr::col("age").mul(Expr::lit(2)).bind(&s).unwrap();
        assert_eq!(e.eval(&row()), Value::Int(60));
        let e = Expr::col("score").add(Expr::lit(0.5)).bind(&s).unwrap();
        assert_eq!(e.eval(&row()), Value::Float(8.0));
        // Division always yields float; division by zero yields NULL.
        let e = Expr::col("age").div(Expr::lit(4)).bind(&s).unwrap();
        assert_eq!(e.eval(&row()), Value::Float(7.5));
        let e = Expr::col("age").div(Expr::lit(0)).bind(&s).unwrap();
        assert!(e.eval(&row()).is_null());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("Alice", "A%"));
        assert!(like_match("Alice", "%ice"));
        assert!(like_match("Alice", "%lic%"));
        assert!(like_match("Alice", "Al_ce"));
        assert!(!like_match("Alice", "B%"));
        assert!(!like_match("Alice", "A_ce"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        let s = schema();
        let e = Expr::col("name").like("A%").bind(&s).unwrap();
        assert!(e.eval_bool(&row()));
        // LIKE on a non-string evaluates to false rather than erroring.
        let e = Expr::col("age").like("3%").bind(&s).unwrap();
        assert!(!e.eval_bool(&row()));
    }

    #[test]
    fn between_and_in_list() {
        let s = schema();
        let e = Expr::col("age")
            .between(Expr::lit(20), Expr::lit(40))
            .bind(&s)
            .unwrap();
        assert!(e.eval_bool(&row()));
        let e = Expr::col("age")
            .between(Expr::lit(31), Expr::lit(40))
            .bind(&s)
            .unwrap();
        assert!(!e.eval_bool(&row()));
        let e = Expr::col("name")
            .in_list(vec!["Bob".into(), "Alice".into()])
            .bind(&s)
            .unwrap();
        assert!(e.eval_bool(&row()));
        let e = Expr::col("name")
            .in_list(vec!["Bob".into()])
            .bind(&s)
            .unwrap();
        assert!(!e.eval_bool(&row()));
    }

    #[test]
    fn null_semantics() {
        let s = schema();
        let null_row = vec![Value::Null, Value::Null, Value::Null];
        let e = Expr::col("age").gt(Expr::lit(5)).bind(&s).unwrap();
        assert!(!e.eval_bool(&null_row));
        let e = Expr::col("age").add(Expr::lit(5)).bind(&s).unwrap();
        assert!(e.eval(&null_row).is_null());
        let e = Expr::col("age").is_null().bind(&s).unwrap();
        assert!(e.eval_bool(&null_row));
        assert!(!e.eval_bool(&row()));
    }

    #[test]
    fn binding_unknown_column_errors() {
        let s = schema();
        assert!(Expr::col("missing").bind(&s).is_err());
    }

    #[test]
    fn referenced_columns_are_collected() {
        let e = Expr::col("a")
            .gt(Expr::lit(1))
            .and(Expr::col("b").like("x%"))
            .or(Expr::col("c").between(Expr::lit(0), Expr::col("d")));
        let mut cols = e.referenced_columns();
        cols.sort();
        assert_eq!(cols, vec!["a", "b", "c", "d"]);
    }
}
