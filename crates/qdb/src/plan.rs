//! Logical query plans.
//!
//! A [`Query`] is a small relational-algebra tree — the formal counterpart of
//! the SQL workloads in the paper (selection, projection, equi-join, grouping
//! and aggregation, `DISTINCT`, `LIMIT`). Plans are built with a fluent API
//! and evaluated against any [`crate::Instance`].

use crate::{eval, Expr, Instance, QdbError, Relation};

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` when the column is `None`, `COUNT(col)` otherwise
    /// (NULLs excluded).
    Count,
    /// `COUNT(DISTINCT col)`.
    CountDistinct,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

/// A single aggregate expression `func(column) AS alias`.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// The aggregate function.
    pub func: AggFunc,
    /// The input column (`None` only for `COUNT(*)`).
    pub column: Option<String>,
    /// Output column name.
    pub alias: String,
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Scan a base table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Filter rows by a predicate.
    Filter {
        /// Input plan.
        input: Box<Query>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// Project expressions, producing named output columns.
    Project {
        /// Input plan.
        input: Box<Query>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Equi-join of two plans.
    Join {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
        /// Join keys as `(left column, right column)` pairs.
        on: Vec<(String, String)>,
    },
    /// Grouping and aggregation.
    Aggregate {
        /// Input plan.
        input: Box<Query>,
        /// Grouping columns (may be empty for a global aggregate).
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<Aggregate>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<Query>,
    },
    /// Keep only the first `n` rows (input order).
    Limit {
        /// Input plan.
        input: Box<Query>,
        /// Maximum number of rows.
        n: usize,
    },
}

impl Query {
    /// Starts a plan with a table scan.
    pub fn scan(table: impl Into<String>) -> Query {
        Query::Scan {
            table: table.into(),
        }
    }

    /// Adds a filter on top of this plan.
    pub fn filter(self, predicate: Expr) -> Query {
        Query::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Adds a projection with explicit output names.
    pub fn project(self, exprs: Vec<(Expr, impl Into<String>)>) -> Query {
        Query::Project {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(e, n)| (e, n.into())).collect(),
        }
    }

    /// Convenience projection of plain columns.
    pub fn project_cols(self, cols: &[&str]) -> Query {
        Query::Project {
            input: Box::new(self),
            exprs: cols
                .iter()
                .map(|c| (Expr::col(*c), (*c).to_string()))
                .collect(),
        }
    }

    /// Joins this plan with another on equality of the given column pairs.
    pub fn join(self, right: Query, on: Vec<(&str, &str)>) -> Query {
        Query::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: on
                .into_iter()
                .map(|(l, r)| (l.to_string(), r.to_string()))
                .collect(),
        }
    }

    /// Adds grouping and aggregation. Each aggregate is given as
    /// `(function, input column, output alias)`.
    pub fn aggregate(self, group_by: Vec<&str>, aggs: Vec<(AggFunc, Option<&str>, &str)>) -> Query {
        Query::Aggregate {
            input: Box::new(self),
            group_by: group_by.into_iter().map(|s| s.to_string()).collect(),
            aggs: aggs
                .into_iter()
                .map(|(func, column, alias)| Aggregate {
                    func,
                    column: column.map(|s| s.to_string()),
                    alias: alias.to_string(),
                })
                .collect(),
        }
    }

    /// Adds duplicate elimination.
    pub fn distinct(self) -> Query {
        Query::Distinct {
            input: Box::new(self),
        }
    }

    /// Adds a row limit.
    pub fn limit(self, n: usize) -> Query {
        Query::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Evaluates the plan against a database instance.
    pub fn evaluate<I: Instance + ?Sized>(&self, db: &I) -> Result<Relation, QdbError> {
        eval::evaluate(self, db)
    }

    /// Names of all base tables referenced by the plan (with duplicates
    /// removed, in first-reference order).
    pub fn tables_referenced(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            Query::Scan { table } => {
                if !out.iter().any(|t| t == table) {
                    out.push(table.clone());
                }
            }
            Query::Filter { input, .. }
            | Query::Project { input, .. }
            | Query::Aggregate { input, .. }
            | Query::Distinct { input }
            | Query::Limit { input, .. } => input.collect_tables(out),
            Query::Join { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }

    /// True if the plan reads a single base table exactly once (no joins).
    pub fn is_single_table(&self) -> bool {
        self.count_scans() == 1
    }

    fn count_scans(&self) -> usize {
        match self {
            Query::Scan { .. } => 1,
            Query::Filter { input, .. }
            | Query::Project { input, .. }
            | Query::Aggregate { input, .. }
            | Query::Distinct { input }
            | Query::Limit { input, .. } => input.count_scans(),
            Query::Join { left, right, .. } => left.count_scans() + right.count_scans(),
        }
    }

    /// True if the plan contains an aggregation operator.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Query::Aggregate { .. } => true,
            Query::Scan { .. } => false,
            Query::Filter { input, .. }
            | Query::Project { input, .. }
            | Query::Distinct { input }
            | Query::Limit { input, .. } => input.has_aggregate(),
            Query::Join { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
        }
    }

    /// True if the plan contains a `LIMIT` operator.
    pub fn has_limit(&self) -> bool {
        match self {
            Query::Limit { .. } => true,
            Query::Scan { .. } => false,
            Query::Filter { input, .. }
            | Query::Project { input, .. }
            | Query::Distinct { input }
            | Query::Aggregate { input, .. } => input.has_limit(),
            Query::Join { left, right, .. } => left.has_limit() || right.has_limit(),
        }
    }

    /// True if the plan contains a `DISTINCT` operator.
    pub fn has_distinct(&self) -> bool {
        match self {
            Query::Distinct { .. } => true,
            Query::Scan { .. } => false,
            Query::Filter { input, .. }
            | Query::Project { input, .. }
            | Query::Limit { input, .. }
            | Query::Aggregate { input, .. } => input.has_distinct(),
            Query::Join { left, right, .. } => left.has_distinct() || right.has_distinct(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_expected_shape() {
        let q = Query::scan("Country")
            .filter(Expr::col("Continent").eq(Expr::lit("Asia")))
            .aggregate(vec![], vec![(AggFunc::Count, Some("Name"), "cnt")]);
        assert!(q.is_single_table());
        assert!(q.has_aggregate());
        assert!(!q.has_limit());
        assert_eq!(q.tables_referenced(), vec!["Country".to_string()]);
    }

    #[test]
    fn join_plans_reference_both_tables() {
        let q = Query::scan("Country").join(Query::scan("City"), vec![("Code", "CountryCode")]);
        assert!(!q.is_single_table());
        assert_eq!(
            q.tables_referenced(),
            vec!["Country".to_string(), "City".to_string()]
        );
    }

    #[test]
    fn flags_detect_operators() {
        let q = Query::scan("T").distinct().limit(5);
        assert!(q.has_distinct());
        assert!(q.has_limit());
        assert!(!q.has_aggregate());
    }

    #[test]
    fn duplicate_table_references_are_deduped() {
        let q = Query::scan("T").join(Query::scan("T"), vec![("a", "a")]);
        assert_eq!(q.tables_referenced(), vec!["T".to_string()]);
        assert_eq!(q.count_scans(), 2);
    }
}
