//! Error type for the relational engine.

use std::fmt;

/// Errors raised while constructing relations or evaluating queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QdbError {
    /// A referenced table does not exist in the database instance.
    UnknownTable(String),
    /// A referenced column does not exist in the input schema.
    UnknownColumn(String),
    /// A tuple's arity does not match the relation schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values in the offending tuple.
        got: usize,
    },
    /// An aggregate was applied to a non-numeric column where a numeric one
    /// is required (SUM / AVG).
    NonNumericAggregate {
        /// Name of the offending column.
        column: String,
    },
    /// A type error during expression evaluation (e.g. `LIKE` on an integer).
    TypeError(String),
}

impl fmt::Display for QdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QdbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            QdbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            QdbError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} columns, tuple has {got}"
                )
            }
            QdbError::NonNumericAggregate { column } => {
                write!(f, "aggregate requires a numeric column, got: {column}")
            }
            QdbError::TypeError(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl std::error::Error for QdbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_contain_context() {
        assert!(QdbError::UnknownTable("User".into())
            .to_string()
            .contains("User"));
        assert!(QdbError::UnknownColumn("age".into())
            .to_string()
            .contains("age"));
        let e = QdbError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
        assert!(QdbError::NonNumericAggregate {
            column: "name".into()
        }
        .to_string()
        .contains("name"));
        assert!(QdbError::TypeError("bad".into())
            .to_string()
            .contains("bad"));
    }
}
