//! Database instances: named collections of relations.

use std::collections::BTreeMap;

use crate::{QdbError, Relation};

/// A database instance `D`: a mapping from table names to relations.
///
/// `BTreeMap` keeps iteration deterministic, which matters for reproducible
/// support-set sampling and fingerprinting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Database {
    tables: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database {
            tables: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a table.
    pub fn add_table(&mut self, name: impl Into<String>, relation: Relation) {
        self.tables.insert(name.into(), relation);
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Relation, QdbError> {
        self.tables
            .get(name)
            .ok_or_else(|| QdbError::UnknownTable(name.to_string()))
    }

    /// Mutable lookup (used when applying deltas).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Relation, QdbError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| QdbError::UnknownTable(name.to_string()))
    }

    /// Table names in deterministic (sorted) order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Total number of tuples across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|r| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnType, Schema, Value};

    fn users() -> Relation {
        let mut r = Relation::new(Schema::new(vec![("id", ColumnType::Int)]));
        r.push(vec![Value::Int(1)]).unwrap();
        r.push(vec![Value::Int(2)]).unwrap();
        r
    }

    #[test]
    fn add_and_lookup() {
        let mut db = Database::new();
        db.add_table("User", users());
        assert_eq!(db.num_tables(), 1);
        assert_eq!(db.total_rows(), 2);
        assert!(db.table("User").is_ok());
        assert!(matches!(
            db.table("Missing"),
            Err(QdbError::UnknownTable(_))
        ));
        assert_eq!(db.table_names().collect::<Vec<_>>(), vec!["User"]);
    }

    #[test]
    fn table_mut_allows_updates() {
        let mut db = Database::new();
        db.add_table("User", users());
        db.table_mut("User")
            .unwrap()
            .push(vec![Value::Int(3)])
            .unwrap();
        assert_eq!(db.table("User").unwrap().len(), 3);
    }

    #[test]
    fn replace_table() {
        let mut db = Database::new();
        db.add_table("User", users());
        db.add_table(
            "User",
            Relation::new(Schema::new(vec![("id", ColumnType::Int)])),
        );
        assert_eq!(db.total_rows(), 0);
    }
}
