//! Database-instance abstraction.
//!
//! Query evaluation is written against the [`Instance`] trait so that the
//! same evaluator runs over the base database `D` and over *support*
//! databases `D' ∈ S`, which are represented as the base plus a small
//! [`crate::Delta`] without ever copying the base tables.

use std::borrow::Cow;

use crate::relation::Tuple;
use crate::{Database, QdbError, Schema};

/// A read-only view of a database instance.
pub trait Instance {
    /// Schema of `table`.
    fn table_schema(&self, table: &str) -> Result<&Schema, QdbError>;

    /// Iterates the rows of `table`. Rows that are unchanged relative to an
    /// underlying base instance are borrowed; perturbed rows are owned.
    fn scan<'a>(
        &'a self,
        table: &str,
    ) -> Result<Box<dyn Iterator<Item = Cow<'a, Tuple>> + 'a>, QdbError>;

    /// Number of rows in `table`.
    fn table_len(&self, table: &str) -> Result<usize, QdbError>;
}

impl Instance for Database {
    fn table_schema(&self, table: &str) -> Result<&Schema, QdbError> {
        Ok(self.table(table)?.schema())
    }

    fn scan<'a>(
        &'a self,
        table: &str,
    ) -> Result<Box<dyn Iterator<Item = Cow<'a, Tuple>> + 'a>, QdbError> {
        let rel = self.table(table)?;
        Ok(Box::new(rel.rows().iter().map(Cow::Borrowed)))
    }

    fn table_len(&self, table: &str) -> Result<usize, QdbError> {
        Ok(self.table(table)?.len())
    }
}

/// The base instance is simply a borrowed [`Database`].
pub type BaseInstance<'a> = &'a Database;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnType, Relation, Value};

    fn db() -> Database {
        let mut rel = Relation::new(Schema::new(vec![("id", ColumnType::Int)]));
        rel.push(vec![Value::Int(1)]).unwrap();
        rel.push(vec![Value::Int(2)]).unwrap();
        let mut db = Database::new();
        db.add_table("T", rel);
        db
    }

    #[test]
    fn database_implements_instance() {
        let db = db();
        let inst: &dyn Instance = &db;
        assert_eq!(inst.table_len("T").unwrap(), 2);
        assert_eq!(inst.table_schema("T").unwrap().arity(), 1);
        let rows: Vec<_> = inst.scan("T").unwrap().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Int(1));
        assert!(inst.scan("missing").is_err());
        assert!(inst.table_len("missing").is_err());
    }
}
