//! Human-readable rendering of plans and relations.
//!
//! Used by the examples and the experiment harness to show what is being
//! priced; not used on any hot path.

use std::fmt::Write as _;

use crate::plan::{AggFunc, Aggregate};
use crate::{BinOp, Expr, Query, Relation};

/// Renders a relation as a bordered ASCII table (at most `max_rows` rows).
pub fn render_relation(rel: &Relation, max_rows: usize) -> String {
    let headers: Vec<String> = rel.schema().names().map(|s| s.to_string()).collect();
    let rows: Vec<Vec<String>> = rel
        .rows()
        .iter()
        .take(max_rows)
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect();

    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }

    let mut out = String::new();
    let sep = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, " {h:w$} |");
    }
    out.push('\n');
    sep(&mut out);
    for row in &rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, " {cell:w$} |");
        }
        out.push('\n');
    }
    sep(&mut out);
    if rel.len() > max_rows {
        let _ = writeln!(out, "... ({} rows total)", rel.len());
    }
    out
}

/// Renders an expression as SQL-ish text.
pub fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Col(c) => c.clone(),
        Expr::Lit(v) => match v {
            crate::Value::Str(s) => format!("'{s}'"),
            other => other.to_string(),
        },
        Expr::Binary { op, left, right } => {
            let o = match op {
                BinOp::Eq => "=",
                BinOp::Ne => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            };
            format!("({} {} {})", render_expr(left), o, render_expr(right))
        }
        Expr::Not(x) => format!("NOT ({})", render_expr(x)),
        Expr::Like { expr, pattern } => format!("{} LIKE '{}'", render_expr(expr), pattern),
        Expr::Between { expr, low, high } => format!(
            "{} BETWEEN {} AND {}",
            render_expr(expr),
            render_expr(low),
            render_expr(high)
        ),
        Expr::InList { expr, list } => {
            let items: Vec<String> = list.iter().map(|v| v.to_string()).collect();
            format!("{} IN ({})", render_expr(expr), items.join(", "))
        }
        Expr::IsNull(x) => format!("{} IS NULL", render_expr(x)),
    }
}

fn render_agg(a: &Aggregate) -> String {
    let f = match a.func {
        AggFunc::Count => "count",
        AggFunc::CountDistinct => "count_distinct",
        AggFunc::Sum => "sum",
        AggFunc::Avg => "avg",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    };
    match &a.column {
        Some(c) => format!("{f}({c}) AS {}", a.alias),
        None => format!("{f}(*) AS {}", a.alias),
    }
}

/// Renders a query plan as indented text (one operator per line).
pub fn render_plan(q: &Query) -> String {
    let mut out = String::new();
    render_plan_rec(q, 0, &mut out);
    out
}

fn render_plan_rec(q: &Query, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match q {
        Query::Scan { table } => {
            let _ = writeln!(out, "{pad}Scan {table}");
        }
        Query::Filter { input, predicate } => {
            let _ = writeln!(out, "{pad}Filter {}", render_expr(predicate));
            render_plan_rec(input, depth + 1, out);
        }
        Query::Project { input, exprs } => {
            let cols: Vec<String> = exprs
                .iter()
                .map(|(e, n)| format!("{} AS {}", render_expr(e), n))
                .collect();
            let _ = writeln!(out, "{pad}Project {}", cols.join(", "));
            render_plan_rec(input, depth + 1, out);
        }
        Query::Join { left, right, on } => {
            let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
            let _ = writeln!(out, "{pad}Join on {}", keys.join(" AND "));
            render_plan_rec(left, depth + 1, out);
            render_plan_rec(right, depth + 1, out);
        }
        Query::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let aggs_s: Vec<String> = aggs.iter().map(render_agg).collect();
            let _ = writeln!(
                out,
                "{pad}Aggregate [{}] group by [{}]",
                aggs_s.join(", "),
                group_by.join(", ")
            );
            render_plan_rec(input, depth + 1, out);
        }
        Query::Distinct { input } => {
            let _ = writeln!(out, "{pad}Distinct");
            render_plan_rec(input, depth + 1, out);
        }
        Query::Limit { input, n } => {
            let _ = writeln!(out, "{pad}Limit {n}");
            render_plan_rec(input, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggFunc, ColumnType, Expr, Query, Relation, Schema, Value};

    #[test]
    fn renders_relation_with_truncation() {
        let mut r = Relation::new(Schema::new(vec![
            ("id", ColumnType::Int),
            ("n", ColumnType::Str),
        ]));
        for i in 0..5 {
            r.push(vec![Value::Int(i), format!("row{i}").into()])
                .unwrap();
        }
        let s = render_relation(&r, 3);
        assert!(s.contains("id"));
        assert!(s.contains("row0"));
        assert!(!s.contains("row4"));
        assert!(s.contains("5 rows total"));
    }

    #[test]
    fn renders_expressions() {
        let e = Expr::col("age")
            .between(Expr::lit(10), Expr::lit(20))
            .and(Expr::col("name").like("A%"))
            .or(Expr::col("x")
                .in_list(vec![Value::Int(1), Value::Int(2)])
                .not());
        let s = render_expr(&e);
        assert!(s.contains("BETWEEN"));
        assert!(s.contains("LIKE"));
        assert!(s.contains("IN (1, 2)"));
        assert!(s.contains("NOT"));
        assert!(render_expr(&Expr::col("g").eq(Expr::lit("f"))).contains("'f'"));
        assert!(render_expr(&Expr::col("x").is_null()).contains("IS NULL"));
    }

    #[test]
    fn renders_plans() {
        let q = Query::scan("User")
            .join(Query::scan("Lang"), vec![("uid", "uid")])
            .filter(Expr::col("lang").eq(Expr::lit("en")))
            .aggregate(vec!["gender"], vec![(AggFunc::Count, None, "c")])
            .distinct()
            .limit(10);
        let s = render_plan(&q);
        assert!(s.contains("Scan User"));
        assert!(s.contains("Join on uid=uid"));
        assert!(s.contains("Aggregate"));
        assert!(s.contains("Distinct"));
        assert!(s.contains("Limit 10"));
        let proj = Query::scan("T").project(vec![(Expr::col("a").add(Expr::lit(1)), "a1")]);
        assert!(render_plan(&proj).contains("AS a1"));
    }
}
