//! Relation schemas.

use crate::QdbError;

/// Column data type. Types are advisory: the engine is dynamically typed at
/// the cell level, but schemas document intent and are used by the dataset
/// generators and pretty printer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new<S: Into<String>>(columns: Vec<(S, ColumnType)>) -> Self {
        Schema {
            columns: columns.into_iter().map(|(n, t)| (n.into(), t)).collect(),
        }
    }

    /// Empty schema (used for aggregate-only outputs before naming).
    pub fn empty() -> Self {
        Schema {
            columns: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    /// Column `(name, type)` pairs.
    pub fn columns(&self) -> &[(String, ColumnType)] {
        &self.columns
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, QdbError> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| QdbError::UnknownColumn(name.to_string()))
    }

    /// Type of column `idx`.
    pub fn column_type(&self, idx: usize) -> ColumnType {
        self.columns[idx].1
    }

    /// Name of column `idx`.
    pub fn column_name(&self, idx: usize) -> &str {
        &self.columns[idx].0
    }

    /// Appends a column and returns its index.
    pub fn push(&mut self, name: impl Into<String>, ty: ColumnType) -> usize {
        self.columns.push((name.into(), ty));
        self.columns.len() - 1
    }

    /// Concatenates two schemas (used by joins). Right-hand columns that
    /// collide with a left-hand name are prefixed with `prefix`.
    pub fn join(&self, other: &Schema, prefix: &str) -> Schema {
        let mut cols = self.columns.clone();
        for (n, t) in &other.columns {
            let name = if self.index_of(n).is_ok() {
                format!("{prefix}.{n}")
            } else {
                n.clone()
            };
            cols.push((name, *t));
        }
        Schema { columns: cols }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_lookup() {
        let s = Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Str)]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(matches!(s.index_of("z"), Err(QdbError::UnknownColumn(_))));
        assert_eq!(s.column_type(0), ColumnType::Int);
        assert_eq!(s.column_name(1), "b");
        assert_eq!(s.names().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn push_and_empty() {
        let mut s = Schema::empty();
        assert_eq!(s.arity(), 0);
        let i = s.push("x", ColumnType::Float);
        assert_eq!(i, 0);
        assert_eq!(s.arity(), 1);
    }

    #[test]
    fn join_prefixes_collisions() {
        let left = Schema::new(vec![("id", ColumnType::Int), ("name", ColumnType::Str)]);
        let right = Schema::new(vec![("id", ColumnType::Int), ("city", ColumnType::Str)]);
        let joined = left.join(&right, "r");
        assert_eq!(joined.arity(), 4);
        assert_eq!(joined.column_name(2), "r.id");
        assert_eq!(joined.column_name(3), "city");
    }
}
