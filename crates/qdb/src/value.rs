//! Typed cell values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single cell value.
///
/// `Value` implements total ordering, equality and hashing so that query
/// outputs can be canonicalized (sorted) and compared as multisets — the
/// operation at the heart of conflict-set computation. Floats are compared by
/// their IEEE-754 total order with `NaN` normalized to a single bit pattern.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Discriminant rank used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Interprets the value as a float for arithmetic/aggregation, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Interprets the value as an integer, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(if *b { 1 } else { 0 }),
            _ => None,
        }
    }

    /// Interprets the value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets the value as a boolean (SQL three-valued logic collapses to
    /// `false` for NULL).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            // float-eq: SQL truthiness is exact — only ±0.0 is falsy.
            Value::Float(f) => *f != 0.0,
            Value::Null => false,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Canonical float bits (NaN collapsed) used for hashing and equality.
    fn float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        // float-eq: detects ±0.0 exactly to normalize -0.0 to +0.0.
        } else if f == 0.0 {
            0u64
        } else {
            f.to_bits()
        }
    }

    /// Numeric comparison across Int/Float when types differ.
    fn numeric_cmp(&self, other: &Value) -> Option<Ordering> {
        let (a, b) = (self.as_f64()?, other.as_f64()?);
        a.partial_cmp(&b)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => Value::float_bits(*a) == Value::float_bits(*b),
            // Cross-type numeric equality (Int vs Float) mirrors SQL.
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints that are exactly representable hash like the equal float so
            // that cross-type equality is consistent with hashing.
            Value::Int(i) => {
                3u8.hash(state);
                Value::float_bits(*i as f64).hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                Value::float_bits(*f).hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Float(_), Value::Float(_))
            | (Value::Int(_), Value::Float(_))
            | (Value::Float(_), Value::Int(_)) => {
                self.numeric_cmp(other).unwrap_or(Ordering::Equal)
            }
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_within_types() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert_ne!(Value::Int(3), Value::Int(4));
        assert_eq!(Value::from("a"), Value::from("a"));
        assert_ne!(Value::from("a"), Value::from("b"));
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn cross_type_numeric_equality_consistent_with_hash() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
    }

    #[test]
    fn negative_zero_and_nan_normalization() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn ordering_is_total_and_sorts_types() {
        let mut vals = [
            Value::from("zebra"),
            Value::Int(5),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert!(matches!(vals[4], Value::Str(_)));
        // Numeric values interleave by magnitude.
        assert!(Value::Float(2.5) < Value::Int(5));
    }

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(2i32), Value::Int(2));
        assert_eq!(Value::from(2i64).as_f64(), Some(2.0));
        assert_eq!(Value::from(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from("x").as_f64(), None);
        assert_eq!(Value::Bool(true).as_i64(), Some(1));
        assert!(Value::Null.is_null());
        assert!(!Value::Null.is_truthy());
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::from("hi").to_string(), "hi");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }
}
