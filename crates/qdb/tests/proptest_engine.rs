//! Property-based tests for the relational engine.
//!
//! The key invariant for query pricing is that evaluating a query over a
//! lazily-overlaid [`DeltaInstance`] gives exactly the same answer (under bag
//! semantics) as evaluating it over a materialized copy of the perturbed
//! database — otherwise conflict sets, and therefore prices, would be wrong.

use proptest::prelude::*;
use qp_qdb::{
    AggFunc, ColumnType, Database, Delta, DeltaInstance, Expr, Query, Relation, Schema, Value,
};

/// A small random single-table database over (category: str, amount: int).
#[derive(Debug, Clone)]
struct SmallDb {
    rows: Vec<(u8, i64)>,
}

fn db_strategy() -> impl Strategy<Value = SmallDb> {
    proptest::collection::vec((0u8..4, -20i64..20), 1..24).prop_map(|rows| SmallDb { rows })
}

fn build(db: &SmallDb) -> Database {
    let schema = Schema::new(vec![
        ("category", ColumnType::Str),
        ("amount", ColumnType::Int),
    ]);
    let mut rel = Relation::new(schema);
    for (c, a) in &db.rows {
        rel.push(vec![format!("cat{c}").into(), Value::Int(*a)])
            .unwrap();
    }
    let mut out = Database::new();
    out.add_table("T", rel);
    out
}

/// A pool of representative query shapes exercised by the properties.
fn queries() -> Vec<Query> {
    vec![
        Query::scan("T"),
        Query::scan("T").filter(Expr::col("amount").ge(Expr::lit(0))),
        Query::scan("T")
            .filter(Expr::col("category").eq(Expr::lit("cat1")))
            .project_cols(&["amount"]),
        Query::scan("T").project_cols(&["category"]).distinct(),
        Query::scan("T").aggregate(
            vec![],
            vec![
                (AggFunc::Count, None, "c"),
                (AggFunc::Sum, Some("amount"), "s"),
                (AggFunc::Min, Some("amount"), "mn"),
                (AggFunc::Max, Some("amount"), "mx"),
            ],
        ),
        Query::scan("T").aggregate(
            vec!["category"],
            vec![
                (AggFunc::Count, None, "c"),
                (AggFunc::Avg, Some("amount"), "a"),
            ],
        ),
        Query::scan("T")
            .join(Query::scan("T"), vec![("category", "category")])
            .aggregate(vec![], vec![(AggFunc::Count, None, "c")]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn overlay_equals_materialized(
        db in db_strategy(),
        row_sel in 0usize..24,
        new_amount in -20i64..20,
        query_idx in 0usize..7,
    ) {
        let base = build(&db);
        let row = row_sel % db.rows.len();
        let delta = Delta::cell("T", row, 1, new_amount);
        let overlay = DeltaInstance::new(&base, &delta);
        let materialized = delta.materialize(&base).unwrap();

        let q = &queries()[query_idx];
        let a = q.evaluate(&overlay).unwrap();
        let b = q.evaluate(&materialized).unwrap();
        prop_assert!(a.same_answer(&b), "overlay and materialized answers differ");
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn noop_delta_never_changes_any_answer(
        db in db_strategy(),
        row_sel in 0usize..24,
        query_idx in 0usize..7,
    ) {
        let base = build(&db);
        let row = row_sel % db.rows.len();
        let existing = db.rows[row].1;
        let delta = Delta::cell("T", row, 1, existing);
        prop_assert!(delta.is_noop(&base).unwrap());
        let overlay = DeltaInstance::new(&base, &delta);
        let q = &queries()[query_idx];
        let a = q.evaluate(&base).unwrap();
        let b = q.evaluate(&overlay).unwrap();
        prop_assert!(a.same_answer(&b));
    }

    #[test]
    fn fingerprint_agrees_with_bag_equality(
        db1 in db_strategy(),
        db2 in db_strategy(),
        query_idx in 0usize..7,
    ) {
        let a = queries()[query_idx].evaluate(&build(&db1)).unwrap();
        let b = queries()[query_idx].evaluate(&build(&db2)).unwrap();
        if a.same_answer(&b) {
            prop_assert_eq!(a.fingerprint(), b.fingerprint());
        } else {
            // Fingerprint collisions are possible in principle but must not
            // occur on these tiny domains; treat one as a failure so we hear
            // about it.
            prop_assert_ne!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn filter_output_is_subset_and_monotone(
        db in db_strategy(),
        threshold in -20i64..20,
    ) {
        let base = build(&db);
        let all = Query::scan("T").evaluate(&base).unwrap();
        let filtered = Query::scan("T")
            .filter(Expr::col("amount").ge(Expr::lit(threshold)))
            .evaluate(&base)
            .unwrap();
        prop_assert!(filtered.len() <= all.len());
        let stricter = Query::scan("T")
            .filter(Expr::col("amount").ge(Expr::lit(threshold.saturating_add(5))))
            .evaluate(&base)
            .unwrap();
        prop_assert!(stricter.len() <= filtered.len());
    }

    #[test]
    fn group_counts_sum_to_table_size(db in db_strategy()) {
        let base = build(&db);
        let grouped = Query::scan("T")
            .aggregate(vec!["category"], vec![(AggFunc::Count, None, "c")])
            .evaluate(&base)
            .unwrap();
        let total: i64 = grouped.rows().iter().map(|r| r[1].as_i64().unwrap()).sum();
        prop_assert_eq!(total as usize, db.rows.len());
    }

    #[test]
    fn distinct_is_idempotent_and_no_larger(db in db_strategy()) {
        let base = build(&db);
        let once = Query::scan("T").project_cols(&["category"]).distinct().evaluate(&base).unwrap();
        let twice = Query::scan("T")
            .project_cols(&["category"])
            .distinct()
            .distinct()
            .evaluate(&base)
            .unwrap();
        prop_assert!(once.same_answer(&twice));
        prop_assert!(once.len() <= db.rows.len());
    }
}
