//! Block buffer recycling for hot quote paths.
//!
//! A quote batch builds one conflict [`ItemSet`] per query, hands the sets
//! to the caller inside quotes, and on the next tick does it all again.
//! Without recycling, every *spilled* set (more than
//! [`INLINE_BLOCKS`](crate::INLINE_BLOCKS) live blocks — inline sets never
//! allocate in the first place) costs a fresh `Vec<u64>` allocation per
//! batch per tick. [`BlockArena`] closes that loop, and [`QuoteScratch`]
//! bundles an arena with the batch-local containers (`sets`, `slots`) that
//! would otherwise also be reallocated each call.
//!
//! # Ownership contract
//!
//! The cycle has one producer and one consumer per arena:
//!
//! 1. the producer ([`BlockArena::take_set`]) pops a recycled buffer (or
//!    hands out a fresh inline set when the free list is empty), cleared
//!    and ready to fill;
//! 2. the batch fills the sets **in arrival order** and moves them onward
//!    (into quotes, demand windows, …) — the arena does not track sets in
//!    flight;
//! 3. whoever ends a set's life calls [`BlockArena::recycle`] (or a batch
//!    API that does, e.g. `Broker::recycle_quotes`) to return the spilled
//!    buffer. Dropping a set instead is always *safe* — the arena just
//!    allocates anew next time.
//!
//! The scratch containers (`sets`, `slots`) must be drained by the batch
//! that filled them before the next batch begins; the batch APIs do this
//! themselves.

use crate::ItemSet;

/// A free list of spilled `ItemSet` block buffers, reused across batches so
/// steady-state quote traffic performs no per-set heap allocation.
///
/// See the module docs for the ownership contract.
#[derive(Default)]
pub struct BlockArena {
    free: Vec<Vec<u64>>,
    reused: u64,
    fresh: u64,
}

impl BlockArena {
    /// An arena with an empty free list.
    pub fn new() -> BlockArena {
        BlockArena::default()
    }

    /// An empty set ready to fill: a recycled heap buffer when one is
    /// available, a fresh (allocation-free) inline set otherwise.
    #[inline]
    pub fn take_set(&mut self) -> ItemSet {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                self.reused += 1;
                ItemSet::from_heap_blocks(buf)
            }
            None => {
                self.fresh += 1;
                ItemSet::new()
            }
        }
    }

    /// Returns a dead set's spilled buffer to the free list. Inline sets
    /// (and zero-capacity buffers) carry no allocation worth keeping and
    /// are simply dropped.
    #[inline]
    pub fn recycle(&mut self, set: ItemSet) {
        if let Some(buf) = set.take_heap() {
            if buf.capacity() > 0 {
                self.free.push(buf);
            }
        }
    }

    /// Buffers currently parked in the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// How many [`take_set`](BlockArena::take_set) calls were served from
    /// the free list (allocation avoided).
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// How many [`take_set`](BlockArena::take_set) calls handed out a fresh
    /// inline set (no recycled buffer available — still allocation-free
    /// until the set spills).
    pub fn fresh(&self) -> u64 {
        self.fresh
    }
}

/// Per-batch scratch space for quote pipelines: a [`BlockArena`] plus the
/// reusable containers a batch fills and drains each call.
///
/// `sets` holds the batch's conflict sets in query order; `slots` backs the
/// parallel work-claiming ledger (`claim_map_into`), one `Option` per item.
/// Both are drained by the batch that filled them (module docs), so their
/// *capacity* is what persists across ticks.
#[derive(Default)]
pub struct QuoteScratch {
    /// Buffer recycling for the conflict sets themselves.
    pub arena: BlockArena,
    /// Batch output: one conflict set per query, in query order.
    pub sets: Vec<ItemSet>,
    /// Claim-ledger backing for parallel batches; always fully drained.
    pub slots: Vec<Option<ItemSet>>,
}

impl QuoteScratch {
    /// Empty scratch with an empty arena.
    pub fn new() -> QuoteScratch {
        QuoteScratch::default()
    }

    /// Recycles every set still parked in `sets` (a batch the caller chose
    /// not to consume) back into the arena.
    pub fn recycle_batch(&mut self) {
        for set in self.sets.drain(..) {
            self.arena.recycle(set);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_roundtrip_reuses_spilled_buffers() {
        let mut arena = BlockArena::new();
        let mut s = arena.take_set();
        assert_eq!(arena.fresh(), 1);
        s.insert(500); // force a spill
        assert!(!s.is_inline());
        arena.recycle(s);
        assert_eq!(arena.free_len(), 1);
        let s2 = arena.take_set();
        assert_eq!(arena.reused(), 1);
        assert!(s2.is_empty(), "recycled sets come back cleared");
        assert!(!s2.is_inline(), "recycled sets keep their heap buffer");
    }

    #[test]
    fn inline_sets_recycle_to_nothing() {
        let mut arena = BlockArena::new();
        let mut s = arena.take_set();
        s.insert(3); // stays inline — no allocation to keep
        arena.recycle(s);
        assert_eq!(arena.free_len(), 0);
    }

    #[test]
    fn recycled_sets_behave_like_fresh_ones() {
        let mut arena = BlockArena::new();
        let mut s = arena.take_set();
        s.extend([1usize, 70, 400]);
        let want: ItemSet = [1usize, 70].into_iter().collect();
        arena.recycle(s);
        let mut s = arena.take_set();
        s.extend([1usize, 70]);
        assert_eq!(s, want, "repr never leaks into set semantics");
        assert_eq!(s.stable_hash(), want.stable_hash());
    }

    #[test]
    fn scratch_recycle_batch_drains_sets_into_the_arena() {
        let mut scratch = QuoteScratch::new();
        for base in [0usize, 200] {
            let mut s = scratch.arena.take_set();
            s.extend([base, base + 300]); // both spill (items ≥ 128)
            scratch.sets.push(s);
        }
        scratch.recycle_batch();
        assert!(scratch.sets.is_empty());
        assert_eq!(scratch.arena.free_len(), 2);
    }
}
