//! # qp-core — core data structures of the query-pricing workspace
//!
//! The whole pipeline of *Revenue Maximization for Query Pricing* operates on
//! subsets of the `n` support databases: conflict sets `C_S(Q, D)` are such
//! subsets, hyperedges of the bundle hypergraph are such subsets, and every
//! pricing algorithm unions, intersects, and counts them in its inner loops.
//! [`ItemSet`] is the one representation they all share: a compact bitset
//! over item indices (u64 blocks) with O(1) membership, popcount-based size,
//! and block-wise set algebra — `union`, `intersect`, `difference`,
//! `is_subset` — that runs at 64 items per machine word.
//!
//! Because these ops are the product's hot path (every quote builds and
//! consumes conflict sets), the crate carries the performance kernels too:
//!
//! * [`set`](ItemSet) — inline small-set representation (1–2 blocks without
//!   heap allocation, spilling transparently) plus single-block fast paths
//!   and chunked autovectorization-friendly loops;
//! * [`arena`](BlockArena) — [`BlockArena`]/[`QuoteScratch`] recycle spilled
//!   block buffers and batch containers across quote batches;
//! * [`mod@reference`] — the scalar, allocate-per-call kernels kept as the
//!   differential-test oracle and benchmark baseline;
//! * [`ring`](RingBuffer) — the bounded overwrite-oldest buffer backing
//!   per-thread telemetry journals and other fixed-size histories;
//! * [`codec`] — CRC-32 and the little-endian byte-cursor primitives the
//!   `qp-store` WAL/snapshot record formats are framed with.

mod arena;
pub mod codec;
pub mod reference;
mod ring;
mod set;

pub use arena::{BlockArena, QuoteScratch};
pub use ring::RingBuffer;
pub use set::{ItemSet, Iter, INLINE_BLOCKS};
