//! # qp-core — core data structures of the query-pricing workspace
//!
//! The whole pipeline of *Revenue Maximization for Query Pricing* operates on
//! subsets of the `n` support databases: conflict sets `C_S(Q, D)` are such
//! subsets, hyperedges of the bundle hypergraph are such subsets, and every
//! pricing algorithm unions, intersects, and counts them in its inner loops.
//! [`ItemSet`] is the one representation they all share: a compact bitset
//! over item indices (u64 blocks) with O(1) membership, popcount-based size,
//! and block-wise set algebra — `union`, `intersect`, `difference`,
//! `is_subset` — that runs at 64 items per machine word.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

const BLOCK_BITS: usize = 64;

/// A set of item indices (support-database ids), stored as a bitset.
///
/// Items are `usize` indices; membership of item `i` is bit `i % 64` of
/// block `i / 64`. The representation maintains the invariant that the
/// highest block is non-zero (no trailing zero blocks), so structural
/// equality (`==`, `Hash`) coincides with set equality.
///
/// Iteration ([`ItemSet::iter`]) yields items in increasing order, matching
/// the sorted `Vec<usize>` representation this type replaced.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct ItemSet {
    blocks: Vec<u64>,
}

/// Block-wise hashing. Because the representation never stores trailing
/// zero blocks (see [`ItemSet`]), hashing the block vector directly gives
/// `a == b ⇒ hash(a) == hash(b)` regardless of how the two sets were built
/// (insert order, removals, set algebra). Keyed collections
/// (`HashMap<ItemSet, _>` quote caches, dedup sets) rely on this.
impl Hash for ItemSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.blocks.hash(state);
    }
}

impl PartialOrd for ItemSet {
    fn partial_cmp(&self, other: &ItemSet) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Orders sets by their value as a big-endian bitset integer: block count
/// first (the top block is never zero, so more blocks means a larger
/// number), then blocks from most to least significant.
///
/// Equivalently: `a < b` iff the largest item in the symmetric difference
/// belongs to `b`. This order is **consistent with subset**: `a ⊆ b`
/// implies `a ≤ b` (dropping bits can only decrease the integer), which is
/// what sorted containers of bundles (e.g. `BTreeMap` price tables) need to
/// agree with the pricing functions' monotonicity direction.
impl Ord for ItemSet {
    fn cmp(&self, other: &ItemSet) -> Ordering {
        self.blocks
            .len()
            .cmp(&other.blocks.len())
            .then_with(|| self.blocks.iter().rev().cmp(other.blocks.iter().rev()))
    }
}

impl ItemSet {
    /// Creates an empty set.
    pub fn new() -> ItemSet {
        ItemSet { blocks: Vec::new() }
    }

    /// Creates an empty set with room for items `0..n` without reallocating.
    pub fn with_capacity(n: usize) -> ItemSet {
        ItemSet {
            blocks: Vec::with_capacity(n.div_ceil(BLOCK_BITS)),
        }
    }

    /// Inserts `item`; returns `true` if it was not already present.
    pub fn insert(&mut self, item: usize) -> bool {
        let (block, bit) = (item / BLOCK_BITS, item % BLOCK_BITS);
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        fresh
    }

    /// Removes `item`; returns `true` if it was present.
    pub fn remove(&mut self, item: usize) -> bool {
        let (block, bit) = (item / BLOCK_BITS, item % BLOCK_BITS);
        if block >= self.blocks.len() {
            return false;
        }
        let mask = 1u64 << bit;
        let present = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        self.normalize();
        present
    }

    /// Whether `item` is in the set.
    pub fn contains(&self, item: usize) -> bool {
        self.blocks
            .get(item / BLOCK_BITS)
            .is_some_and(|b| b & (1u64 << (item % BLOCK_BITS)) != 0)
    }

    /// Number of items in the set (popcount over the blocks).
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True if the set has no items.
    pub fn is_empty(&self) -> bool {
        // The no-trailing-zero-blocks invariant makes this O(1).
        self.blocks.is_empty()
    }

    /// The largest item, if any.
    pub fn max_item(&self) -> Option<usize> {
        let last = *self.blocks.last()?;
        Some(
            (self.blocks.len() - 1) * BLOCK_BITS + (BLOCK_BITS - 1 - last.leading_zeros() as usize),
        )
    }

    /// Iterates the items in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// The items as a sorted `Vec` (the legacy representation).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// The union `self ∪ other`.
    pub fn union(&self, other: &ItemSet) -> ItemSet {
        let mut out = if self.blocks.len() >= other.blocks.len() {
            self.clone()
        } else {
            other.clone()
        };
        let shorter = if self.blocks.len() >= other.blocks.len() {
            &other.blocks
        } else {
            &self.blocks
        };
        for (dst, src) in out.blocks.iter_mut().zip(shorter) {
            *dst |= src;
        }
        out
    }

    /// The intersection `self ∩ other`.
    pub fn intersection(&self, other: &ItemSet) -> ItemSet {
        let mut out = ItemSet {
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a & b)
                .collect(),
        };
        out.normalize();
        out
    }

    /// The difference `self \ other`.
    pub fn difference(&self, other: &ItemSet) -> ItemSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// In-place union: `self ∪= other`.
    pub fn union_with(&mut self, other: &ItemSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (dst, src) in self.blocks.iter_mut().zip(&other.blocks) {
            *dst |= src;
        }
    }

    /// In-place intersection: `self ∩= other`.
    pub fn intersect_with(&mut self, other: &ItemSet) {
        self.blocks.truncate(other.blocks.len());
        for (dst, src) in self.blocks.iter_mut().zip(&other.blocks) {
            *dst &= src;
        }
        self.normalize();
    }

    /// In-place difference: `self \= other`.
    pub fn difference_with(&mut self, other: &ItemSet) {
        for (dst, src) in self.blocks.iter_mut().zip(&other.blocks) {
            *dst &= !src;
        }
        self.normalize();
    }

    /// `|self ∩ other|` without materializing the intersection.
    pub fn intersection_len(&self, other: &ItemSet) -> usize {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &ItemSet) -> bool {
        if self.blocks.len() > other.blocks.len() {
            return false; // invariant: the top block is non-zero
        }
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether `self ∩ other = ∅`.
    pub fn is_disjoint(&self, other: &ItemSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// The subset of items `< k` (used to restrict a hypergraph to a support
    /// prefix). O(k/64) regardless of set size.
    pub fn restricted_below(&self, k: usize) -> ItemSet {
        let full_blocks = k / BLOCK_BITS;
        let mut blocks: Vec<u64> = self.blocks.iter().take(full_blocks + 1).copied().collect();
        if let Some(partial) = blocks.get_mut(full_blocks) {
            *partial &= (1u64 << (k % BLOCK_BITS)) - 1; // k % 64 == 0 masks to 0
        }
        let mut out = ItemSet { blocks };
        out.normalize();
        out
    }

    /// The raw u64 blocks, least-significant first, with no trailing zero
    /// block. This is the set's canonical wire form: two equal sets expose
    /// identical block slices.
    pub fn as_blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Rebuilds a set from raw blocks (e.g. decoded off the wire). Trailing
    /// zero blocks are dropped, so the result upholds the representation
    /// invariant no matter what the peer sent.
    pub fn from_blocks(mut blocks: Vec<u64>) -> ItemSet {
        while blocks.last() == Some(&0) {
            blocks.pop();
        }
        ItemSet { blocks }
    }

    /// A process- and platform-independent 64-bit hash (FNV-1a over the
    /// block bytes, least-significant block first).
    ///
    /// `std::hash::Hash` goes through `RandomState`, which is seeded per
    /// process; shard routing and on-disk artifacts need the *same* bundle
    /// to land on the same shard across runs and across the client/server
    /// boundary, which this provides. Equal sets always agree (the
    /// representation stores no trailing zero blocks).
    pub fn stable_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for &block in &self.blocks {
            for byte in block.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        h
    }

    /// Drops trailing zero blocks, restoring the representation invariant.
    fn normalize(&mut self) {
        while self.blocks.last() == Some(&0) {
            self.blocks.pop();
        }
    }
}

impl fmt::Debug for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for ItemSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> ItemSet {
        let mut set = ItemSet::new();
        set.extend(iter);
        set
    }
}

impl Extend<usize> for ItemSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for item in iter {
            self.insert(item);
        }
    }
}

impl From<&[usize]> for ItemSet {
    fn from(items: &[usize]) -> ItemSet {
        items.iter().copied().collect()
    }
}

impl<'a> IntoIterator for &'a ItemSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Ascending iterator over the items of an [`ItemSet`].
pub struct Iter<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear the lowest set bit
        Some(self.block_idx * BLOCK_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len_roundtrip() {
        let mut s = ItemSet::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(s.insert(64));
        assert!(s.insert(0));
        assert!(!s.insert(5), "re-inserting reports not-fresh");
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(5) && s.contains(64));
        assert!(!s.contains(1) && !s.contains(63) && !s.contains(1000));
        assert_eq!(s.to_vec(), vec![0, 5, 64]);
        assert_eq!(s.max_item(), Some(64));
    }

    #[test]
    fn remove_restores_the_invariant() {
        let mut s: ItemSet = [3usize, 200].into_iter().collect();
        assert!(s.remove(200));
        assert!(!s.remove(200));
        // The trailing blocks of item 200 are gone, so equality with a
        // freshly built singleton holds structurally.
        assert_eq!(s, [3usize].into_iter().collect());
        assert!(s.remove(3));
        assert!(s.is_empty());
        assert_eq!(s.max_item(), None);
    }

    #[test]
    fn set_algebra_on_cross_block_sets() {
        let a: ItemSet = [0usize, 63, 64, 100].into_iter().collect();
        let b: ItemSet = [63usize, 100, 300].into_iter().collect();
        assert_eq!(a.union(&b).to_vec(), vec![0, 63, 64, 100, 300]);
        assert_eq!(a.intersection(&b).to_vec(), vec![63, 100]);
        assert_eq!(a.difference(&b).to_vec(), vec![0, 64]);
        assert_eq!(b.difference(&a).to_vec(), vec![300]);
        assert_eq!(a.intersection_len(&b), 2);
        assert!(!a.is_subset(&b));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersection(&b).is_subset(&b));
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
    }

    #[test]
    fn in_place_ops_match_pure_ops() {
        let a: ItemSet = [1usize, 70, 128].into_iter().collect();
        let b: ItemSet = [70usize, 129].into_iter().collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, a.union(&b));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, a.intersection(&b));
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d, a.difference(&b));
    }

    #[test]
    fn restricted_below_is_a_prefix_filter() {
        let s: ItemSet = [0usize, 63, 64, 65, 200].into_iter().collect();
        assert_eq!(s.restricted_below(65).to_vec(), vec![0, 63, 64]);
        assert_eq!(s.restricted_below(64).to_vec(), vec![0, 63]);
        assert_eq!(s.restricted_below(0).to_vec(), Vec::<usize>::new());
        assert_eq!(s.restricted_below(1000), s);
    }

    #[test]
    fn iteration_is_ascending_and_debug_prints_items() {
        let s: ItemSet = [9usize, 2, 130, 2].into_iter().collect();
        let items: Vec<usize> = (&s).into_iter().collect();
        assert_eq!(items, vec![2, 9, 130]);
        assert_eq!(format!("{s:?}"), "{2, 9, 130}");
    }

    #[test]
    fn equal_sets_hash_equal_regardless_of_history() {
        use std::collections::hash_map::DefaultHasher;
        let hash_of = |s: &ItemSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        let direct: ItemSet = [1usize, 64, 130].into_iter().collect();
        // Same set reached through inserts beyond block 2 and removals that
        // must drop the trailing blocks again.
        let mut via_removal: ItemSet = [130usize, 64, 1, 500].into_iter().collect();
        via_removal.remove(500);
        assert_eq!(direct, via_removal);
        assert_eq!(hash_of(&direct), hash_of(&via_removal));
        assert_eq!(direct.stable_hash(), via_removal.stable_hash());
        assert_ne!(
            direct.stable_hash(),
            ItemSet::new().stable_hash(),
            "distinct sets should (overwhelmingly) hash apart"
        );
    }

    #[test]
    fn ord_is_the_bitset_integer_order() {
        let lo: ItemSet = [0usize, 1].into_iter().collect(); // value 3
        let hi: ItemSet = [64usize].into_iter().collect(); // value 2^64
        assert!(lo < hi, "more blocks wins");
        let a: ItemSet = [0usize, 5].into_iter().collect();
        let b: ItemSet = [5usize].into_iter().collect();
        assert!(b < a, "same top item, extra low bit breaks the tie upward");
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        // Subset consistency: a ⊆ b ⇒ a ≤ b.
        assert!(b.is_subset(&a) && b <= a);
        assert!(ItemSet::new() <= b);
    }

    #[test]
    fn blocks_roundtrip_and_normalize_on_decode() {
        let s: ItemSet = [3usize, 64, 200].into_iter().collect();
        assert_eq!(ItemSet::from_blocks(s.as_blocks().to_vec()), s);
        // A peer that pads with trailing zero blocks still decodes to the
        // canonical representation.
        let mut padded = s.as_blocks().to_vec();
        padded.extend([0, 0]);
        assert_eq!(ItemSet::from_blocks(padded), s);
        assert_eq!(ItemSet::from_blocks(vec![0, 0]), ItemSet::new());
        assert!(ItemSet::new().as_blocks().is_empty());
    }

    #[test]
    fn empty_set_edge_cases() {
        let e = ItemSet::new();
        assert!(e.is_subset(&e));
        assert!(e.is_disjoint(&e));
        assert_eq!(e.union(&e), e);
        assert_eq!(e.intersection_len(&e), 0);
        let s: ItemSet = [7usize].into_iter().collect();
        assert!(e.is_subset(&s));
        assert!(!s.is_subset(&e));
    }
}
