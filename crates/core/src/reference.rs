//! Scalar reference kernels: the pre-optimization, one-block-at-a-time
//! implementations of the [`ItemSet`] algebra, kept
//! verbatim as the ground truth the fast paths are measured against.
//!
//! Two consumers:
//!
//! * the differential proptests (`crates/core/tests/differential_kernels.rs`)
//!   assert every fast-path kernel (inline representation, single-block
//!   early exits, 4-blocks-per-iteration chunked loops) is **bit-identical**
//!   to these functions on arbitrary inputs;
//! * `bench_kernels` uses them as the *before* rows of
//!   `BENCH_kernels.json`.
//!
//! These run at the old speed on purpose — they allocate a fresh `Vec<u64>`
//! per call (as the original implementation did) and never take the inline
//! or chunked paths. Do not "fix" them.

use crate::ItemSet;

/// Reference `a ∪ b`: clone the longer operand's blocks, OR the shorter in.
pub fn union(a: &ItemSet, b: &ItemSet) -> ItemSet {
    let (long, short) = if a.as_blocks().len() >= b.as_blocks().len() {
        (a.as_blocks(), b.as_blocks())
    } else {
        (b.as_blocks(), a.as_blocks())
    };
    let mut blocks = long.to_vec();
    for (dst, src) in blocks.iter_mut().zip(short) {
        *dst |= *src;
    }
    ItemSet::from_heap_blocks(blocks)
}

/// Reference `a ∩ b`: zip-map-collect over the common prefix.
pub fn intersection(a: &ItemSet, b: &ItemSet) -> ItemSet {
    let blocks: Vec<u64> = a
        .as_blocks()
        .iter()
        .zip(b.as_blocks())
        .map(|(x, y)| x & y)
        .collect();
    ItemSet::from_heap_blocks(blocks)
}

/// Reference `a \ b`: clone `a`, mask `b` out blockwise.
pub fn difference(a: &ItemSet, b: &ItemSet) -> ItemSet {
    let mut blocks = a.as_blocks().to_vec();
    for (dst, src) in blocks.iter_mut().zip(b.as_blocks()) {
        *dst &= !*src;
    }
    ItemSet::from_heap_blocks(blocks)
}

/// Reference `|a ∩ b|`: single zip-popcount pass, one block per iteration.
pub fn intersection_len(a: &ItemSet, b: &ItemSet) -> usize {
    a.as_blocks()
        .iter()
        .zip(b.as_blocks())
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// Reference `a ⊆ b`: block-count check, then per-block stray-bit test.
pub fn is_subset(a: &ItemSet, b: &ItemSet) -> bool {
    let (a, b) = (a.as_blocks(), b.as_blocks());
    if a.len() > b.len() {
        return false;
    }
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

/// Reference `a ∩ b = ∅`: per-block overlap test.
pub fn is_disjoint(a: &ItemSet, b: &ItemSet) -> bool {
    a.as_blocks()
        .iter()
        .zip(b.as_blocks())
        .all(|(x, y)| x & y == 0)
}
