//! Fixed-capacity overwrite-oldest ring buffer.
//!
//! The telemetry journal needs a bounded event log that never reallocates
//! once warm and never blocks the writer: when full, a push evicts the
//! oldest entry. This is that structure, kept generic in qp-core because
//! it is a plain data-structure concern (no atomics, no clocks) and other
//! bounded-history consumers (demand windows, exemplar stores) share the
//! shape.
//!
//! Iteration order is oldest → newest, which is the order a human reads a
//! trace in.

/// A bounded FIFO that overwrites its oldest element when full.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    /// Backing storage; grows up to `cap` and then stays put.
    buf: Vec<T>,
    /// Maximum number of live elements.
    cap: usize,
    /// Index of the next write once `buf` has reached capacity.
    head: usize,
}

impl<T> RingBuffer<T> {
    /// An empty buffer holding at most `cap` elements.
    ///
    /// # Panics
    /// If `cap == 0` — a zero-capacity ring cannot hold a push.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "RingBuffer capacity must be positive");
        RingBuffer {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
        }
    }

    /// Number of live elements (at most `capacity()`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no element has been pushed yet (or since `clear`).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed bound the buffer was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends `value`, evicting the oldest element if the buffer is full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() < self.cap {
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Drops all elements; capacity is retained.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (newer, older) = self.buf.split_at(self.head);
        older.iter().chain(newer.iter())
    }
}

impl<T: Clone> RingBuffer<T> {
    /// The live elements, oldest first, as a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut r = RingBuffer::new(3);
        assert!(r.is_empty());
        r.push(1);
        r.push(2);
        assert_eq!(r.to_vec(), vec![1, 2]);
        r.push(3);
        r.push(4); // evicts 1
        r.push(5); // evicts 2
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.to_vec(), vec![3, 4, 5]);
    }

    #[test]
    fn wraps_repeatedly_in_push_order() {
        let mut r = RingBuffer::new(4);
        for i in 0..23 {
            r.push(i);
        }
        assert_eq!(r.to_vec(), vec![19, 20, 21, 22]);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut r = RingBuffer::new(2);
        r.push("a");
        r.push("b");
        r.push("c");
        r.clear();
        assert!(r.is_empty());
        r.push("d");
        assert_eq!(r.to_vec(), vec!["d"]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = RingBuffer::<u8>::new(0);
    }
}
