//! Byte-level record codec primitives shared by the durability layer.
//!
//! The WAL and snapshot formats of `qp-store` are built from three pieces
//! that live here, next to the other core data structures, so any crate can
//! frame records without pulling in the store itself:
//!
//! * little-endian `put_*` appenders and a bounds-checked [`ByteReader`]
//!   cursor (floats travel as raw bit patterns — the durability contract is
//!   *bit-identical* revenue after recovery, so no float ever goes through
//!   a decimal round-trip);
//! * [`crc32`], the CRC-32/ISO-HDLC checksum (the IEEE 802.3 polynomial,
//!   reflected, init/xorout `0xFFFF_FFFF`) used to frame every record;
//! * [`CodecError`], the one error type decoding can produce — corruption
//!   is data, not a panic.
//!
//! The checksum is table-driven (256-entry table built in a `const fn` at
//! compile time): no runtime initialisation, no dependency, and ~1 B/cycle
//! throughput — far faster than the record encode it guards.

use std::fmt;

/// CRC-32/ISO-HDLC lookup table, one entry per byte value, built at compile
/// time from the reflected IEEE 802.3 polynomial `0xEDB8_8320`.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32/ISO-HDLC ("the" CRC-32: zlib, PNG, Ethernet) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Why a decode failed. Corrupt bytes are an expected input for a recovery
/// path, so every failure mode is a value, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the field that was being read.
    Truncated,
    /// Bytes remained after the decoder consumed a complete value.
    Trailing,
    /// A tag byte named no known variant.
    BadTag(u8),
    /// A length or count field exceeded the decoder's sanity bound.
    BadLength(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record truncated mid-field"),
            CodecError::Trailing => write!(f, "trailing bytes after record"),
            CodecError::BadTag(t) => write!(f, "unknown record tag {t:#04x}"),
            CodecError::BadLength(n) => write!(f, "implausible length field {n}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends `v` to `buf` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` to `buf` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends the raw bit pattern of `v` — the exact `f64` round-trips.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Bounds-checked little-endian cursor over an immutable byte slice.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let bytes = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a bit pattern written by [`put_f64`].
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a count field and sanity-checks it against the bytes actually
    /// left, assuming each element needs at least `min_elem_bytes`: a
    /// corrupt length can claim 2^60 elements, and the check turns that
    /// into a [`CodecError::BadLength`] instead of an OOM `Vec` reserve.
    pub fn checked_count(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u64()?;
        let bound = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if n > bound {
            return Err(CodecError::BadLength(n));
        }
        Ok(n as usize)
    }

    /// Asserts the record was consumed exactly.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::Trailing);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        // float-eq: bit-pattern comparison is the round-trip contract
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        r.finish().unwrap();
    }

    #[test]
    fn reader_reports_truncation_and_trailing() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u64(), Err(CodecError::Truncated));
        assert_eq!(r.u32().unwrap(), 7);
        let mut r = ByteReader::new(&[1, 2, 3]);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(CodecError::Trailing));
    }

    #[test]
    fn checked_count_rejects_implausible_lengths() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX / 2);
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.checked_count(8), Err(CodecError::BadLength(_))));
    }
}
