//! The [`ItemSet`] bitset and its cache-hot kernels.
//!
//! # Representation: inline small sets, transparent heap spill
//!
//! Most conflict sets in the paper's workloads touch few support databases,
//! so the common case is a set whose highest item fits in one or two u64
//! blocks (items `0..128`). [`ItemSet`] therefore stores up to
//! [`INLINE_BLOCKS`] blocks **inline** (SmallVec-style, no heap allocation)
//! and spills to a `Vec<u64>` only when an item ≥ 128 arrives:
//!
//! ```text
//!   Inline { len: 0..=2, blocks: [u64; 2] }   items 0..128, zero allocs
//!   Heap(Vec<u64>)                            any items, one allocation
//! ```
//!
//! The spill is one-way within a set's lifetime ([`ItemSet::clear`] and the
//! shrinking operators keep a spilled set's buffer so it can be refilled
//! allocation-free; `qp_core::BlockArena` recycles the buffers across
//! sets), but **never observable**: every comparison, hash, and ordering
//! goes through the logical block slice ([`ItemSet::as_blocks`]), so an
//! inline set and a heap set holding the same items are equal, hash equal
//! (both `std::hash::Hash` and [`ItemSet::stable_hash`]), and compare equal
//! — the representation-independence the quote caches and shard router
//! rely on.
//!
//! Both representations maintain the canonical-form invariant: **no
//! trailing zero blocks** (inline: `blocks[len..]` is all zero and
//! `blocks[len-1] != 0` when `len > 0`; heap: the last block is non-zero).
//!
//! # Kernels
//!
//! The set algebra has two tiers, both bit-identical to the scalar
//! reference implementations in [`crate::reference`] (the differential
//! proptests in `tests/differential_kernels.rs` pin this):
//!
//! * **small paths** — operands within the inline capacity (plus
//!   single-block early exits for the query kernels) run fixed-size loops
//!   with no allocation at all;
//! * **chunked loops** — larger operands process four blocks per iteration
//!   with independent accumulators, the shape LLVM autovectorizes.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

pub(crate) const BLOCK_BITS: usize = 64;

/// Blocks stored without heap allocation; items `0..INLINE_BLOCKS * 64`
/// never spill.
pub const INLINE_BLOCKS: usize = 2;

/// A set of item indices (support-database ids), stored as a bitset.
///
/// Items are `usize` indices; membership of item `i` is bit `i % 64` of
/// block `i / 64`. Sets whose blocks fit [`INLINE_BLOCKS`] are stored
/// inline without heap allocation and spill transparently (see the module
/// docs). The representation maintains the invariant that the highest
/// stored block is non-zero (no trailing zero blocks), so logical equality
/// over [`ItemSet::as_blocks`] (`==`, `Hash`, `Ord`,
/// [`ItemSet::stable_hash`]) coincides with set equality regardless of
/// which representation holds the blocks.
///
/// Iteration ([`ItemSet::iter`]) yields items in increasing order, matching
/// the sorted `Vec<usize>` representation this type replaced.
#[derive(Clone)]
pub struct ItemSet {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    /// Up to [`INLINE_BLOCKS`] blocks, no heap. `blocks[len..]` is all
    /// zero; `blocks[len - 1]` is non-zero when `len > 0`.
    Inline {
        len: u8,
        blocks: [u64; INLINE_BLOCKS],
    },
    /// Spilled storage; the last block is non-zero. A heap set may hold
    /// fewer than `INLINE_BLOCKS` live blocks (after removals or a
    /// [`ItemSet::clear`]) — the buffer is kept so refills stay
    /// allocation-free.
    Heap(Vec<u64>),
}

impl Default for ItemSet {
    fn default() -> ItemSet {
        ItemSet::new()
    }
}

impl PartialEq for ItemSet {
    #[inline]
    fn eq(&self, other: &ItemSet) -> bool {
        self.as_blocks() == other.as_blocks()
    }
}

impl Eq for ItemSet {}

/// Hashing over the logical block slice. Because neither representation
/// stores trailing zero blocks (see [`ItemSet`]), hashing `as_blocks()`
/// gives `a == b ⇒ hash(a) == hash(b)` regardless of how the two sets were
/// built (insert order, removals, set algebra, inline vs spilled). Keyed
/// collections (`HashMap<ItemSet, _>` quote caches, dedup sets) rely on
/// this.
impl Hash for ItemSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_blocks().hash(state);
    }
}

impl PartialOrd for ItemSet {
    fn partial_cmp(&self, other: &ItemSet) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Orders sets by their value as a big-endian bitset integer: block count
/// first (the top block is never zero, so more blocks means a larger
/// number), then blocks from most to least significant.
///
/// Equivalently: `a < b` iff the largest item in the symmetric difference
/// belongs to `b`. This order is **consistent with subset**: `a ⊆ b`
/// implies `a ≤ b` (dropping bits can only decrease the integer), which is
/// what sorted containers of bundles (e.g. `BTreeMap` price tables) need to
/// agree with the pricing functions' monotonicity direction.
impl Ord for ItemSet {
    fn cmp(&self, other: &ItemSet) -> Ordering {
        let (a, b) = (self.as_blocks(), other.as_blocks());
        a.len()
            .cmp(&b.len())
            .then_with(|| a.iter().rev().cmp(b.iter().rev()))
    }
}

impl ItemSet {
    /// Creates an empty set (inline, no allocation).
    #[inline]
    pub fn new() -> ItemSet {
        ItemSet {
            repr: Repr::Inline {
                len: 0,
                blocks: [0; INLINE_BLOCKS],
            },
        }
    }

    /// Creates an empty set with room for items `0..n` without reallocating.
    /// Capacities within the inline range stay inline (and allocate
    /// nothing).
    pub fn with_capacity(n: usize) -> ItemSet {
        let blocks = n.div_ceil(BLOCK_BITS);
        if blocks <= INLINE_BLOCKS {
            ItemSet::new()
        } else {
            ItemSet {
                repr: Repr::Heap(Vec::with_capacity(blocks)),
            }
        }
    }

    /// An inline set from a fixed block array (trailing zeros trimmed by
    /// construction of `len`).
    #[inline]
    fn inline_from(blocks: [u64; INLINE_BLOCKS]) -> ItemSet {
        let mut len = INLINE_BLOCKS as u8;
        while len > 0 && blocks[len as usize - 1] == 0 {
            len -= 1;
        }
        ItemSet {
            repr: Repr::Inline { len, blocks },
        }
    }

    /// A heap-backed set from raw blocks, normalizing trailing zeros but
    /// **keeping the heap representation** even when the result would fit
    /// inline — the constructor arena recycling and the scalar reference
    /// kernels use so spilled buffers survive.
    pub(crate) fn from_heap_blocks(mut blocks: Vec<u64>) -> ItemSet {
        while blocks.last() == Some(&0) {
            blocks.pop();
        }
        ItemSet {
            repr: Repr::Heap(blocks),
        }
    }

    /// The spilled buffer, if this set has one (empty or not).
    pub(crate) fn take_heap(self) -> Option<Vec<u64>> {
        match self.repr {
            Repr::Heap(v) => Some(v),
            Repr::Inline { .. } => None,
        }
    }

    /// Whether the blocks are stored inline (no heap allocation). Exposed
    /// for representation tests and allocation accounting; never affects
    /// observable set behavior.
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// Moves an inline representation to the heap with room for
    /// `min_blocks`.
    fn spill(&mut self, min_blocks: usize) {
        if let Repr::Inline { len, blocks } = &self.repr {
            let (len, blocks) = (*len as usize, *blocks);
            let mut v = Vec::with_capacity(min_blocks.max(INLINE_BLOCKS));
            v.extend_from_slice(&blocks[..len]);
            self.repr = Repr::Heap(v);
        }
    }

    /// Inserts `item`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, item: usize) -> bool {
        let (block, bit) = (item / BLOCK_BITS, item % BLOCK_BITS);
        let mask = 1u64 << bit;
        match &mut self.repr {
            Repr::Inline { len, blocks } if block < INLINE_BLOCKS => {
                let fresh = blocks[block] & mask == 0;
                blocks[block] |= mask;
                *len = (*len).max(block as u8 + 1);
                return fresh;
            }
            Repr::Inline { .. } => self.spill(block + 1),
            Repr::Heap(_) => {}
        }
        let Repr::Heap(v) = &mut self.repr else {
            unreachable!("spill always lands on the heap representation")
        };
        if block >= v.len() {
            v.resize(block + 1, 0);
        }
        let fresh = v[block] & mask == 0;
        v[block] |= mask;
        fresh
    }

    /// Removes `item`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, item: usize) -> bool {
        let (block, bit) = (item / BLOCK_BITS, item % BLOCK_BITS);
        let mask = 1u64 << bit;
        let blocks = self.blocks_mut();
        if block >= blocks.len() {
            return false;
        }
        let present = blocks[block] & mask != 0;
        blocks[block] &= !mask;
        self.normalize();
        present
    }

    /// Empties the set, keeping a spilled buffer for allocation-free
    /// refills.
    #[inline]
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, blocks } => {
                *blocks = [0; INLINE_BLOCKS];
                *len = 0;
            }
            Repr::Heap(v) => v.clear(),
        }
    }

    /// Whether `item` is in the set.
    #[inline]
    pub fn contains(&self, item: usize) -> bool {
        self.as_blocks()
            .get(item / BLOCK_BITS)
            .is_some_and(|b| b & (1u64 << (item % BLOCK_BITS)) != 0)
    }

    /// Number of items in the set (popcount over the blocks).
    #[inline]
    pub fn len(&self) -> usize {
        self.as_blocks()
            .iter()
            .map(|b| b.count_ones() as usize)
            .sum()
    }

    /// True if the set has no items. O(1): the no-trailing-zero-blocks
    /// invariant means an empty logical block slice *is* the empty set —
    /// no block scan, no popcount.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_blocks().is_empty()
    }

    /// The largest item, if any.
    #[inline]
    pub fn max_item(&self) -> Option<usize> {
        let blocks = self.as_blocks();
        let last = *blocks.last()?;
        Some((blocks.len() - 1) * BLOCK_BITS + (BLOCK_BITS - 1 - last.leading_zeros() as usize))
    }

    /// Iterates the items in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        let blocks = self.as_blocks();
        Iter {
            blocks,
            block_idx: 0,
            current: blocks.first().copied().unwrap_or(0),
        }
    }

    /// The items as a sorted `Vec` (the legacy representation).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// The union `self ∪ other`.
    pub fn union(&self, other: &ItemSet) -> ItemSet {
        let (a, b) = (self.as_blocks(), other.as_blocks());
        if a.len() <= INLINE_BLOCKS && b.len() <= INLINE_BLOCKS {
            // Small path: both operands fit inline, so does the union.
            let mut out = [0u64; INLINE_BLOCKS];
            out[..a.len()].copy_from_slice(a);
            for (d, s) in out.iter_mut().zip(b) {
                *d |= *s;
            }
            return ItemSet::inline_from(out);
        }
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut v = Vec::with_capacity(long.len());
        v.extend_from_slice(long);
        or_blocks(&mut v[..short.len()], short);
        // `long`'s top block is non-zero and OR cannot clear it, so the
        // result is already normalized.
        ItemSet {
            repr: Repr::Heap(v),
        }
    }

    /// The intersection `self ∩ other`.
    pub fn intersection(&self, other: &ItemSet) -> ItemSet {
        let (a, b) = (self.as_blocks(), other.as_blocks());
        let n = a.len().min(b.len());
        if n <= INLINE_BLOCKS {
            // Small path: the intersection is at most `n` blocks.
            let mut out = [0u64; INLINE_BLOCKS];
            for (d, (x, y)) in out.iter_mut().zip(a[..n].iter().zip(&b[..n])) {
                *d = x & y;
            }
            return ItemSet::inline_from(out);
        }
        let mut v = Vec::with_capacity(n);
        v.extend_from_slice(&a[..n]);
        and_blocks(&mut v, &b[..n]);
        let mut out = ItemSet {
            repr: Repr::Heap(v),
        };
        out.normalize();
        out
    }

    /// The difference `self \ other`.
    pub fn difference(&self, other: &ItemSet) -> ItemSet {
        let (a, b) = (self.as_blocks(), other.as_blocks());
        if a.len() <= INLINE_BLOCKS {
            // Small path: the difference is at most `a`'s blocks.
            let mut out = [0u64; INLINE_BLOCKS];
            out[..a.len()].copy_from_slice(a);
            for (d, s) in out.iter_mut().zip(b) {
                *d &= !*s;
            }
            return ItemSet::inline_from(out);
        }
        let mut v = Vec::with_capacity(a.len());
        v.extend_from_slice(a);
        let n = a.len().min(b.len());
        andnot_blocks(&mut v[..n], &b[..n]);
        let mut out = ItemSet {
            repr: Repr::Heap(v),
        };
        out.normalize();
        out
    }

    /// In-place union: `self ∪= other`.
    pub fn union_with(&mut self, other: &ItemSet) {
        let n = other.as_blocks().len();
        if n > self.as_blocks().len() {
            self.grow_to(n);
        }
        or_blocks(&mut self.blocks_mut()[..n], other.as_blocks());
    }

    /// In-place intersection: `self ∩= other`.
    pub fn intersect_with(&mut self, other: &ItemSet) {
        let n = other.as_blocks().len().min(self.as_blocks().len());
        self.truncate_blocks(n);
        and_blocks(self.blocks_mut(), &other.as_blocks()[..n]);
        self.normalize();
    }

    /// In-place difference: `self \= other`.
    pub fn difference_with(&mut self, other: &ItemSet) {
        let n = other.as_blocks().len().min(self.as_blocks().len());
        andnot_blocks(&mut self.blocks_mut()[..n], &other.as_blocks()[..n]);
        self.normalize();
    }

    /// `|self ∩ other|` without materializing the intersection.
    #[inline]
    pub fn intersection_len(&self, other: &ItemSet) -> usize {
        let (a, b) = (self.as_blocks(), other.as_blocks());
        let n = a.len().min(b.len());
        match n {
            0 => 0,
            // Single-block fast path: one AND, one popcount.
            1 => (a[0] & b[0]).count_ones() as usize,
            _ => popcount_and(&a[..n], &b[..n]),
        }
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &ItemSet) -> bool {
        let (a, b) = (self.as_blocks(), other.as_blocks());
        if a.len() > b.len() {
            return false; // invariant: the top block is non-zero
        }
        match a.len() {
            0 => true,
            // Single-block fast path.
            1 => a[0] & !b[0] == 0,
            n => subset_blocks(a, &b[..n]),
        }
    }

    /// Whether `self ∩ other = ∅`.
    #[inline]
    pub fn is_disjoint(&self, other: &ItemSet) -> bool {
        let (a, b) = (self.as_blocks(), other.as_blocks());
        let n = a.len().min(b.len());
        match n {
            0 => true,
            // Single-block fast path.
            1 => a[0] & b[0] == 0,
            _ => disjoint_blocks(&a[..n], &b[..n]),
        }
    }

    /// The subset of items `< k` (used to restrict a hypergraph to a support
    /// prefix). O(k/64) regardless of set size.
    pub fn restricted_below(&self, k: usize) -> ItemSet {
        let blocks = self.as_blocks();
        let full_blocks = k / BLOCK_BITS;
        let take = blocks.len().min(full_blocks + 1);
        if take <= INLINE_BLOCKS {
            let mut out = [0u64; INLINE_BLOCKS];
            out[..take].copy_from_slice(&blocks[..take]);
            if full_blocks < take {
                out[full_blocks] &= (1u64 << (k % BLOCK_BITS)) - 1; // k % 64 == 0 masks to 0
            }
            return ItemSet::inline_from(out);
        }
        let mut v = Vec::with_capacity(take);
        v.extend_from_slice(&blocks[..take]);
        if let Some(partial) = v.get_mut(full_blocks) {
            *partial &= (1u64 << (k % BLOCK_BITS)) - 1; // k % 64 == 0 masks to 0
        }
        let mut out = ItemSet {
            repr: Repr::Heap(v),
        };
        out.normalize();
        out
    }

    /// The raw u64 blocks, least-significant first, with no trailing zero
    /// block. This is the set's canonical wire form: two equal sets expose
    /// identical block slices **whether their blocks live inline or on the
    /// heap**.
    #[inline]
    pub fn as_blocks(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline { len, blocks } => &blocks[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Rebuilds a set from raw blocks (e.g. decoded off the wire). Trailing
    /// zero blocks are dropped and small results land in the inline
    /// representation, so the result upholds the canonical form no matter
    /// what the peer sent.
    pub fn from_blocks(mut blocks: Vec<u64>) -> ItemSet {
        while blocks.last() == Some(&0) {
            blocks.pop();
        }
        if blocks.len() <= INLINE_BLOCKS {
            let mut inline = [0u64; INLINE_BLOCKS];
            inline[..blocks.len()].copy_from_slice(&blocks);
            ItemSet::inline_from(inline)
        } else {
            ItemSet {
                repr: Repr::Heap(blocks),
            }
        }
    }

    /// A process- and platform-independent 64-bit hash (FNV-1a over the
    /// block bytes, least-significant block first).
    ///
    /// `std::hash::Hash` goes through `RandomState`, which is seeded per
    /// process; shard routing and on-disk artifacts need the *same* bundle
    /// to land on the same shard across runs and across the client/server
    /// boundary, which this provides. Equal sets always agree: the hash
    /// reads the logical block slice, which stores no trailing zero blocks
    /// in either representation.
    #[inline]
    pub fn stable_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for &block in self.as_blocks() {
            for byte in block.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        h
    }

    /// Mutable view of the live blocks (inline: the `len` prefix).
    #[inline]
    fn blocks_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline { len, blocks } => &mut blocks[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Grows the live block count to exactly `n` (new blocks zero),
    /// spilling if `n` exceeds the inline capacity. Callers must write a
    /// non-zero top block before the set escapes (union does).
    fn grow_to(&mut self, n: usize) {
        match &mut self.repr {
            Repr::Inline { len, .. } if n <= INLINE_BLOCKS => *len = n as u8,
            Repr::Inline { .. } => {
                self.spill(n);
                let Repr::Heap(v) = &mut self.repr else {
                    unreachable!("spill always lands on the heap representation")
                };
                v.resize(n, 0);
            }
            Repr::Heap(v) => v.resize(n, 0),
        }
    }

    /// Shrinks the live block count to at most `n`, zeroing dropped inline
    /// blocks (the `blocks[len..] == 0` invariant) and keeping heap
    /// capacity.
    fn truncate_blocks(&mut self, n: usize) {
        match &mut self.repr {
            Repr::Inline { len, blocks } => {
                for b in blocks.iter_mut().take(*len as usize).skip(n) {
                    *b = 0;
                }
                *len = (*len).min(n as u8);
            }
            Repr::Heap(v) => v.truncate(n),
        }
    }

    /// Drops trailing zero blocks, restoring the canonical form.
    fn normalize(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, blocks } => {
                while *len > 0 && blocks[*len as usize - 1] == 0 {
                    *len -= 1;
                }
            }
            Repr::Heap(v) => {
                while v.last() == Some(&0) {
                    v.pop();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Chunked block kernels
// ---------------------------------------------------------------------------
//
// Each helper processes four blocks per iteration with independent lanes —
// no cross-lane dependency inside an iteration — which is the shape LLVM
// turns into SIMD on targets with 128/256-bit vector units. The scalar
// remainder loop handles the final `len % 4` blocks. All are bit-identical
// to the one-block-at-a-time reference kernels in `crate::reference`.

/// `dst |= src`, blockwise; slices must be the same length.
#[inline]
fn or_blocks(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let split = dst.len() - dst.len() % 4;
    let (dc, dr) = dst.split_at_mut(split);
    let (sc, sr) = src.split_at(split);
    for (d, s) in dc.chunks_exact_mut(4).zip(sc.chunks_exact(4)) {
        d[0] |= s[0];
        d[1] |= s[1];
        d[2] |= s[2];
        d[3] |= s[3];
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d |= *s;
    }
}

/// `dst &= src`, blockwise; slices must be the same length.
#[inline]
fn and_blocks(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let split = dst.len() - dst.len() % 4;
    let (dc, dr) = dst.split_at_mut(split);
    let (sc, sr) = src.split_at(split);
    for (d, s) in dc.chunks_exact_mut(4).zip(sc.chunks_exact(4)) {
        d[0] &= s[0];
        d[1] &= s[1];
        d[2] &= s[2];
        d[3] &= s[3];
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d &= *s;
    }
}

/// `dst &= !src`, blockwise; slices must be the same length.
#[inline]
fn andnot_blocks(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let split = dst.len() - dst.len() % 4;
    let (dc, dr) = dst.split_at_mut(split);
    let (sc, sr) = src.split_at(split);
    for (d, s) in dc.chunks_exact_mut(4).zip(sc.chunks_exact(4)) {
        d[0] &= !s[0];
        d[1] &= !s[1];
        d[2] &= !s[2];
        d[3] &= !s[3];
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d &= !*s;
    }
}

/// `popcount(a & b)`; slices must be the same length.
///
/// Deliberately *not* hand-chunked like the bitwise kernels above: popcount
/// is a pure reduction with no stores, and the compiler already unrolls
/// this zip into an optimal `popcnt` chain — `bench_kernels` showed the
/// manual 4-lane split/remainder form consistently ~10% slower.
#[inline]
fn popcount_and(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// `a & !b == 0` over all blocks (subset test); slices must be the same
/// length.
#[inline]
fn subset_blocks(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() - a.len() % 4;
    for (x, y) in a[..split].chunks_exact(4).zip(b[..split].chunks_exact(4)) {
        let stray = (x[0] & !y[0]) | (x[1] & !y[1]) | (x[2] & !y[2]) | (x[3] & !y[3]);
        if stray != 0 {
            return false;
        }
    }
    a[split..].iter().zip(&b[split..]).all(|(x, y)| x & !y == 0)
}

/// `a & b == 0` over all blocks (disjointness test); slices must be the
/// same length.
#[inline]
fn disjoint_blocks(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() - a.len() % 4;
    for (x, y) in a[..split].chunks_exact(4).zip(b[..split].chunks_exact(4)) {
        let hit = (x[0] & y[0]) | (x[1] & y[1]) | (x[2] & y[2]) | (x[3] & y[3]);
        if hit != 0 {
            return false;
        }
    }
    a[split..].iter().zip(&b[split..]).all(|(x, y)| x & y == 0)
}

impl fmt::Debug for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for ItemSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> ItemSet {
        let mut set = ItemSet::new();
        set.extend(iter);
        set
    }
}

impl Extend<usize> for ItemSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for item in iter {
            self.insert(item);
        }
    }
}

impl From<&[usize]> for ItemSet {
    fn from(items: &[usize]) -> ItemSet {
        items.iter().copied().collect()
    }
}

impl<'a> IntoIterator for &'a ItemSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Ascending iterator over the items of an [`ItemSet`].
pub struct Iter<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear the lowest set bit
        Some(self.block_idx * BLOCK_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len_roundtrip() {
        let mut s = ItemSet::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(s.insert(64));
        assert!(s.insert(0));
        assert!(!s.insert(5), "re-inserting reports not-fresh");
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(5) && s.contains(64));
        assert!(!s.contains(1) && !s.contains(63) && !s.contains(1000));
        assert_eq!(s.to_vec(), vec![0, 5, 64]);
        assert_eq!(s.max_item(), Some(64));
        assert!(s.is_inline(), "items below 128 never spill");
    }

    #[test]
    fn remove_restores_the_invariant() {
        let mut s: ItemSet = [3usize, 200].into_iter().collect();
        assert!(!s.is_inline(), "item 200 forces a spill");
        assert!(s.remove(200));
        assert!(!s.remove(200));
        // The trailing blocks of item 200 are gone, so equality with a
        // freshly built singleton holds — across representations (the
        // shrunk set keeps its heap buffer; the fresh one is inline).
        assert_eq!(s, [3usize].into_iter().collect());
        assert!(s.remove(3));
        assert!(s.is_empty());
        assert_eq!(s.max_item(), None);
    }

    #[test]
    fn set_algebra_on_cross_block_sets() {
        let a: ItemSet = [0usize, 63, 64, 100].into_iter().collect();
        let b: ItemSet = [63usize, 100, 300].into_iter().collect();
        assert_eq!(a.union(&b).to_vec(), vec![0, 63, 64, 100, 300]);
        assert_eq!(a.intersection(&b).to_vec(), vec![63, 100]);
        assert_eq!(a.difference(&b).to_vec(), vec![0, 64]);
        assert_eq!(b.difference(&a).to_vec(), vec![300]);
        assert_eq!(a.intersection_len(&b), 2);
        assert!(!a.is_subset(&b));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersection(&b).is_subset(&b));
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
    }

    #[test]
    fn in_place_ops_match_pure_ops() {
        let a: ItemSet = [1usize, 70, 128].into_iter().collect();
        let b: ItemSet = [70usize, 129].into_iter().collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, a.union(&b));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, a.intersection(&b));
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d, a.difference(&b));
    }

    #[test]
    fn in_place_ops_spill_and_shrink_correctly() {
        // Inline target forced to spill by a large operand.
        let mut u: ItemSet = [1usize].into_iter().collect();
        assert!(u.is_inline());
        let big: ItemSet = [400usize, 70].into_iter().collect();
        u.union_with(&big);
        assert_eq!(u.to_vec(), vec![1, 70, 400]);
        // Spilled set shrunk back to a small number of live blocks keeps
        // behaving like (and equal to) its inline twin.
        let mut i = u.clone();
        i.intersect_with(&[1usize, 70].as_slice().into());
        assert_eq!(i, [1usize, 70].as_slice().into());
        let mut d = u;
        d.difference_with(&[400usize].as_slice().into());
        assert_eq!(d.to_vec(), vec![1, 70]);
    }

    #[test]
    fn restricted_below_is_a_prefix_filter() {
        let s: ItemSet = [0usize, 63, 64, 65, 200].into_iter().collect();
        assert_eq!(s.restricted_below(65).to_vec(), vec![0, 63, 64]);
        assert_eq!(s.restricted_below(64).to_vec(), vec![0, 63]);
        assert_eq!(s.restricted_below(0).to_vec(), Vec::<usize>::new());
        assert_eq!(s.restricted_below(1000), s);
    }

    #[test]
    fn iteration_is_ascending_and_debug_prints_items() {
        let s: ItemSet = [9usize, 2, 130, 2].into_iter().collect();
        let items: Vec<usize> = (&s).into_iter().collect();
        assert_eq!(items, vec![2, 9, 130]);
        assert_eq!(format!("{s:?}"), "{2, 9, 130}");
    }

    #[test]
    fn equal_sets_hash_equal_regardless_of_history() {
        use std::collections::hash_map::DefaultHasher;
        let hash_of = |s: &ItemSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        let direct: ItemSet = [1usize, 64, 130].into_iter().collect();
        // Same set reached through inserts beyond block 2 and removals that
        // must drop the trailing blocks again.
        let mut via_removal: ItemSet = [130usize, 64, 1, 500].into_iter().collect();
        via_removal.remove(500);
        assert_eq!(direct, via_removal);
        assert_eq!(hash_of(&direct), hash_of(&via_removal));
        assert_eq!(direct.stable_hash(), via_removal.stable_hash());
        assert_ne!(
            direct.stable_hash(),
            ItemSet::new().stable_hash(),
            "distinct sets should (overwhelmingly) hash apart"
        );
    }

    #[test]
    fn inline_and_heap_forms_of_the_same_set_are_indistinguishable() {
        use std::collections::hash_map::DefaultHasher;
        let hash_of = |s: &ItemSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        // Inline form: built directly from small items.
        let inline: ItemSet = [1usize, 64].into_iter().collect();
        assert!(inline.is_inline());
        // Heap form of the *same* set: spill via a large item, remove it.
        let mut heap: ItemSet = [1usize, 64, 500].into_iter().collect();
        heap.remove(500);
        assert!(!heap.is_inline(), "shrinking keeps the spilled buffer");
        // Equality, both hashes, ordering, and the wire form all agree.
        assert_eq!(inline, heap);
        assert_eq!(hash_of(&inline), hash_of(&heap));
        assert_eq!(inline.stable_hash(), heap.stable_hash());
        assert_eq!(inline.cmp(&heap), std::cmp::Ordering::Equal);
        assert_eq!(inline.as_blocks(), heap.as_blocks());
    }

    #[test]
    fn clear_keeps_spilled_buffers_and_inline_forms_reusable() {
        let mut inline: ItemSet = [5usize].into_iter().collect();
        inline.clear();
        assert!(inline.is_empty() && inline.is_inline());
        let mut heap: ItemSet = [5usize, 300].into_iter().collect();
        heap.clear();
        assert!(heap.is_empty());
        assert!(!heap.is_inline(), "clear keeps the buffer for refills");
        assert_eq!(heap, ItemSet::new(), "empty is empty in any repr");
        heap.insert(7);
        assert_eq!(heap.to_vec(), vec![7]);
    }

    #[test]
    fn ord_is_the_bitset_integer_order() {
        let lo: ItemSet = [0usize, 1].into_iter().collect(); // value 3
        let hi: ItemSet = [64usize].into_iter().collect(); // value 2^64
        assert!(lo < hi, "more blocks wins");
        let a: ItemSet = [0usize, 5].into_iter().collect();
        let b: ItemSet = [5usize].into_iter().collect();
        assert!(b < a, "same top item, extra low bit breaks the tie upward");
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        // Subset consistency: a ⊆ b ⇒ a ≤ b.
        assert!(b.is_subset(&a) && b <= a);
        assert!(ItemSet::new() <= b);
    }

    #[test]
    fn blocks_roundtrip_and_normalize_on_decode() {
        let s: ItemSet = [3usize, 64, 200].into_iter().collect();
        assert_eq!(ItemSet::from_blocks(s.as_blocks().to_vec()), s);
        // A peer that pads with trailing zero blocks still decodes to the
        // canonical representation.
        let mut padded = s.as_blocks().to_vec();
        padded.extend([0, 0]);
        assert_eq!(ItemSet::from_blocks(padded), s);
        assert_eq!(ItemSet::from_blocks(vec![0, 0]), ItemSet::new());
        assert!(ItemSet::new().as_blocks().is_empty());
    }

    #[test]
    fn from_blocks_normalization_is_representation_independent() {
        use std::collections::hash_map::DefaultHasher;
        let hash_of = |s: &ItemSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        // A small set decoded from padded wire blocks lands inline…
        let padded = ItemSet::from_blocks(vec![0b1010, 0, 0, 0]);
        assert!(padded.is_inline());
        // …and matches both the directly built inline form and a heap form
        // that shrank to the same blocks, under Eq AND stable_hash: the
        // trailing-zero-block normalization is what keeps `Eq`/`stable_hash`
        // representation-independent.
        let direct: ItemSet = [1usize, 3].into_iter().collect();
        let mut shrunk: ItemSet = [1usize, 3, 999].into_iter().collect();
        shrunk.remove(999);
        assert!(!shrunk.is_inline());
        for other in [&direct, &shrunk] {
            assert_eq!(&padded, other);
            assert_eq!(padded.stable_hash(), other.stable_hash());
            assert_eq!(hash_of(&padded), hash_of(other));
            assert_eq!(padded.as_blocks(), other.as_blocks());
        }
        // from_blocks with > INLINE_BLOCKS live blocks stays heap and still
        // round-trips the wire form.
        let big = ItemSet::from_blocks(vec![1, 2, 3, 0]);
        assert!(!big.is_inline());
        assert_eq!(big.as_blocks(), &[1, 2, 3]);
    }

    #[test]
    fn empty_set_edge_cases() {
        let e = ItemSet::new();
        assert!(e.is_subset(&e));
        assert!(e.is_disjoint(&e));
        assert_eq!(e.union(&e), e);
        assert_eq!(e.intersection_len(&e), 0);
        let s: ItemSet = [7usize].into_iter().collect();
        assert!(e.is_subset(&s));
        assert!(!s.is_subset(&e));
    }

    #[test]
    fn with_capacity_stays_inline_within_the_inline_range() {
        assert!(ItemSet::with_capacity(0).is_inline());
        assert!(ItemSet::with_capacity(128).is_inline());
        assert!(!ItemSet::with_capacity(129).is_inline());
    }

    #[test]
    fn chunked_kernels_cover_multi_chunk_and_remainder_lengths() {
        // 11 blocks: two full 4-chunks plus a 3-block remainder.
        let a: ItemSet = (0..700).step_by(3).collect();
        let b: ItemSet = (0..700).step_by(5).collect();
        let au: std::collections::BTreeSet<usize> = a.iter().collect();
        let bu: std::collections::BTreeSet<usize> = b.iter().collect();
        let union: Vec<usize> = au.union(&bu).copied().collect();
        let inter: Vec<usize> = au.intersection(&bu).copied().collect();
        let diff: Vec<usize> = au.difference(&bu).copied().collect();
        assert_eq!(a.union(&b).to_vec(), union);
        assert_eq!(a.intersection(&b).to_vec(), inter);
        assert_eq!(a.difference(&b).to_vec(), diff);
        assert_eq!(a.intersection_len(&b), inter.len());
        assert!(a.intersection(&b).is_subset(&a));
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
    }
}
