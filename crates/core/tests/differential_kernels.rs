//! Differential tests: every fast-path kernel in [`qp_core::ItemSet`] —
//! the inline small-set representation, the single-block early arms, and
//! the 4-blocks-per-iteration chunked loops — against the scalar
//! [`qp_core::reference`] oracles (the pre-optimization implementations,
//! kept verbatim).
//!
//! The operand strategies deliberately straddle the fast-path boundaries:
//! single-block sets (items < 64), inline-capacity sets (< 128 = 2
//! blocks), and wide sets spanning enough blocks to hit both the chunked
//! main loop and its remainder tail. On top of random shapes, every pair
//! is also run with each operand in its *heap* representation (a spill
//! never demotes, so inserting-then-removing a high item pins a small set
//! to the heap) — the kernels must be bit-identical across
//! representations, not just across values.

use proptest::prelude::*;
use qp_core::{reference, ItemSet, INLINE_BLOCKS};

/// Universes keyed to the fast-path boundaries: one block, the inline
/// capacity, one block past it, and a multi-chunk + remainder span.
fn items() -> impl Strategy<Value = Vec<usize>> {
    (0usize..5).prop_flat_map(|pick| {
        let universe = [
            64,
            64 * INLINE_BLOCKS,
            64 * (INLINE_BLOCKS + 1),
            64 * 9, // 2 chunks of 4 + remainder
            1600,   // 25 blocks: 6 chunks + remainder
        ][pick];
        proptest::collection::vec(0..universe, 0..80)
    })
}

/// The same logical set pinned to its heap representation: spilling is
/// one-way, so a round-trip through a high item leaves small sets on the
/// heap with identical observable contents.
fn heap_pinned(s: &ItemSet) -> ItemSet {
    let mut h = s.clone();
    h.insert(10_000);
    h.remove(10_000);
    assert!(!h.is_inline(), "a 10k-item spill must stick");
    h
}

/// Both representations of a set (inline sets yield two distinct reprs;
/// already-spilled sets yield the heap form twice, which is harmless).
fn reprs(s: &ItemSet) -> [ItemSet; 2] {
    [s.clone(), heap_pinned(s)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn constructive_kernels_match_the_scalar_reference(a in items(), b in items()) {
        let sa: ItemSet = a.iter().copied().collect();
        let sb: ItemSet = b.iter().copied().collect();
        for ra in reprs(&sa) {
            for rb in reprs(&sb) {
                let union = ra.union(&rb);
                let inter = ra.intersection(&rb);
                let diff = ra.difference(&rb);
                // Value-identical AND block-identical: the no-trailing-zeros
                // invariant makes as_blocks() canonical, so bit-identity is
                // exactly block-slice equality.
                prop_assert_eq!(&union, &reference::union(&ra, &rb));
                prop_assert_eq!(union.as_blocks(), reference::union(&ra, &rb).as_blocks());
                prop_assert_eq!(&inter, &reference::intersection(&ra, &rb));
                prop_assert_eq!(inter.as_blocks(), reference::intersection(&ra, &rb).as_blocks());
                prop_assert_eq!(&diff, &reference::difference(&ra, &rb));
                prop_assert_eq!(diff.as_blocks(), reference::difference(&ra, &rb).as_blocks());
            }
        }
    }

    #[test]
    fn query_kernels_match_the_scalar_reference(a in items(), b in items()) {
        let sa: ItemSet = a.iter().copied().collect();
        let sb: ItemSet = b.iter().copied().collect();
        for ra in reprs(&sa) {
            for rb in reprs(&sb) {
                prop_assert_eq!(ra.intersection_len(&rb), reference::intersection_len(&ra, &rb));
                prop_assert_eq!(ra.is_subset(&rb), reference::is_subset(&ra, &rb));
                prop_assert_eq!(ra.is_disjoint(&rb), reference::is_disjoint(&ra, &rb));
            }
        }
    }

    #[test]
    fn in_place_kernels_match_the_scalar_reference(a in items(), b in items()) {
        let sa: ItemSet = a.iter().copied().collect();
        let sb: ItemSet = b.iter().copied().collect();
        for ra in reprs(&sa) {
            for rb in reprs(&sb) {
                let mut u = ra.clone();
                u.union_with(&rb);
                prop_assert_eq!(u.as_blocks(), reference::union(&ra, &rb).as_blocks());
                let mut i = ra.clone();
                i.intersect_with(&rb);
                prop_assert_eq!(i.as_blocks(), reference::intersection(&ra, &rb).as_blocks());
                let mut d = ra.clone();
                d.difference_with(&rb);
                prop_assert_eq!(d.as_blocks(), reference::difference(&ra, &rb).as_blocks());
            }
        }
    }

    #[test]
    fn subset_relations_hold_across_representations(a in items()) {
        // a ⊆ a∪x and a∩x ⊆ a for every x derived from a — quick coherence
        // net over the boolean kernels on *related* (not independent) sets,
        // where the single-block early arms and length cutoffs bite.
        let sa: ItemSet = a.iter().copied().collect();
        let hi = heap_pinned(&sa);
        prop_assert!(sa.is_subset(&hi) && hi.is_subset(&sa));
        prop_assert_eq!(sa.intersection_len(&hi), sa.len());
        prop_assert_eq!(sa.is_disjoint(&hi), sa.is_empty());
    }
}
