//! Property tests for [`qp_core::ItemSet`]: round-tripping with the legacy
//! sorted-`Vec<usize>` representation and the set-algebra laws, checked
//! against `BTreeSet` as the reference implementation.

use std::collections::BTreeSet;

use proptest::prelude::*;
use qp_core::ItemSet;

/// Item universe deliberately spans several u64 blocks (0..400) so block
/// boundaries and trailing-block normalization are exercised.
fn items() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..400, 0..60)
}

fn reference(v: &[usize]) -> BTreeSet<usize> {
    v.iter().copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrips_with_sorted_dedup_vec(v in items()) {
        let set: ItemSet = v.iter().copied().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(set.to_vec(), sorted.clone());
        prop_assert_eq!(set.len(), sorted.len());
        prop_assert_eq!(set.is_empty(), sorted.is_empty());
        prop_assert_eq!(set.max_item(), sorted.last().copied());
        // Rebuilding from to_vec() is the identity (Vec ⇄ ItemSet round-trip).
        let rebuilt = ItemSet::from(set.to_vec().as_slice());
        prop_assert_eq!(rebuilt, set);
    }

    #[test]
    fn membership_matches_the_reference(v in items(), probe in 0usize..420) {
        let set: ItemSet = v.iter().copied().collect();
        prop_assert_eq!(set.contains(probe), reference(&v).contains(&probe));
    }

    #[test]
    fn set_algebra_laws(a in items(), b in items()) {
        let sa: ItemSet = a.iter().copied().collect();
        let sb: ItemSet = b.iter().copied().collect();
        let ra = reference(&a);
        let rb = reference(&b);

        let union: Vec<usize> = ra.union(&rb).copied().collect();
        let inter: Vec<usize> = ra.intersection(&rb).copied().collect();
        let diff: Vec<usize> = ra.difference(&rb).copied().collect();
        prop_assert_eq!(sa.union(&sb).to_vec(), union);
        prop_assert_eq!(sa.intersection(&sb).to_vec(), inter.clone());
        prop_assert_eq!(sa.difference(&sb).to_vec(), diff);
        prop_assert_eq!(sa.intersection_len(&sb), inter.len());
        prop_assert_eq!(sa.is_subset(&sb), ra.is_subset(&rb));
        prop_assert_eq!(sa.is_disjoint(&sb), ra.is_disjoint(&rb));

        // Commutativity and the inclusion–exclusion size identity.
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        prop_assert_eq!(sa.intersection(&sb), sb.intersection(&sa));
        prop_assert_eq!(
            sa.union(&sb).len() + sa.intersection(&sb).len(),
            sa.len() + sb.len()
        );
    }

    #[test]
    fn in_place_ops_agree_with_pure_ops(a in items(), b in items()) {
        let sa: ItemSet = a.iter().copied().collect();
        let sb: ItemSet = b.iter().copied().collect();
        let mut u = sa.clone();
        u.union_with(&sb);
        prop_assert_eq!(u, sa.union(&sb));
        let mut i = sa.clone();
        i.intersect_with(&sb);
        prop_assert_eq!(i, sa.intersection(&sb));
        let mut d = sa.clone();
        d.difference_with(&sb);
        prop_assert_eq!(d, sa.difference(&sb));
    }

    #[test]
    fn restriction_matches_filtering(v in items(), k in 0usize..420) {
        let set: ItemSet = v.iter().copied().collect();
        let expected: Vec<usize> = reference(&v).into_iter().filter(|&j| j < k).collect();
        prop_assert_eq!(set.restricted_below(k).to_vec(), expected);
    }

    #[test]
    fn equality_is_extensional(a in items(), shuffle_seed in 0usize..8) {
        // Insertion order (and duplicates) never affect equality or hashing,
        // thanks to the no-trailing-zero-blocks invariant.
        let forward: ItemSet = a.iter().copied().collect();
        let mut rotated = a.clone();
        rotated.rotate_left(shuffle_seed.min(a.len().saturating_sub(1)));
        rotated.extend(a.iter().copied()); // duplicates
        let backward: ItemSet = rotated.into_iter().rev().collect();
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn remove_inverts_insert(v in items(), victim in 0usize..400) {
        let mut set: ItemSet = v.iter().copied().collect();
        let was_present = set.contains(victim);
        let expected: ItemSet = reference(&v)
            .into_iter()
            .filter(|&j| j != victim)
            .collect();
        prop_assert_eq!(set.remove(victim), was_present);
        prop_assert_eq!(set, expected);
    }
}

/// The reference total order: compare the largest item of the symmetric
/// difference — whichever set contains it is the larger set. This is the
/// bitset-as-big-endian-integer order `Ord` promises.
fn reference_cmp(a: &BTreeSet<usize>, b: &BTreeSet<usize>) -> std::cmp::Ordering {
    let top_diff = a.symmetric_difference(b).max();
    match top_diff {
        None => std::cmp::Ordering::Equal,
        Some(j) if a.contains(j) => std::cmp::Ordering::Greater,
        Some(_) => std::cmp::Ordering::Less,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hash_agrees_with_equality_across_build_histories(v in items(), extra in 400usize..800) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash_of = |s: &ItemSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        let direct: ItemSet = v.iter().copied().collect();
        // Same extensional set via a different history: reversed insertion
        // order plus a high item inserted and removed again, which forces
        // trailing blocks to be allocated and then dropped.
        let mut indirect: ItemSet = v.iter().rev().copied().collect();
        indirect.insert(extra);
        indirect.remove(extra);
        prop_assert_eq!(&direct, &indirect);
        prop_assert_eq!(hash_of(&direct), hash_of(&indirect));
        prop_assert_eq!(direct.stable_hash(), indirect.stable_hash());
    }

    #[test]
    fn stable_hash_separates_unequal_sets(a in items(), b in items()) {
        let sa: ItemSet = a.iter().copied().collect();
        let sb: ItemSet = b.iter().copied().collect();
        if sa != sb {
            // FNV-1a over ≤ 400-bit inputs: collisions in a 64-bit digest
            // would be astronomically unlikely for these sizes — and any
            // deterministic collision here would break shard routing tests.
            prop_assert_ne!(sa.stable_hash(), sb.stable_hash());
        } else {
            prop_assert_eq!(sa.stable_hash(), sb.stable_hash());
        }
    }

    #[test]
    fn ord_matches_the_reference_order(a in items(), b in items()) {
        let sa: ItemSet = a.iter().copied().collect();
        let sb: ItemSet = b.iter().copied().collect();
        let expected = reference_cmp(&reference(&a), &reference(&b));
        prop_assert_eq!(sa.cmp(&sb), expected);
        prop_assert_eq!(sb.cmp(&sa), expected.reverse());
        prop_assert_eq!(sa.partial_cmp(&sb), Some(expected));
        prop_assert_eq!(sa.cmp(&sb) == std::cmp::Ordering::Equal, sa == sb);
    }

    #[test]
    fn ord_is_consistent_with_subset(a in items(), b in items()) {
        // Every subset relation the algebra can produce must sort downward:
        // a∩b ⊆ a ⊆ a∪b, and a\b ⊆ a.
        let sa: ItemSet = a.iter().copied().collect();
        let sb: ItemSet = b.iter().copied().collect();
        let inter = sa.intersection(&sb);
        let uni = sa.union(&sb);
        let diff = sa.difference(&sb);
        prop_assert!(inter <= sa && inter <= sb);
        prop_assert!(sa <= uni && sb <= uni);
        prop_assert!(diff <= sa);
        if sa.is_subset(&sb) {
            prop_assert!(sa <= sb);
        }
    }

    #[test]
    fn ord_is_transitive(a in items(), b in items(), c in items()) {
        let sa: ItemSet = a.iter().copied().collect();
        let sb: ItemSet = b.iter().copied().collect();
        let sc: ItemSet = c.iter().copied().collect();
        let mut sorted = [sa, sb, sc];
        sorted.sort();
        prop_assert!(sorted[0] <= sorted[1] && sorted[1] <= sorted[2]);
        prop_assert!(sorted[0] <= sorted[2]);
    }
}
