//! Sim-driver replay oracle: a full simulated run against a store-backed
//! broker leaves a WAL (and, mid-history, a snapshot) that an independent
//! replay reconstructs **bit-exactly** — the durable trail is not an
//! approximation of the books, it *is* the books.
//!
//! The run is two seeded segments with a snapshot written between them, so
//! recovery exercises the real production path: newest snapshot plus
//! WAL-suffix replay, not a from-scratch scan.

use std::sync::Arc;

use qp_market::{broker_snapshot, recover_broker, Broker, SupportConfig};
use qp_qdb::Query;
use qp_sim::{run, BudgetModel, BuyerSegment, EveryNTicks, Population, SimConfig};
use qp_store::{MemStore, Store};
use qp_workloads::arrivals::ArrivalProcess;
use qp_workloads::queries::skewed;
use qp_workloads::world::{self, WorldConfig};
use qp_workloads::Scale;

/// A deterministic broker over the world dataset; optionally store-backed.
fn broker_and_pool(store: Option<Arc<MemStore>>) -> (Broker, Vec<Query>) {
    let cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&cfg);
    let pool: Vec<Query> = skewed::workload(&db, cfg.countries).queries[..40].to_vec();
    let mut builder = Broker::builder(db)
        .support_config(SupportConfig::with_size(100))
        .algorithm("UBP")
        .anticipate_all(
            pool.iter()
                .enumerate()
                .map(|(i, q)| (q.clone(), 5.0 + (i % 7) as f64 * 6.0)),
        );
    if let Some(store) = store {
        builder = builder.store(store);
    }
    (builder.build().expect("UBP is registered"), pool)
}

fn population(pool: &[Query]) -> Population {
    Population::new(vec![BuyerSegment::new(
        "all",
        pool.to_vec(),
        BudgetModel::Uniform { lo: 0.0, hi: 50.0 },
    )])
}

#[test]
fn a_simulated_run_replays_bit_exactly_from_its_wal() {
    let store = Arc::new(MemStore::new());
    let (live, pool) = broker_and_pool(Some(Arc::clone(&store)));
    let sched = [(0, population(&pool))];
    let arrivals = ArrivalProcess::Poisson { rate: 6.0 };
    let cfg = SimConfig {
        ticks: 8,
        seed: 21,
        workers: 2,
        ..SimConfig::default()
    };

    // Segment one: live repricing every other tick, every settle and
    // repricing WAL-logged through the broker's own hooks.
    let mut policy = EveryNTicks::new(2);
    let first = run(&live, &sched, &arrivals, &mut policy, &cfg);
    assert!(first.sales() > 0, "segment one generated trade");

    // Mid-history snapshot, then keep trading past it on a new seed so the
    // recovery below has both a snapshot to load and a suffix to replay.
    store
        .write_snapshot(&broker_snapshot(&live, store.wal_seq()))
        .expect("snapshot");
    let suffix_floor = store.wal_seq();
    let mut policy = EveryNTicks::new(2);
    let second = run(
        &live,
        &sched,
        &arrivals,
        &mut policy,
        &SimConfig { seed: 22, ..cfg },
    );
    assert!(second.sales() > 0, "segment two generated trade");
    assert!(
        store.wal_seq() > suffix_floor,
        "segment two appended a WAL suffix past the snapshot"
    );

    // The oracle: a freshly built broker plus the store reproduces the
    // live books exactly — same ledger bits, same pricing epoch, same
    // prices going forward.
    let (recovered, _) = broker_and_pool(None);
    let state = recover_broker(&recovered, &*store).expect("recovery");

    let live_ledger = live.ledger();
    assert_eq!(state.sales(), live_ledger.len() as u64);
    assert_eq!(state.declines(), live_ledger.declined_count() as u64);
    assert_eq!(
        state.revenue().to_bits(),
        live_ledger.total().to_bits(),
        "replayed revenue must match the live ledger bit-for-bit"
    );
    let recovered_ledger = recovered.ledger();
    assert_eq!(
        recovered_ledger.total().to_bits(),
        live_ledger.total().to_bits()
    );
    assert_eq!(recovered.pricing_epoch(), live.pricing_epoch());
    for q in pool.iter().take(10) {
        assert_eq!(
            recovered.quote(q).price.to_bits(),
            live.quote(q).price.to_bits(),
            "recovered pricing must quote identically"
        );
    }

    // The engine's own tally agrees with the durable books up to float
    // association: the ledger records settle-completion order, the report
    // sums buyer order, so compare counts exactly and totals numerically.
    let report_total = first.total_revenue() + second.total_revenue();
    assert_eq!(
        state.sales() as usize,
        first.sales() + second.sales(),
        "every engine-side sale is in the WAL"
    );
    assert_eq!(
        state.declines() as usize,
        first.declines() + second.declines(),
        "every engine-side decline is in the WAL"
    );
    // float-eq: order-insensitive reconciliation between two summation
    // orders of the same set of sale prices.
    assert!(
        (state.revenue() - report_total).abs() <= 1e-9 * report_total.abs().max(1.0),
        "WAL revenue {} diverged from the engine report {}",
        state.revenue(),
        report_total
    );
}
