//! End-to-end simulator guarantees over the paper's world workload:
//!
//! * **Same-seed determinism** — two runs with the same seed (on
//!   identically-built brokers) report bit-identical revenue, and the
//!   worker-thread count changes throughput only, never revenue.
//! * **No torn reads** — while the simulator hot-swaps pricing every tick,
//!   an outside thread hammering `Broker::quote` only ever observes prices
//!   belonging to *some* installed pricing (at most one new price per
//!   repricing), never a mix of two.

use std::sync::atomic::{AtomicBool, Ordering};

use qp_market::{Broker, SupportConfig};
use qp_qdb::Query;
use qp_sim::{library, EveryNTicks, Population, SimConfig};
use qp_workloads::arrivals::ArrivalProcess;
use qp_workloads::queries::skewed;
use qp_workloads::world::{self, WorldConfig};
use qp_workloads::Scale;

/// A deterministic broker over the world dataset, priced with UBP for a
/// slice of the skewed workload. Everything is seeded, so two calls build
/// byte-for-byte identical brokers.
fn broker_and_pool() -> (Broker, Vec<Query>) {
    let cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&cfg);
    let pool: Vec<Query> = skewed::workload(&db, cfg.countries).queries[..40].to_vec();
    let broker = Broker::builder(db)
        .support_config(SupportConfig::with_size(100))
        .algorithm("UBP")
        .anticipate_all(
            pool.iter()
                .enumerate()
                .map(|(i, q)| (q.clone(), 5.0 + (i % 7) as f64 * 6.0)),
        )
        .build()
        .expect("UBP is registered");
    (broker, pool)
}

#[test]
fn same_seed_runs_report_identical_revenue() {
    let scenario_of = |pool: &[Query]| {
        library(pool, 16)
            .into_iter()
            .find(|s| s.name == "flash_crowd")
            .expect("flash_crowd is in the library")
    };
    let cfg = SimConfig {
        seed: 77,
        ..SimConfig::default()
    };

    let (broker_a, pool_a) = broker_and_pool();
    let a = scenario_of(&pool_a).run(&broker_a, &cfg);
    let (broker_b, pool_b) = broker_and_pool();
    let b = scenario_of(&pool_b).run(&broker_b, &cfg);

    // Bit-identical totals and tick series — not merely approximately equal.
    assert_eq!(a.total_revenue().to_bits(), b.total_revenue().to_bits());
    assert_eq!(a.ticks.len(), b.ticks.len());
    for (ta, tb) in a.ticks.iter().zip(&b.ticks) {
        assert_eq!(ta.arrivals, tb.arrivals);
        assert_eq!(ta.sold, tb.sold);
        assert_eq!(ta.declined, tb.declined);
        assert_eq!(ta.revenue.to_bits(), tb.revenue.to_bits());
    }
    assert_eq!(
        a.repricings.iter().map(|r| r.tick).collect::<Vec<_>>(),
        b.repricings.iter().map(|r| r.tick).collect::<Vec<_>>()
    );

    // A different seed takes a different trajectory.
    let (broker_c, pool_c) = broker_and_pool();
    let c = scenario_of(&pool_c).run(
        &broker_c,
        &SimConfig {
            seed: 78,
            ..SimConfig::default()
        },
    );
    assert_ne!(a.total_revenue().to_bits(), c.total_revenue().to_bits());
}

#[test]
fn worker_count_changes_throughput_not_revenue() {
    let run_with = |workers: usize| {
        let (broker, pool) = broker_and_pool();
        let scenario = library(&pool, 12)
            .into_iter()
            .find(|s| s.name == "shifting_demand")
            .expect("shifting_demand is in the library");
        scenario.run(
            &broker,
            &SimConfig {
                seed: 5,
                workers,
                ..SimConfig::default()
            },
        )
    };
    let serial = run_with(1);
    let threaded = run_with(4);
    assert!(serial.quotes() > 0, "the scenario generated traffic");
    assert_eq!(
        serial.total_revenue().to_bits(),
        threaded.total_revenue().to_bits()
    );
    assert_eq!(serial.sales(), threaded.sales());
    assert_eq!(serial.declines(), threaded.declines());
}

#[test]
fn repricing_under_concurrent_quotes_has_no_torn_reads() {
    let (broker, pool) = broker_and_pool();
    // A probe query with a non-empty conflict set: its price under any
    // installed pricing is a single well-defined number.
    let probe = pool
        .iter()
        .find(|q| !broker.conflict_set(q).is_empty())
        .expect("some workload query has a non-empty conflict set")
        .clone();

    let population = Population::new(vec![qp_sim::BuyerSegment::new(
        "all",
        pool.clone(),
        qp_sim::BudgetModel::Uniform { lo: 0.0, hi: 50.0 },
    )]);
    let cfg = SimConfig {
        ticks: 12,
        seed: 9,
        workers: 2,
        ..SimConfig::default()
    };

    let done = AtomicBool::new(false);
    let (report, observed) = std::thread::scope(|scope| {
        let sim = scope.spawn(|| {
            // Repricing after *every* tick maximizes swap/quote overlap.
            let mut policy = EveryNTicks::new(1);
            let report = qp_sim::run(
                &broker,
                &[(0, population)],
                &ArrivalProcess::Poisson { rate: 6.0 },
                &mut policy,
                &cfg,
            );
            done.store(true, Ordering::Relaxed);
            report
        });
        let checker = scope.spawn(|| {
            let mut prices = Vec::new();
            while !done.load(Ordering::Relaxed) {
                prices.push(broker.quote(&probe).price);
            }
            prices
        });
        (
            sim.join().expect("simulation must not panic"),
            checker.join().expect("checker must not panic"),
        )
    });

    assert!(!report.repricings.is_empty(), "the sim repriced live");
    assert!(!observed.is_empty(), "the checker overlapped the run");
    for &p in &observed {
        assert!(p.is_finite() && p >= 0.0, "torn or corrupt quote {p}");
    }
    // Every installed pricing gives the probe exactly one price, so the
    // checker can have seen at most one distinct price per pricing ever
    // installed: the initial one plus one per repricing. A torn read would
    // show up as an extra distinct value.
    let mut distinct: Vec<u64> = observed.iter().map(|p| p.to_bits()).collect();
    distinct.sort_unstable();
    distinct.dedup();
    assert!(
        distinct.len() <= report.repricings.len() + 1,
        "{} distinct prices from {} repricings: some quote matched no installed pricing",
        distinct.len(),
        report.repricings.len()
    );
}
