//! Buyer populations: who shows up, what they ask, and what they will pay.
//!
//! A [`Population`] is a weighted mix of [`BuyerSegment`]s. Each segment
//! draws its queries from a pool (uniformly or Zipf-skewed toward the front
//! of the pool) and its budgets from a [`BudgetModel`] built on the
//! [`qp_workloads::dist`] samplers — the same distribution machinery the
//! paper's valuation models use (§6.3), applied to willingness-to-pay
//! instead of hyperedge valuations.

use qp_qdb::Query;
use qp_workloads::dist;
use rand::Rng;

/// How a segment draws a buyer's budget (willingness to pay).
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetModel {
    /// `budget ~ Uniform[lo, hi)`.
    Uniform {
        /// Lower end of the budget range.
        lo: f64,
        /// Upper end of the budget range.
        hi: f64,
    },
    /// `budget ~ Normal(mean, variance)`, clamped at 0.
    Normal {
        /// Mean budget.
        mean: f64,
        /// Budget variance.
        variance: f64,
    },
    /// `budget ~ Exponential(mean)` — a long tail of occasional big spenders.
    Exponential {
        /// Mean budget.
        mean: f64,
    },
}

impl BudgetModel {
    /// Samples one budget.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            BudgetModel::Uniform { lo, hi } => {
                if hi > lo {
                    rng.gen_range(*lo..*hi)
                } else {
                    *lo
                }
            }
            BudgetModel::Normal { mean, variance } => dist::normal(rng, *mean, *variance).max(0.0),
            BudgetModel::Exponential { mean } => dist::exponential(rng, (*mean).max(0.0)),
        }
    }

    /// Short label used in simulation reports.
    pub fn label(&self) -> String {
        match self {
            BudgetModel::Uniform { lo, hi } => format!("uniform[{lo},{hi})"),
            BudgetModel::Normal { mean, variance } => format!("normal({mean},{variance})"),
            BudgetModel::Exponential { mean } => format!("exp({mean})"),
        }
    }
}

/// One buyer segment: a share of the arrival stream with its own query pool
/// and budget distribution.
#[derive(Debug, Clone)]
pub struct BuyerSegment {
    /// Segment name, for reports.
    pub name: String,
    /// Relative share of arrivals (weights are normalized across the
    /// population; they need not sum to 1).
    pub weight: f64,
    /// The queries this segment may ask.
    pub queries: Vec<Query>,
    /// Optional Zipf exponent skewing query choice toward the front of the
    /// pool; `None` draws uniformly.
    pub query_skew: Option<f64>,
    /// The segment's budget distribution.
    pub budget: BudgetModel,
}

impl BuyerSegment {
    /// A segment with weight 1 and uniform query choice.
    pub fn new(name: impl Into<String>, queries: Vec<Query>, budget: BudgetModel) -> BuyerSegment {
        BuyerSegment {
            name: name.into(),
            weight: 1.0,
            queries,
            query_skew: None,
            budget,
        }
    }

    /// Sets the segment's arrival weight.
    pub fn weight(mut self, weight: f64) -> BuyerSegment {
        self.weight = weight;
        self
    }

    /// Skews query choice Zipf(`a`)-style toward the front of the pool.
    pub fn skew(mut self, a: f64) -> BuyerSegment {
        self.query_skew = Some(a);
        self
    }
}

/// One sampled buyer: a segment, a query from its pool, and a budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Buyer {
    /// Index of the buyer's segment in the population.
    pub segment: usize,
    /// Index of the buyer's query in the segment's pool.
    pub query: usize,
    /// The buyer's budget for this purchase.
    pub budget: f64,
}

/// A weighted mix of buyer segments with precomputed samplers.
#[derive(Debug, Clone)]
pub struct Population {
    segments: Vec<BuyerSegment>,
    /// Cumulative (unnormalized) segment weights for roulette selection.
    cumulative: Vec<f64>,
    /// Per-segment Zipf table over the query pool, where skewed.
    zipfs: Vec<Option<dist::Zipf>>,
}

impl Population {
    /// Builds a population from its segments.
    ///
    /// Panics if there are no segments, a segment has an empty query pool,
    /// or the total weight is not positive — all configuration bugs a
    /// simulation should fail loudly on.
    pub fn new(segments: Vec<BuyerSegment>) -> Population {
        assert!(
            !segments.is_empty(),
            "a population needs at least one segment"
        );
        let mut cumulative = Vec::with_capacity(segments.len());
        let mut total = 0.0;
        for s in &segments {
            assert!(!s.queries.is_empty(), "segment {:?} has no queries", s.name);
            assert!(s.weight >= 0.0, "segment {:?} has negative weight", s.name);
            total += s.weight;
            cumulative.push(total);
        }
        assert!(total > 0.0, "population weights sum to zero");
        let zipfs = segments
            .iter()
            .map(|s| s.query_skew.map(|a| dist::Zipf::new(s.queries.len(), a)))
            .collect();
        Population {
            segments,
            cumulative,
            zipfs,
        }
    }

    /// The population's segments.
    pub fn segments(&self) -> &[BuyerSegment] {
        &self.segments
    }

    /// Samples one buyer: segment by weight, query by the segment's pool
    /// distribution, budget by its model.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Buyer {
        let total = *self.cumulative.last().expect("non-empty population");
        let u = rng.gen::<f64>() * total;
        let segment = self
            .cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.segments.len() - 1);
        let seg = &self.segments[segment];
        let query = match &self.zipfs[segment] {
            // Zipf ranks are 1-based; rank 1 is the front of the pool.
            Some(z) => z.sample(rng) - 1,
            None => rng.gen_range(0..seg.queries.len()),
        };
        Buyer {
            segment,
            query,
            budget: seg.budget.sample(rng),
        }
    }

    /// Resolves a sampled buyer to their query.
    pub fn query(&self, buyer: &Buyer) -> &Query {
        &self.segments[buyer.segment].queries[buyer.query]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool(n: usize) -> Vec<Query> {
        (0..n).map(|i| Query::scan(format!("T{i}"))).collect()
    }

    #[test]
    fn segment_weights_shape_the_mix() {
        let pop = Population::new(vec![
            BuyerSegment::new("a", pool(3), BudgetModel::Uniform { lo: 1.0, hi: 2.0 }).weight(3.0),
            BuyerSegment::new("b", pool(3), BudgetModel::Uniform { lo: 1.0, hi: 2.0 }).weight(1.0),
        ]);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 8000;
        let a = (0..n).filter(|_| pop.sample(&mut rng).segment == 0).count();
        let share = a as f64 / n as f64;
        assert!((share - 0.75).abs() < 0.03, "segment-a share {share}");
    }

    #[test]
    fn skewed_segments_favour_the_front_of_the_pool() {
        let pop = Population::new(vec![BuyerSegment::new(
            "probers",
            pool(20),
            BudgetModel::Exponential { mean: 3.0 },
        )
        .skew(1.8)]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 20];
        for _ in 0..6000 {
            counts[pop.sample(&mut rng).query] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > 4 * counts[10].max(1));
    }

    #[test]
    fn budgets_follow_the_segment_model() {
        let mut rng = StdRng::seed_from_u64(6);
        let u = BudgetModel::Uniform { lo: 5.0, hi: 10.0 };
        for _ in 0..200 {
            let b = u.sample(&mut rng);
            assert!((5.0..10.0).contains(&b));
        }
        let e = BudgetModel::Exponential { mean: 4.0 };
        let mean = (0..20_000).map(|_| e.sample(&mut rng)).sum::<f64>() / 20_000.0;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
        let n = BudgetModel::Normal {
            mean: -5.0,
            variance: 1.0,
        };
        assert!((0..100).all(|_| n.sample(&mut rng) >= 0.0), "clamped at 0");
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let pop = Population::new(vec![
            BuyerSegment::new("a", pool(7), BudgetModel::Uniform { lo: 0.0, hi: 9.0 }).skew(1.2),
            BuyerSegment::new(
                "b",
                pool(4),
                BudgetModel::Normal {
                    mean: 20.0,
                    variance: 16.0,
                },
            ),
        ]);
        let draw = |seed| -> Vec<Buyer> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..200).map(|_| pop.sample(&mut rng)).collect()
        };
        assert_eq!(draw(11), draw(11));
        assert_ne!(draw(11), draw(12));
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_populations_are_rejected() {
        Population::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "has no queries")]
    fn segments_without_queries_are_rejected() {
        Population::new(vec![BuyerSegment::new(
            "mute",
            Vec::new(),
            BudgetModel::Exponential { mean: 1.0 },
        )]);
    }
}
