//! Live repricing policies.
//!
//! After every tick the engine hands the policy that tick's [`TickStats`];
//! when the policy fires, the engine rebuilds a demand hypergraph from the
//! recently observed quotes and hot-swaps the broker's pricing through
//! `Broker::set_pricing(&self, …)` while worker threads keep quoting — the
//! online-pricing setting of "Pricing Queries (Approximately) Optimally"
//! grafted onto the paper's static algorithms.

use crate::metrics::TickStats;

/// Decides, tick by tick, when the engine re-runs the pricing algorithm.
pub trait RepricingPolicy: Send {
    /// Policy label for reports.
    fn label(&self) -> String;

    /// Called once per completed tick, in tick order. Returning `true`
    /// triggers a repricing before the next tick; the engine always honors
    /// it, so stateful policies may reset their windows when they fire.
    fn should_reprice(&mut self, stats: &TickStats) -> bool;
}

/// Never reprices: the broker keeps its initial pricing for the whole run.
#[derive(Debug, Clone, Default)]
pub struct Never;

impl RepricingPolicy for Never {
    fn label(&self) -> String {
        "never".to_string()
    }

    fn should_reprice(&mut self, _stats: &TickStats) -> bool {
        false
    }
}

/// Reprices on a fixed cadence: after ticks `every-1, 2·every-1, …`.
#[derive(Debug, Clone)]
pub struct EveryNTicks {
    /// The cadence in ticks. Private and validated at construction, so the
    /// per-tick hot path needs no re-validation.
    every: u64,
}

impl EveryNTicks {
    /// A fixed-cadence policy firing after every `every` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `every` is 0 — a zero cadence has no "every 0th tick" to
    /// fire on, and rejecting it here keeps [`should_reprice`] free of the
    /// check (it would otherwise sit on every tick of every run).
    ///
    /// [`should_reprice`]: RepricingPolicy::should_reprice
    pub fn new(every: u64) -> EveryNTicks {
        assert!(every > 0, "EveryNTicks needs a positive cadence");
        EveryNTicks { every }
    }

    /// The cadence in ticks (always positive).
    pub fn every(&self) -> u64 {
        self.every
    }
}

impl RepricingPolicy for EveryNTicks {
    fn label(&self) -> String {
        format!("every-{}-ticks", self.every)
    }

    fn should_reprice(&mut self, stats: &TickStats) -> bool {
        (stats.tick + 1).is_multiple_of(self.every)
    }
}

/// Reprices when the observed conversion rate drifts away from a target.
///
/// Conversion is accumulated over a window that starts at the last repricing
/// (or the run start); once at least `min_quotes` quotes are in the window
/// and `|rate − target| > tolerance`, the policy fires and the window
/// resets. This is the feedback controller a marketplace actually wants:
/// prices too high → conversion collapses → reprice on the demand actually
/// seen; prices too low → everything sells → reprice to capture the surplus.
#[derive(Debug, Clone)]
pub struct OnConversionDrift {
    /// The conversion rate the operator is aiming for.
    pub target: f64,
    /// How far conversion may drift before a repricing fires.
    pub tolerance: f64,
    /// Minimum quotes in the window before drift is trusted.
    pub min_quotes: usize,
    window_quotes: usize,
    window_sold: usize,
}

impl OnConversionDrift {
    /// A drift policy around `target ± tolerance`, trusting windows of at
    /// least `min_quotes` quotes.
    pub fn new(target: f64, tolerance: f64, min_quotes: usize) -> OnConversionDrift {
        OnConversionDrift {
            target,
            tolerance,
            min_quotes: min_quotes.max(1),
            window_quotes: 0,
            window_sold: 0,
        }
    }

    /// Conversion rate of the current window, if it has any quotes.
    pub fn window_rate(&self) -> Option<f64> {
        if self.window_quotes == 0 {
            None
        } else {
            Some(self.window_sold as f64 / self.window_quotes as f64)
        }
    }
}

impl RepricingPolicy for OnConversionDrift {
    fn label(&self) -> String {
        format!(
            "conversion-drift(target {}, ±{}, ≥{} quotes)",
            self.target, self.tolerance, self.min_quotes
        )
    }

    fn should_reprice(&mut self, stats: &TickStats) -> bool {
        self.window_quotes += stats.sold + stats.declined;
        self.window_sold += stats.sold;
        let Some(rate) = self.window_rate() else {
            return false;
        };
        if self.window_quotes >= self.min_quotes && (rate - self.target).abs() > self.tolerance {
            self.window_quotes = 0;
            self.window_sold = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(tick: u64, sold: usize, declined: usize) -> TickStats {
        TickStats {
            tick,
            arrivals: sold + declined,
            sold,
            declined,
            revenue: sold as f64,
            ..TickStats::default()
        }
    }

    #[test]
    fn never_never_fires() {
        let mut p = Never;
        assert!((0..100).all(|t| !p.should_reprice(&stats(t, 5, 5))));
    }

    #[test]
    fn every_n_ticks_fires_on_the_cadence() {
        let mut p = EveryNTicks::new(5);
        let fired: Vec<u64> = (0..20)
            .filter(|&t| p.should_reprice(&stats(t, 1, 0)))
            .collect();
        assert_eq!(fired, vec![4, 9, 14, 19]);
    }

    #[test]
    fn conversion_drift_waits_for_enough_quotes_then_fires_and_resets() {
        let mut p = OnConversionDrift::new(0.8, 0.1, 10);
        // 4 quotes at 0% conversion: drifted, but the window is too small.
        assert!(!p.should_reprice(&stats(0, 0, 4)));
        // 8 more: the window reaches 12 ≥ 10 with rate 0 — fires and resets.
        assert!(p.should_reprice(&stats(1, 0, 8)));
        assert_eq!(p.window_rate(), None);
        // On-target traffic never fires: 8/10 = target.
        assert!(!p.should_reprice(&stats(2, 8, 2)));
        assert!(!p.should_reprice(&stats(3, 8, 2)));
    }

    #[test]
    fn conversion_drift_fires_high_as_well_as_low() {
        // Everything selling (rate 1.0, target 0.5) is also drift: the
        // seller is leaving money on the table.
        let mut p = OnConversionDrift::new(0.5, 0.2, 5);
        assert!(p.should_reprice(&stats(0, 10, 0)));
    }

    #[test]
    fn labels_name_the_policy() {
        assert_eq!(Never.label(), "never");
        assert!(EveryNTicks::new(3).label().contains('3'));
        assert!(OnConversionDrift::new(0.6, 0.1, 5).label().contains("0.6"));
    }

    #[test]
    #[should_panic(expected = "positive cadence")]
    fn a_zero_cadence_is_rejected_at_construction() {
        let _ = EveryNTicks::new(0);
    }
}
