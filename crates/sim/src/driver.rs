//! The transport-agnostic settle driver.
//!
//! The engine's inner loop — fan a tick's buyers across worker threads,
//! quote each buyer's query, settle at the quoted price, collect outcomes
//! in arrival order — does not actually care *where* the quotes come from.
//! [`SettleTransport`] abstracts that boundary: the in-process
//! implementation quotes against a live [`Broker`] (the original `qp-sim`
//! path), and `qp-server`'s loadgen implements the same trait over its TCP
//! wire protocol, so the **same deterministic event loop** drives both an
//! in-process broker and a remote shard set. That sharing is what makes
//! the server's revenue-determinism self-check meaningful: the two runs
//! differ only in transport, never in sampling or aggregation.
//!
//! A transport hands each worker thread its own [`SettleWorker`] (a network
//! transport gives each worker a dedicated — typically pooled — connection;
//! the broker transport just shares the `Sync` broker), and exposes the two
//! repricing entry points
//! the engine needs — install a fresh pricing, or apply an incremental
//! [`PricingPatch`] — so live repricing also flows through the transport.
//!
//! Determinism contract: a worker must settle a quote at exactly the quoted
//! price, and the reported [`SettledQuote`] must carry the buyer's true
//! conflict set (the demand observation repricing is computed from). Two
//! transports fronting the same pricing state then produce bit-identical
//! revenue for the same seed, because [`settle_batch`] writes outcomes at
//! each buyer's arrival index regardless of worker interleaving.

use qp_core::ItemSet;
use qp_market::{Broker, PurchaseOutcome};
use qp_pricing::algorithms::PricingPatch;
use qp_pricing::Pricing;

use crate::population::{Buyer, Population};

/// One quoted-and-settled buyer, in arrival order.
#[derive(Debug, Clone)]
pub struct SettledQuote {
    /// Whether the buyer bought at the quoted price.
    pub sold: bool,
    /// The quoted (and, if sold, paid) price.
    pub price: f64,
    /// The buyer's bid — the engine's demand observation for repricing.
    pub budget: f64,
    /// The conflict set of the buyer's query.
    pub conflict_set: ItemSet,
    /// Wall-clock quote+settle round trip in microseconds, as measured by
    /// the worker (in-process broker call or network round trip). Feeds
    /// the per-tick latency quantiles; never feeds pricing.
    pub latency_us: u64,
}

/// Per-thread settle state: quotes one buyer and settles at the quoted
/// price. Workers are handed out by [`SettleTransport::worker`], one per
/// fan-out thread.
pub trait SettleWorker {
    /// Quotes `buyer`'s query (resolved through `population`, which is the
    /// schedule's phase `phase`) and settles it at the quoted price.
    fn quote_and_settle(
        &mut self,
        population: &Population,
        phase: usize,
        buyer: &Buyer,
        tick: u64,
    ) -> SettledQuote;
}

/// A quoting backend the engine can drive: hands out per-thread workers and
/// accepts the two kinds of live repricing.
pub trait SettleTransport: Sync {
    /// The per-thread worker type (e.g. a dedicated network connection).
    type Worker: SettleWorker + Send;

    /// Creates one worker; called once per fan-out thread.
    fn worker(&self) -> Self::Worker;

    /// Installs a freshly computed pricing (the full-rebuild repricing
    /// path). Must not return before the pricing is visible to quotes
    /// issued afterwards.
    fn install_pricing(&self, pricing: Pricing);

    /// Applies an incremental pricing patch (the delta repricing path).
    /// Must not return before the patch is visible to quotes issued
    /// afterwards.
    fn apply_patch(&self, patch: &PricingPatch);

    /// Number of support items behind the pricing (sizes the demand
    /// window's hypergraph).
    fn num_items(&self) -> usize;
}

/// Quotes and settles a batch of buyers, fanning them across `workers`
/// scoped threads through [`qp_market::claim_map`]. Outcomes land at each
/// buyer's arrival index, so callers aggregate in a thread-independent
/// order — the root of the same-seed determinism guarantee.
pub fn settle_batch<T: SettleTransport>(
    transport: &T,
    population: &Population,
    phase: usize,
    buyers: &[Buyer],
    tick: u64,
    workers: usize,
) -> Vec<SettledQuote> {
    qp_market::claim_map(
        buyers,
        workers,
        || transport.worker(),
        |worker, buyer| worker.quote_and_settle(population, phase, buyer, tick),
    )
}

/// [`settle_batch`] writing into a caller-owned slot buffer instead of
/// allocating a fresh outcome `Vec` per tick.
///
/// `slots` is cleared, then holds `Some(outcome)` at every buyer's arrival
/// index; the engine drains it each tick so only its *capacity* persists.
/// Same determinism contract as [`settle_batch`] — outcome order is arrival
/// order regardless of worker interleaving.
pub fn settle_batch_into<T: SettleTransport>(
    transport: &T,
    population: &Population,
    phase: usize,
    buyers: &[Buyer],
    tick: u64,
    workers: usize,
    slots: &mut Vec<Option<SettledQuote>>,
) {
    qp_market::claim_map_into(
        buyers,
        workers,
        || transport.worker(),
        |worker, buyer| worker.quote_and_settle(population, phase, buyer, tick),
        slots,
    )
}

/// The in-process transport: quotes directly against a shared [`Broker`].
/// This is the original `qp-sim` hot path, now expressed as one
/// [`SettleTransport`] among others.
pub struct BrokerTransport<'a> {
    /// The live broker quotes are priced against.
    pub broker: &'a Broker,
}

impl<'a> SettleTransport for BrokerTransport<'a> {
    // The broker is Sync, so every worker just shares it.
    type Worker = &'a Broker;

    fn worker(&self) -> &'a Broker {
        self.broker
    }

    fn install_pricing(&self, pricing: Pricing) {
        self.broker.set_pricing(pricing);
    }

    fn apply_patch(&self, patch: &PricingPatch) {
        self.broker.apply_delta(patch);
    }

    fn num_items(&self) -> usize {
        self.broker.support().len()
    }
}

impl SettleWorker for &Broker {
    /// Quotes one buyer's query against the live pricing and settles at the
    /// quoted price. A query that fails to evaluate counts as a failed sale
    /// (see [`Broker::settle`]).
    fn quote_and_settle(
        &mut self,
        population: &Population,
        _phase: usize,
        buyer: &Buyer,
        tick: u64,
    ) -> SettledQuote {
        let query = population.query(buyer);
        // timing: measures the quote+settle round trip for the report's
        // latency quantiles; the outcome never depends on it.
        let started = std::time::Instant::now();
        let quote = self.quote(query);
        let price = quote.price;
        let sold = matches!(
            self.settle(&quote, query, buyer.budget, tick),
            Ok(PurchaseOutcome::Sold { .. })
        );
        SettledQuote {
            sold,
            price,
            budget: buyer.budget,
            conflict_set: quote.conflict_set,
            latency_us: started.elapsed().as_micros() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{BudgetModel, BuyerSegment};
    use parking_lot::Mutex;
    use qp_qdb::Query;

    /// A deterministic fake backend: prices every bundle at `|segment| +
    /// query index`, sells when the budget covers it, and records repricing
    /// calls — enough to pin the driver's plumbing without a database.
    struct FakeTransport {
        patches: Mutex<Vec<String>>,
    }

    struct FakeWorker;

    impl SettleWorker for FakeWorker {
        fn quote_and_settle(
            &mut self,
            _population: &Population,
            phase: usize,
            buyer: &Buyer,
            _tick: u64,
        ) -> SettledQuote {
            let price = (phase * 100 + buyer.segment * 10 + buyer.query) as f64;
            SettledQuote {
                sold: buyer.budget + 1e-9 >= price,
                price,
                budget: buyer.budget,
                conflict_set: [buyer.query].as_slice().into(),
                latency_us: 0,
            }
        }
    }

    impl SettleTransport for FakeTransport {
        type Worker = FakeWorker;
        fn worker(&self) -> FakeWorker {
            FakeWorker
        }
        fn install_pricing(&self, pricing: Pricing) {
            self.patches.lock().push(format!("install:{pricing:?}"));
        }
        fn apply_patch(&self, patch: &PricingPatch) {
            self.patches.lock().push(format!("patch:{patch:?}"));
        }
        fn num_items(&self) -> usize {
            8
        }
    }

    fn population() -> Population {
        Population::new(vec![BuyerSegment::new(
            "all",
            (0..6).map(|i| Query::scan(format!("T{i}"))).collect(),
            BudgetModel::Uniform { lo: 0.0, hi: 10.0 },
        )])
    }

    #[test]
    fn settle_batch_preserves_arrival_order_at_any_worker_count() {
        let transport = FakeTransport {
            patches: Mutex::new(Vec::new()),
        };
        let pop = population();
        let buyers: Vec<Buyer> = (0..37)
            .map(|i| Buyer {
                segment: 0,
                query: i % 6,
                budget: i as f64,
            })
            .collect();
        let serial = settle_batch(&transport, &pop, 1, &buyers, 7, 1);
        for workers in [2, 4, 8] {
            let parallel = settle_batch(&transport, &pop, 1, &buyers, 7, workers);
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.sold, b.sold, "workers={workers}");
                assert_eq!(a.price.to_bits(), b.price.to_bits());
                assert_eq!(a.conflict_set, b.conflict_set);
            }
        }
        // The phase index reached the worker (prices carry the 100·phase
        // component).
        assert!(serial.iter().all(|s| s.price >= 100.0));

        // The slot-reusing variant reports identical outcomes through the
        // same buffer across calls.
        let mut slots = Vec::new();
        for workers in [1, 4] {
            settle_batch_into(&transport, &pop, 1, &buyers, 7, workers, &mut slots);
            assert_eq!(slots.len(), serial.len());
            for (a, b) in serial.iter().zip(&slots) {
                let b = b.as_ref().expect("every slot is filled");
                assert_eq!(a.sold, b.sold, "workers={workers}");
                assert_eq!(a.price.to_bits(), b.price.to_bits());
                assert_eq!(a.conflict_set, b.conflict_set);
            }
        }
    }

    #[test]
    fn repricing_calls_route_through_the_transport() {
        let transport = FakeTransport {
            patches: Mutex::new(Vec::new()),
        };
        transport.install_pricing(Pricing::UniformBundle { price: 3.0 });
        transport.apply_patch(&PricingPatch::SetUniformPrice(4.0));
        let log = transport.patches.lock();
        assert_eq!(log.len(), 2);
        assert!(log[0].starts_with("install:"));
        assert!(log[1].starts_with("patch:"));
    }
}
