//! # qp-sim — a discrete-event data-market simulator
//!
//! The paper evaluates its pricing algorithms on static hypergraph
//! instances; this crate adds the dimension the ROADMAP's production story
//! needs: **time**. Buyers arrive over simulated ticks, quote against a live
//! [`qp_market::Broker`] from multiple worker threads, purchase or decline
//! against their budget, and a pluggable repricing policy re-runs a registry
//! algorithm on the observed demand and hot-swaps the pricing mid-traffic —
//! the online setting of *Pricing Queries (Approximately) Optimally*
//! (Syrgkanis & Gehrke) layered over the paper's static machinery.
//!
//! The moving parts:
//!
//! * [`population`] — buyer segments with budget distributions (built on
//!   [`qp_workloads::dist`]) and per-segment query pools, mixed by weight.
//! * [`qp_workloads::arrivals`] — Poisson / bursty / flash-crowd tick-based
//!   arrival processes (exported by the workloads crate so traffic shapes
//!   live next to the other workload generators).
//! * [`repricing`] — the [`repricing::RepricingPolicy`] trait and the three
//!   standard policies: [`repricing::Never`], [`repricing::EveryNTicks`],
//!   [`repricing::OnConversionDrift`].
//! * [`demand`] — the sliding [`DemandWindow`]: observed quotes accumulate
//!   a `HypergraphDelta` between repricings and apply to one live demand
//!   hypergraph in O(|delta|), instead of rebuilding it from scratch.
//! * [`driver`] — the transport-agnostic settle fan-out: the
//!   [`driver::SettleTransport`] boundary between the event loop and
//!   whatever answers quotes (the in-process broker here; `qp-server`'s
//!   TCP client in the serving layer), plus the arrival-order
//!   [`driver::settle_batch`] used by both.
//! * [`engine`] — the seeded, deterministic event loop: per-tick sampling on
//!   the coordinator, concurrent quote-and-settle across scoped workers,
//!   arrival-order aggregation (same seed ⇒ bit-identical revenue,
//!   regardless of worker count), and live pricing updates on tick
//!   boundaries — incremental in-place patches through
//!   `Broker::apply_delta` by default, with [`RepricingMode::FullRebuild`]
//!   as the legacy baseline.
//! * [`scenario`] — the scenario library (`steady_state`, `flash_crowd`,
//!   `shifting_demand`, `arbitrage_probe`), instantiable over any query
//!   pool.
//! * [`metrics`] — per-tick stats, repricing events, and the
//!   [`metrics::SimReport`] that serializes into `BENCH_sim.json`
//!   (revenue-over-time, conversion rate, quotes/sec, repricing latency).

pub mod demand;
pub mod driver;
pub mod engine;
pub mod metrics;
pub mod population;
pub mod repricing;
pub mod scenario;

pub use demand::DemandWindow;
pub use driver::{settle_batch, BrokerTransport, SettleTransport, SettleWorker, SettledQuote};
pub use engine::{run, run_with, RepricingMode, SimConfig};
pub use metrics::{bench_json, RepricingEvent, SimReport, TickStats};
pub use population::{BudgetModel, Buyer, BuyerSegment, Population};
pub use repricing::{EveryNTicks, Never, OnConversionDrift, RepricingPolicy};
pub use scenario::{library, PolicyKind, Scenario};
