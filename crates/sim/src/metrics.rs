//! Simulation metrics: per-tick statistics, repricing events, and the
//! aggregate [`SimReport`] with its `BENCH_sim.json` serializer.
//!
//! Revenue figures are accumulated in **arrival order** by the engine, so
//! every total here is bit-identical across runs with the same seed — even
//! when quotes were settled by racing worker threads. Throughput figures
//! (`quotes_per_sec`, repricing latency) are wall-clock measurements and
//! vary run to run by design.

use std::time::Duration;

use qp_telemetry::HistogramSnapshot;

/// Aggregate statistics for one completed tick.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TickStats {
    /// The tick index.
    pub tick: u64,
    /// Buyers that arrived this tick.
    pub arrivals: usize,
    /// Quotes that converted into sales.
    pub sold: usize,
    /// Quotes the buyer declined (or that failed to evaluate).
    pub declined: usize,
    /// Revenue realized this tick (arrival-order sum).
    pub revenue: f64,
    /// Budgets of this tick's declined buyers, summed in arrival order —
    /// an upper bound on the revenue the posted prices left on the table.
    pub forgone_revenue: f64,
    /// Estimated median quote+settle latency this tick (µs), read off the
    /// tick's log-bucketed telemetry histogram; 0 with no arrivals.
    pub latency_us_p50: u64,
    /// Estimated p95 quote+settle latency this tick (µs).
    pub latency_us_p95: u64,
    /// Estimated p99 quote+settle latency this tick (µs).
    pub latency_us_p99: u64,
}

impl TickStats {
    /// Conversion rate of this tick alone, or `None` with no arrivals.
    pub fn conversion_rate(&self) -> Option<f64> {
        let attempts = self.sold + self.declined;
        if attempts == 0 {
            None
        } else {
            Some(self.sold as f64 / attempts as f64)
        }
    }
}

/// One live repricing performed by the engine.
#[derive(Debug, Clone)]
pub struct RepricingEvent {
    /// The tick after which the swap happened.
    pub tick: u64,
    /// Wall-clock time from demand-hypergraph construction to
    /// `set_pricing` returning.
    pub latency: Duration,
    /// Number of observed demand edges the algorithm repriced over.
    pub observed_edges: usize,
}

/// The outcome of one simulated scenario run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scenario name (e.g. `flash_crowd`).
    pub scenario: String,
    /// Workload the broker was priced for (e.g. `skewed`).
    pub workload: String,
    /// The run's RNG seed.
    pub seed: u64,
    /// Registry algorithm used for live repricing.
    pub algorithm: String,
    /// Repricing policy label.
    pub policy: String,
    /// Arrival-process label.
    pub arrivals_label: String,
    /// Per-tick statistics, in tick order (the revenue-over-time series).
    pub ticks: Vec<TickStats>,
    /// Every live repricing, in tick order.
    pub repricings: Vec<RepricingEvent>,
    /// Log-bucketed histogram of every quote+settle latency in the run
    /// (µs) — the merge of the per-tick histograms behind each
    /// [`TickStats`]'s quantiles.
    pub quote_latency_us: HistogramSnapshot,
    /// Log-bucketed histogram of repricing latencies (ns), one sample per
    /// entry of `repricings`.
    pub repricing_latency_ns: HistogramSnapshot,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

impl SimReport {
    /// Total revenue, summed in tick (= arrival) order: deterministic for a
    /// fixed seed.
    pub fn total_revenue(&self) -> f64 {
        self.ticks.iter().map(|t| t.revenue).sum()
    }

    /// Total purchase attempts (every arrival is quoted exactly once).
    pub fn quotes(&self) -> usize {
        self.ticks.iter().map(|t| t.sold + t.declined).sum()
    }

    /// Total sales.
    pub fn sales(&self) -> usize {
        self.ticks.iter().map(|t| t.sold).sum()
    }

    /// Total declines.
    pub fn declines(&self) -> usize {
        self.ticks.iter().map(|t| t.declined).sum()
    }

    /// Overall conversion rate (0 when nothing was quoted).
    pub fn conversion_rate(&self) -> f64 {
        let q = self.quotes();
        if q == 0 {
            0.0
        } else {
            self.sales() as f64 / q as f64
        }
    }

    /// Quote throughput over the run's wall clock.
    pub fn quotes_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.quotes() as f64 / secs
        }
    }

    /// Mean repricing latency in milliseconds (0 with no repricings).
    pub fn mean_repricing_ms(&self) -> f64 {
        if self.repricings.is_empty() {
            return 0.0;
        }
        self.repricings
            .iter()
            .map(|r| r.latency.as_secs_f64() * 1e3)
            .sum::<f64>()
            / self.repricings.len() as f64
    }

    /// Estimated p50/p95/p99 repricing latency in milliseconds, read off
    /// the run's log-bucketed repricing histogram (zeros with no
    /// repricings).
    pub fn repricing_ms_percentiles(&self) -> (f64, f64, f64) {
        let (p50, p95, p99) = self.repricing_latency_ns.percentiles();
        (p50 as f64 / 1e6, p95 as f64 / 1e6, p99 as f64 / 1e6)
    }

    /// Total declined-buyer budget, summed in tick (= arrival) order —
    /// deterministic for a fixed seed, like revenue.
    pub fn total_forgone_revenue(&self) -> f64 {
        self.ticks.iter().map(|t| t.forgone_revenue).sum()
    }

    /// Cumulative revenue after each tick.
    pub fn cumulative_revenue(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.ticks
            .iter()
            .map(|t| {
                acc += t.revenue;
                acc
            })
            .collect()
    }

    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{:<16} {:<8} revenue {:>9.2}  conversion {:>5.1}%  {:>7.0} quotes/s  {} repricings ({:.1} ms mean)",
            self.scenario,
            self.workload,
            self.total_revenue(),
            100.0 * self.conversion_rate(),
            self.quotes_per_sec(),
            self.repricings.len(),
            self.mean_repricing_ms(),
        )
    }

    /// This run as one JSON object (used inside the `runs` array of
    /// `BENCH_sim.json`).
    pub fn to_json(&self) -> String {
        let series: Vec<String> = self
            .ticks
            .iter()
            .map(|t| {
                format!(
                    "{{\"tick\": {}, \"arrivals\": {}, \"sold\": {}, \"declined\": {}, \"revenue\": {}, \"forgone_revenue\": {}, \"latency_us_p50\": {}, \"latency_us_p95\": {}, \"latency_us_p99\": {}}}",
                    t.tick,
                    t.arrivals,
                    t.sold,
                    t.declined,
                    json_f64(t.revenue),
                    json_f64(t.forgone_revenue),
                    t.latency_us_p50,
                    t.latency_us_p95,
                    t.latency_us_p99
                )
            })
            .collect();
        let repricings: Vec<String> = self
            .repricings
            .iter()
            .map(|r| {
                format!(
                    "{{\"tick\": {}, \"latency_ms\": {}, \"observed_edges\": {}}}",
                    r.tick,
                    json_f64(r.latency.as_secs_f64() * 1e3),
                    r.observed_edges
                )
            })
            .collect();
        let (rp50, rp95, rp99) = self.repricing_ms_percentiles();
        let (qp50, qp95, qp99) = self.quote_latency_us.percentiles();
        format!(
            "{{\n      \"scenario\": {:?},\n      \"workload\": {:?},\n      \"seed\": {},\n      \"algorithm\": {:?},\n      \"policy\": {:?},\n      \"arrivals\": {:?},\n      \"ticks\": {},\n      \"quotes\": {},\n      \"sales\": {},\n      \"declines\": {},\n      \"total_revenue\": {},\n      \"forgone_revenue\": {},\n      \"conversion_rate\": {},\n      \"quotes_per_sec\": {},\n      \"quote_latency_us_p50\": {},\n      \"quote_latency_us_p95\": {},\n      \"quote_latency_us_p99\": {},\n      \"repricing_count\": {},\n      \"repricing_ms_p50\": {},\n      \"repricing_ms_p95\": {},\n      \"repricing_ms_p99\": {},\n      \"wall_ms\": {},\n      \"revenue_by_tick\": [{}],\n      \"repricings\": [{}]\n    }}",
            self.scenario,
            self.workload,
            self.seed,
            self.algorithm,
            self.policy,
            self.arrivals_label,
            self.ticks.len(),
            self.quotes(),
            self.sales(),
            self.declines(),
            json_f64(self.total_revenue()),
            json_f64(self.total_forgone_revenue()),
            json_f64(self.conversion_rate()),
            json_f64(self.quotes_per_sec()),
            qp50,
            qp95,
            qp99,
            self.repricings.len(),
            json_f64(rp50),
            json_f64(rp95),
            json_f64(rp99),
            json_f64(self.wall.as_secs_f64() * 1e3),
            series.join(", "),
            repricings.join(", ")
        )
    }
}

/// Renders a finite f64 exactly (shortest round-trip form); NaN/∞ — which
/// JSON cannot carry — become 0.
fn json_f64(x: f64) -> String {
    if !x.is_finite() {
        return "0.0".to_string();
    }
    let s = format!("{x}");
    // `{}` prints integral floats without a decimal point; keep them
    // unambiguously floating-point for strict consumers.
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Renders the whole `BENCH_sim.json` artifact from a batch of runs.
///
/// Schema 2: per-run repricing latency is reported as histogram-estimated
/// p50/p95/p99 (`repricing_ms_p50` …) instead of the old single
/// `mean_repricing_ms`, and runs carry `forgone_revenue` plus
/// `quote_latency_us_p50/p95/p99`; the per-tick series gained
/// `forgone_revenue` and `latency_us_p50/p95/p99`.
pub fn bench_json(seed: u64, threads: usize, runs: &[SimReport]) -> String {
    let body: Vec<String> = runs.iter().map(|r| r.to_json()).collect();
    format!(
        "{{\n  \"benchmark\": \"sim_scenarios\",\n  \"schema\": 2,\n  \"seed\": {},\n  \"threads\": {},\n  \"runs\": [\n    {}\n  ]\n}}\n",
        seed,
        threads,
        body.join(",\n    ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        let mut quote_latency_us = HistogramSnapshot::new();
        for us in [120, 140, 180, 900] {
            quote_latency_us.record(us);
        }
        let mut repricing_latency_ns = HistogramSnapshot::new();
        repricing_latency_ns.record(2_000_000);
        SimReport {
            scenario: "steady_state".into(),
            workload: "skewed".into(),
            seed: 42,
            algorithm: "UBP".into(),
            policy: "never".into(),
            arrivals_label: "poisson(4/tick)".into(),
            ticks: vec![
                TickStats {
                    tick: 0,
                    arrivals: 3,
                    sold: 2,
                    declined: 1,
                    revenue: 10.5,
                    forgone_revenue: 4.25,
                    latency_us_p50: 140,
                    latency_us_p95: 180,
                    latency_us_p99: 180,
                },
                TickStats {
                    tick: 1,
                    arrivals: 1,
                    sold: 0,
                    declined: 1,
                    revenue: 0.0,
                    forgone_revenue: 1.5,
                    latency_us_p50: 900,
                    latency_us_p95: 900,
                    latency_us_p99: 900,
                },
            ],
            repricings: vec![RepricingEvent {
                tick: 0,
                latency: Duration::from_millis(2),
                observed_edges: 3,
            }],
            quote_latency_us,
            repricing_latency_ns,
            wall: Duration::from_millis(100),
        }
    }

    #[test]
    fn aggregates_sum_over_ticks() {
        let r = report();
        assert_eq!(r.quotes(), 4);
        assert_eq!(r.sales(), 2);
        assert_eq!(r.declines(), 2);
        assert!((r.total_revenue() - 10.5).abs() < 1e-12);
        assert!((r.conversion_rate() - 0.5).abs() < 1e-12);
        assert!((r.quotes_per_sec() - 40.0).abs() < 1e-9);
        assert_eq!(r.cumulative_revenue(), vec![10.5, 10.5]);
        assert!((r.mean_repricing_ms() - 2.0).abs() < 1e-9);
        assert!((r.total_forgone_revenue() - 5.75).abs() < 1e-12);
        // Histogram-estimated quantiles land within a bucket width of the
        // exact 2 ms sample.
        let (p50, p95, p99) = r.repricing_ms_percentiles();
        assert!(p50 > 1.0 && p50 < 4.2, "{p50}");
        assert_eq!(p50.to_bits(), p95.to_bits());
        assert_eq!(p95.to_bits(), p99.to_bits());
        assert_eq!(r.ticks[0].conversion_rate(), Some(2.0 / 3.0));
    }

    #[test]
    fn json_artifact_has_the_required_fields() {
        let json = bench_json(42, 1, &[report()]);
        for key in [
            "\"benchmark\": \"sim_scenarios\"",
            "\"scenario\": \"steady_state\"",
            "\"workload\": \"skewed\"",
            "\"schema\": 2",
            "\"total_revenue\": 10.5",
            "\"forgone_revenue\": 5.75",
            "\"conversion_rate\": 0.5",
            "\"quotes_per_sec\"",
            "\"quote_latency_us_p50\"",
            "\"repricing_ms_p50\"",
            "\"repricing_ms_p99\"",
            "\"latency_us_p95\"",
            "\"revenue_by_tick\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(
            !json.contains("mean_repricing_ms"),
            "schema 2 replaced the single aggregate repricing figure"
        );
        // Balanced braces/brackets — a cheap structural sanity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_floats_are_finite_and_explicit() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(0.0), "0.0");
        assert_eq!(json_f64(-2.0), "-2.0");
        assert_eq!(json_f64(f64::NAN), "0.0");
        assert_eq!(json_f64(f64::INFINITY), "0.0");
    }
}
