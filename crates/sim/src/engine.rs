//! The discrete-event market loop.
//!
//! [`run`] drives a live [`Broker`] with a seeded, deterministic stream of
//! buyers. Each tick:
//!
//! 1. The arrival process draws how many buyers show up; the active
//!    population (schedules may shift populations mid-run) samples each
//!    buyer's segment, query, and budget. All randomness happens here, on
//!    the coordinating thread, from one seeded RNG.
//! 2. The buyers fan out across scoped **worker threads** through the
//!    transport-agnostic settle driver ([`crate::driver`]), each quoting
//!    and settling at the quoted price — against the shared broker
//!    in-process (the concurrent read traffic the broker's `RwLock`ed
//!    pricing exists for), or against a remote shard set when the
//!    transport is `qp-server`'s network client. Workers claim buyers from
//!    a work ledger and write outcomes back by arrival index.
//! 3. The coordinator folds outcomes **in arrival order** into the tick's
//!    statistics, so revenue totals are bit-identical for a fixed seed no
//!    matter how the workers interleaved.
//! 4. Every observed quote (conflict set plus the buyer's bid as the
//!    valuation) lands in a sliding [`DemandWindow`] that accumulates a
//!    `HypergraphDelta` instead of storing raw quotes. When the repricing
//!    policy fires, the delta is applied to the **live** demand hypergraph
//!    in O(|delta|) and the algorithm's incremental rule (when it has one —
//!    see `qp_pricing::algorithms::Repricer`) patches the broker's pricing
//!    in place through `Broker::apply_delta`; algorithms without the
//!    capability re-run in full on the maintained graph. The pre-delta
//!    behavior — rebuild the window's hypergraph from scratch and re-run the
//!    full algorithm — remains available as
//!    [`RepricingMode::FullRebuild`], and for UBP/UIP the two modes install
//!    identical prices (their incremental rules are exact).
//!
//! Because pricing swaps land on tick boundaries and within-tick pricing is
//! fixed, every buyer's outcome is a pure function of the seed — worker
//! threads affect wall-clock only, never revenue.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use qp_market::Broker;
use qp_pricing::algorithms::{self, Repricer};
use qp_telemetry::{HistogramSnapshot, TelemetrySink};
use qp_workloads::arrivals::ArrivalProcess;

use crate::demand::DemandWindow;
use crate::driver::{self, BrokerTransport, SettleTransport};
use crate::metrics::{RepricingEvent, SimReport, TickStats};
use crate::population::{Buyer, Population};
use crate::repricing::RepricingPolicy;

/// How a firing repricing policy turns observed demand into a new pricing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepricingMode {
    /// Apply the accumulated demand delta to the live hypergraph and let
    /// the algorithm's incremental rule patch the pricing in place (full
    /// recompute only for algorithms without the capability). The default.
    #[default]
    Incremental,
    /// Rebuild the demand hypergraph from the window in arrival order and
    /// re-run the full algorithm — the pre-delta hot path, kept as the
    /// benchmark baseline.
    FullRebuild,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of ticks to simulate.
    pub ticks: u64,
    /// RNG seed; two runs with the same seed (and the same broker build)
    /// report identical revenue.
    pub seed: u64,
    /// Quote worker threads per tick; 0 uses the available hardware
    /// parallelism. Any value yields the same revenue — only throughput
    /// changes.
    pub workers: usize,
    /// Registry algorithm re-run on observed demand at each repricing.
    pub algorithm: String,
    /// How many of the most recent observed quotes feed a repricing;
    /// 0 keeps every observation (unbounded).
    pub demand_window: usize,
    /// Incremental delta application vs full rebuild at each repricing.
    pub repricing_mode: RepricingMode,
    /// Telemetry sink the run reports into (tick latency histograms,
    /// sold/declined counters, repricing durations). The default
    /// [`TelemetrySink::Disabled`] costs nothing; enabling it never
    /// changes sampling, arrival order, or revenue.
    pub telemetry: TelemetrySink,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            ticks: 60,
            seed: 0xC0FFEE,
            workers: 0,
            algorithm: "UBP".to_string(),
            demand_window: 2048,
            repricing_mode: RepricingMode::Incremental,
            telemetry: TelemetrySink::default(),
        }
    }
}

/// Runs a simulation against a live broker — the in-process
/// [`BrokerTransport`] instantiation of [`run_with`].
///
/// `schedule` is a list of `(from_tick, population)` phases sorted by start
/// tick; the first phase must start at tick 0. A single-population run is
/// `&[(0, population)]`.
///
/// # Panics
///
/// Panics if the schedule is empty, does not start at tick 0, or is not
/// sorted by start tick, or if `cfg.algorithm` is not in the pricing
/// registry — configuration errors a simulation must fail loudly on.
pub fn run(
    broker: &Broker,
    schedule: &[(u64, Population)],
    arrivals: &ArrivalProcess,
    policy: &mut dyn RepricingPolicy,
    cfg: &SimConfig,
) -> SimReport {
    run_with(&BrokerTransport { broker }, schedule, arrivals, policy, cfg)
}

/// Runs a simulation against any [`SettleTransport`] — the same seeded
/// event loop whether quotes are answered by an in-process broker or a
/// remote shard set over the wire.
///
/// All sampling happens on this (the coordinating) thread from one seeded
/// RNG; the transport only answers quotes and applies repricings, so two
/// transports fronting the same pricing state produce **bit-identical
/// revenue** for the same seed. `qp-server`'s loadgen leans on exactly this
/// to check its network path against an in-process baseline.
///
/// # Panics
///
/// As [`run`].
pub fn run_with<T: SettleTransport>(
    transport: &T,
    schedule: &[(u64, Population)],
    arrivals: &ArrivalProcess,
    policy: &mut dyn RepricingPolicy,
    cfg: &SimConfig,
) -> SimReport {
    assert!(
        !schedule.is_empty(),
        "simulation needs at least one population"
    );
    assert_eq!(
        schedule[0].0, 0,
        "the population schedule must start at tick 0"
    );
    assert!(
        schedule.windows(2).all(|w| w[0].0 <= w[1].0),
        "the population schedule must be sorted by start tick"
    );
    let algo = algorithms::by_name(&cfg.algorithm)
        .unwrap_or_else(|| panic!("unknown repricing algorithm {:?}", cfg.algorithm));
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.workers
    };

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut repricer = Repricer::new(algo);
    let mut window = DemandWindow::new(transport.num_items(), cfg.demand_window);
    let mut ticks = Vec::with_capacity(cfg.ticks as usize);
    let mut repricings = Vec::new();
    // Per-tick scratch, hoisted so steady-state ticks reuse capacity
    // instead of reallocating: the sampled buyers, the settle fan-out's
    // claim slots, and the flush's applied-op log.
    let mut buyers: Vec<Buyer> = Vec::new();
    let mut slots: Vec<Option<driver::SettledQuote>> = Vec::new();
    let mut ops: Vec<qp_pricing::AppliedOp> = Vec::new();
    // Run-level latency histograms (always kept — they feed the report's
    // quantiles) and the optional live telemetry feed. The sink handles
    // are resolved once; with a disabled sink every call below is a
    // no-op branch.
    let mut quote_latency_us = HistogramSnapshot::new();
    let mut repricing_latency_ns = HistogramSnapshot::new();
    let sink_quote_hist = cfg.telemetry.histogram("sim.quote.us");
    let sink_reprice_hist = cfg.telemetry.histogram("sim.reprice.ns");
    let sink_sold = cfg.telemetry.counter("sim.sold");
    let sink_declined = cfg.telemetry.counter("sim.declined");
    let reprice_span = cfg.telemetry.span_handle("sim.reprice");
    // timing: run wall clock for the report's throughput figure.
    let started = Instant::now();

    for tick in 0..cfg.ticks {
        let phase = active_phase(schedule, tick);
        let population = &schedule[phase].1;
        let n = arrivals.arrivals_at(tick, &mut rng);
        buyers.clear();
        buyers.extend((0..n).map(|_| population.sample(&mut rng)));

        driver::settle_batch_into(
            transport, population, phase, &buyers, tick, workers, &mut slots,
        );

        let mut stats = TickStats {
            tick,
            arrivals: n,
            ..TickStats::default()
        };
        let mut tick_latency = HistogramSnapshot::new();
        for o in slots.drain(..) {
            let o = o.expect("settle workers fill every slot");
            if o.sold {
                stats.sold += 1;
                stats.revenue += o.price;
                sink_sold.inc();
            } else {
                stats.declined += 1;
                stats.forgone_revenue += o.budget;
                sink_declined.inc();
            }
            tick_latency.record(o.latency_us);
            sink_quote_hist.record(o.latency_us);
            window.observe(o.conflict_set, o.budget);
        }
        let (p50, p95, p99) = tick_latency.percentiles();
        stats.latency_us_p50 = p50;
        stats.latency_us_p95 = p95;
        stats.latency_us_p99 = p99;
        quote_latency_us.merge(&tick_latency);

        if policy.should_reprice(&stats) && !window.is_empty() {
            let _reprice_guard = reprice_span.enter();
            // timing: repricing duration feeds the report's latency
            // histogram; it never feeds the repricing decision itself.
            let t0 = Instant::now();
            let observed_edges = window.len();
            match cfg.repricing_mode {
                RepricingMode::Incremental => {
                    let demand = window.flush_into(&mut ops);
                    let (_, patch) = repricer.reprice(demand, &ops);
                    transport.apply_patch(&patch);
                }
                RepricingMode::FullRebuild => {
                    window.flush();
                    let demand = window.rebuild_in_arrival_order();
                    transport.install_pricing(repricer.run_full(&demand).pricing);
                }
            }
            let latency = t0.elapsed();
            repricing_latency_ns.record(latency.as_nanos() as u64);
            sink_reprice_hist.record(latency.as_nanos() as u64);
            repricings.push(RepricingEvent {
                tick,
                latency,
                observed_edges,
            });
        }
        ticks.push(stats);
    }

    SimReport {
        scenario: String::new(),
        workload: String::new(),
        seed: cfg.seed,
        algorithm: cfg.algorithm.clone(),
        policy: policy.label(),
        arrivals_label: arrivals.label(),
        ticks,
        repricings,
        quote_latency_us,
        repricing_latency_ns,
        wall: started.elapsed(),
    }
}

/// The index of the schedule phase governing `tick`: the last entry whose
/// start is not after it.
fn active_phase(schedule: &[(u64, Population)], tick: u64) -> usize {
    let mut current = 0;
    for (i, (start, _)) in schedule.iter().enumerate() {
        if *start <= tick {
            current = i;
        } else {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{BudgetModel, BuyerSegment};
    use crate::repricing::{EveryNTicks, Never};
    use qp_market::SupportConfig;
    use qp_qdb::{ColumnType, Database, Query, Relation, Schema, Value};

    fn tiny_broker() -> Broker {
        let mut rel = Relation::new(Schema::new(vec![
            ("name", ColumnType::Str),
            ("size", ColumnType::Int),
        ]));
        for i in 0..12 {
            rel.push(vec![format!("row{i}").into(), Value::Int(i)])
                .unwrap();
        }
        let mut db = Database::new();
        db.add_table("T", rel);
        Broker::builder(db)
            .support_config(SupportConfig::with_size(40))
            .algorithm("UBP")
            .anticipate(Query::scan("T"), 30.0)
            .build()
            .expect("UBP is registered")
    }

    fn population() -> Population {
        Population::new(vec![BuyerSegment::new(
            "all",
            vec![Query::scan("T")],
            BudgetModel::Uniform { lo: 0.0, hi: 60.0 },
        )])
    }

    #[test]
    fn run_produces_one_stats_row_per_tick() {
        let broker = tiny_broker();
        let report = run(
            &broker,
            &[(0, population())],
            &ArrivalProcess::Poisson { rate: 3.0 },
            &mut Never,
            &SimConfig {
                ticks: 10,
                seed: 1,
                ..SimConfig::default()
            },
        );
        assert_eq!(report.ticks.len(), 10);
        assert_eq!(report.quotes(), report.sales() + report.declines());
        assert!(report.repricings.is_empty());
        // The broker's ledger saw the same traffic the report did.
        let ledger = broker.ledger();
        assert_eq!(ledger.len(), report.sales());
        assert_eq!(ledger.declined_count(), report.declines());
        assert!((ledger.total() - report.total_revenue()).abs() < 1e-6);
        // Sales are tick-stamped within the simulated horizon.
        assert!(ledger.sales().iter().all(|s| s.tick < 10));
    }

    #[test]
    fn repricing_policy_fires_and_records_latency() {
        let broker = tiny_broker();
        let report = run(
            &broker,
            &[(0, population())],
            &ArrivalProcess::Poisson { rate: 4.0 },
            &mut EveryNTicks::new(3),
            &SimConfig {
                ticks: 9,
                seed: 2,
                ..SimConfig::default()
            },
        );
        // Fires after ticks 2, 5, 8 (skipping any with no demand yet).
        assert!(!report.repricings.is_empty());
        assert!(report.repricings.len() <= 3);
        for r in &report.repricings {
            assert!((r.tick + 1) % 3 == 0);
            assert!(r.observed_edges > 0);
        }
    }

    #[test]
    fn schedules_shift_the_active_population() {
        let rich = Population::new(vec![BuyerSegment::new(
            "rich",
            vec![Query::scan("T")],
            BudgetModel::Uniform { lo: 1e6, hi: 2e6 },
        )]);
        let broke = Population::new(vec![BuyerSegment::new(
            "broke",
            vec![Query::scan("T")],
            BudgetModel::Uniform { lo: 0.0, hi: 1e-9 },
        )]);
        let broker = tiny_broker();
        let report = run(
            &broker,
            &[(0, rich), (5, broke)],
            &ArrivalProcess::Poisson { rate: 5.0 },
            &mut Never,
            &SimConfig {
                ticks: 10,
                seed: 3,
                ..SimConfig::default()
            },
        );
        let early: usize = report.ticks[..5].iter().map(|t| t.declined).sum();
        let late: usize = report.ticks[5..].iter().map(|t| t.sold).sum();
        assert_eq!(early, 0, "rich buyers never decline");
        assert_eq!(late, 0, "broke buyers never buy a priced scan");
    }

    #[test]
    fn incremental_and_full_rebuild_install_identical_ubp_prices() {
        // UBP's incremental rule is exact, so the two repricing modes must
        // produce bit-identical revenue trajectories for the same seed.
        let run_mode = |mode: RepricingMode| {
            let broker = tiny_broker();
            run(
                &broker,
                &[(0, population())],
                &ArrivalProcess::Poisson { rate: 5.0 },
                &mut EveryNTicks::new(2),
                &SimConfig {
                    ticks: 12,
                    seed: 11,
                    demand_window: 16, // small window forces evictions
                    repricing_mode: mode,
                    ..SimConfig::default()
                },
            )
        };
        let inc = run_mode(RepricingMode::Incremental);
        let full = run_mode(RepricingMode::FullRebuild);
        assert!(!inc.repricings.is_empty(), "the policy fired");
        assert_eq!(
            inc.total_revenue().to_bits(),
            full.total_revenue().to_bits()
        );
        for (a, b) in inc.ticks.iter().zip(&full.ticks) {
            assert_eq!(a.sold, b.sold);
            assert_eq!(a.revenue.to_bits(), b.revenue.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "unknown repricing algorithm")]
    fn unknown_algorithms_fail_loudly() {
        let broker = tiny_broker();
        run(
            &broker,
            &[(0, population())],
            &ArrivalProcess::Poisson { rate: 1.0 },
            &mut Never,
            &SimConfig {
                algorithm: "nope".to_string(),
                ..SimConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "sorted by start tick")]
    fn unsorted_schedules_are_rejected() {
        let broker = tiny_broker();
        run(
            &broker,
            &[(0, population()), (10, population()), (5, population())],
            &ArrivalProcess::Poisson { rate: 1.0 },
            &mut Never,
            &SimConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "start at tick 0")]
    fn schedules_must_start_at_tick_zero() {
        let broker = tiny_broker();
        run(
            &broker,
            &[(3, population())],
            &ArrivalProcess::Poisson { rate: 1.0 },
            &mut Never,
            &SimConfig::default(),
        );
    }
}
