//! The sliding demand window, maintained by incremental deltas.
//!
//! Before this module, every repricing rebuilt the demand hypergraph from
//! the observed-quote window — O(window) `ItemSet` clones plus a fresh
//! index, the hot path that dominates live repricing at scale. The
//! [`DemandWindow`] instead owns **one** live [`Hypergraph`] and buffers
//! changes between repricings: fresh observations queue in arrival order,
//! evictions of already-flushed edges queue their ids, and
//! [`DemandWindow::flush`] turns both into one [`HypergraphDelta`], applies
//! it in O(|delta|), and returns the [`AppliedOp`] log an incremental
//! repricer consumes.
//!
//! Memory stays **O(window)** no matter how rarely the policy fires: the
//! fresh buffer is itself bounded by the window (evicting an observation
//! that never got flushed simply drops it — it would have entered and left
//! the graph without affecting any repricing), and the evicted-id list is
//! bounded by the graph size.
//!
//! [`Hypergraph::remove_edge`] swap-removes (the last edge is renumbered
//! into the vacated slot), so the flush queues removals in **descending id
//! order** — the renumbered edge then always lands on an id above every
//! remaining removal, keeping the queued indices valid — and re-threads its
//! arrival-order bookkeeping from the renumberings the `AppliedOp` log
//! reports.

use std::collections::VecDeque;

use qp_core::ItemSet;
use qp_pricing::{AppliedOp, Hypergraph, HypergraphDelta};

/// A bounded, arrival-ordered window of observed demand, backed by an
/// incrementally-maintained [`Hypergraph`].
pub struct DemandWindow {
    demand: Hypergraph,
    /// Arrival order of the flushed, not-yet-evicted edges (ids into
    /// `demand`, valid as of the last flush).
    order: VecDeque<usize>,
    /// Flushed edges evicted since the last flush, pending removal.
    evicted: Vec<usize>,
    /// Observations since the last flush, in arrival order.
    fresh: VecDeque<(ItemSet, f64)>,
    /// Maximum window size; 0 keeps every observation.
    window: usize,
    /// Reusable delta staging buffer — refilled and drained by every flush,
    /// so steady-state ticks build their delta without allocating.
    delta: HypergraphDelta,
    /// Reusable edge-id → arrival-position map for eviction re-threading.
    pos: Vec<usize>,
}

impl DemandWindow {
    /// An empty window over `num_items` support databases, keeping at most
    /// `window` observations (0 = unbounded).
    pub fn new(num_items: usize, window: usize) -> DemandWindow {
        DemandWindow {
            demand: Hypergraph::new(num_items),
            order: VecDeque::new(),
            evicted: Vec::new(),
            fresh: VecDeque::new(),
            window,
            delta: HypergraphDelta::new(),
            pos: Vec::new(),
        }
    }

    /// Records one observed quote: the conflict set plus the buyer's bid as
    /// the demand valuation (negative bids clamp to 0). Evicts the oldest
    /// observation when the window is full — a flushed edge queues its
    /// removal, an unflushed one is dropped outright (it can no longer
    /// affect any repricing).
    pub fn observe(&mut self, conflict_set: ItemSet, bid: f64) {
        self.fresh.push_back((conflict_set, bid.max(0.0)));
        if self.window > 0 && self.len() > self.window {
            match self.order.pop_front() {
                Some(id) => self.evicted.push(id),
                None => {
                    self.fresh.pop_front();
                }
            }
        }
    }

    /// Number of observations the window will hold once pending changes
    /// apply.
    pub fn len(&self) -> usize {
        self.order.len() + self.fresh.len()
    }

    /// True when the window holds no observations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of mutations the next flush will apply.
    pub fn pending_ops(&self) -> usize {
        self.evicted.len() + self.fresh.len()
    }

    /// Applies the buffered evictions and observations to the live demand
    /// hypergraph as one delta and returns it together with the
    /// [`AppliedOp`] log — O(|delta|) graph work (plus one O(window)
    /// arrival-order re-thread when evictions occurred), never a rebuild.
    pub fn flush(&mut self) -> (&Hypergraph, Vec<AppliedOp>) {
        let mut ops = Vec::new();
        let demand = self.flush_into(&mut ops);
        (demand, ops)
    }

    /// [`DemandWindow::flush`] writing the [`AppliedOp`] log into a
    /// caller-owned buffer (cleared first), so a per-tick caller reuses the
    /// log allocation — together with the window's internal delta and
    /// position buffers, a steady-state flush allocates nothing.
    pub fn flush_into(&mut self, ops: &mut Vec<AppliedOp>) -> &Hypergraph {
        // Descending removal order keeps every queued id valid under
        // swap-removal (see the module docs).
        self.evicted.sort_unstable_by(|a, b| b.cmp(a));
        let pre_removal_edges = self.order.len() + self.evicted.len();
        let had_evictions = !self.evicted.is_empty();
        debug_assert!(self.delta.is_empty(), "the staging delta is drained");
        for &id in &self.evicted {
            self.delta.remove_edge(id);
        }
        self.evicted.clear();
        for (set, bid) in self.fresh.drain(..) {
            self.delta.add_edge(set, bid);
        }
        self.demand.apply_delta_drain(&mut self.delta, ops);

        // Re-thread the arrival order from the authoritative renumberings
        // (every `from`/`to` id is below the pre-removal edge count). Only
        // removals renumber, so a flush without evictions — the common case
        // while the window fills — skips the O(window) position map and
        // just appends the new ids.
        self.pos.clear();
        if had_evictions {
            self.pos.resize(pre_removal_edges, usize::MAX);
            for (i, &id) in self.order.iter().enumerate() {
                self.pos[id] = i;
            }
        }
        for op in ops.iter() {
            match op {
                AppliedOp::Removed {
                    moved: Some((from, to)),
                    ..
                } => {
                    // The moved edge is always a survivor: removals run in
                    // descending id order, so the renumbered (former last)
                    // edge can never itself be pending removal.
                    let i = self.pos[*from];
                    debug_assert_ne!(i, usize::MAX, "moved edge must be tracked");
                    self.order[i] = *to;
                    self.pos[*to] = i;
                }
                AppliedOp::Removed { moved: None, .. } => {}
                AppliedOp::Added { edge, .. } => self.order.push_back(*edge),
                AppliedOp::Revalued { .. } => {
                    unreachable!("the window never queues revalues")
                }
            }
        }
        debug_assert_eq!(self.demand.num_edges(), self.order.len());
        &self.demand
    }

    /// A fresh hypergraph with the window's edges in **arrival order** — the
    /// full-rebuild baseline (exactly what repricing built before deltas
    /// existed). Call after [`DemandWindow::flush`]; panics if mutations are
    /// still pending.
    pub fn rebuild_in_arrival_order(&self) -> Hypergraph {
        assert!(
            self.pending_ops() == 0,
            "flush the window before rebuilding from it"
        );
        let mut h = Hypergraph::new(self.demand.num_items());
        for &id in &self.order {
            let e = self.demand.edge(id);
            h.add_edge_set(e.items.clone(), e.valuation);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[usize]) -> ItemSet {
        items.iter().copied().collect()
    }

    #[test]
    fn observations_accumulate_and_flush_applies_them() {
        let mut w = DemandWindow::new(4, 0);
        assert!(w.is_empty());
        w.observe(set(&[0, 1]), 5.0);
        w.observe(set(&[2]), -3.0); // clamps to 0
        assert_eq!(w.len(), 2);
        assert_eq!(w.pending_ops(), 2);

        let (h, ops) = w.flush();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(ops.len(), 2);
        assert_eq!(h.edge(0).valuation, 5.0);
        assert_eq!(h.edge(1).valuation, 0.0);
        assert_eq!(w.pending_ops(), 0);
    }

    #[test]
    fn eviction_tracks_swap_renumbering_across_flushes() {
        // Window of 3; observe 6 bids with distinct valuations so the
        // surviving set is recognizable.
        let mut w = DemandWindow::new(8, 3);
        for i in 0..4u64 {
            w.observe(set(&[i as usize]), i as f64);
        }
        // Mid-stream flush exercises deltas straddling flush boundaries.
        w.flush();
        for i in 4..6u64 {
            w.observe(set(&[i as usize]), i as f64);
        }
        assert_eq!(w.len(), 3);
        let (h, _) = w.flush();
        let mut vals: Vec<f64> = h.edges().iter().map(|e| e.valuation).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, vec![3.0, 4.0, 5.0], "last three observations survive");
    }

    #[test]
    fn arrival_order_rebuild_matches_the_old_full_path() {
        let mut w = DemandWindow::new(8, 4);
        for i in 0..7u64 {
            w.observe(set(&[(i % 5) as usize, 5]), 10.0 + i as f64);
        }
        w.flush();
        let rebuilt = w.rebuild_in_arrival_order();
        // The old path kept the last `window` observations in arrival order.
        let vals: Vec<f64> = rebuilt.edges().iter().map(|e| e.valuation).collect();
        assert_eq!(vals, vec![13.0, 14.0, 15.0, 16.0]);
        assert_eq!(rebuilt.num_edges(), 4);
    }

    #[test]
    fn memory_stays_bounded_when_no_flush_ever_happens() {
        // A policy that never fires: the old implementation queued one op
        // per observation forever; the window must instead stay O(window).
        let mut w = DemandWindow::new(8, 16);
        for i in 0..10_000u64 {
            w.observe(set(&[(i % 8) as usize]), i as f64);
        }
        assert_eq!(w.len(), 16);
        assert!(
            w.pending_ops() <= 16,
            "pending work must stay bounded by the window, got {}",
            w.pending_ops()
        );
        let (h, _) = w.flush();
        let mut vals: Vec<f64> = h.edges().iter().map(|e| e.valuation).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = (9984..10_000).map(|i| i as f64).collect();
        assert_eq!(vals, expected, "exactly the last 16 observations survive");
    }

    #[test]
    fn flushed_edges_evictions_stay_bounded_too() {
        // Fill and flush, then keep observing without flushing: evictions of
        // flushed edges queue ids (bounded by the graph) while fresh stays
        // bounded by the window.
        let mut w = DemandWindow::new(8, 4);
        for i in 0..4u64 {
            w.observe(set(&[i as usize]), i as f64);
        }
        w.flush();
        for i in 4..104u64 {
            w.observe(set(&[(i % 8) as usize]), i as f64);
        }
        assert_eq!(w.len(), 4);
        assert!(w.pending_ops() <= 8, "got {}", w.pending_ops());
        let (h, _) = w.flush();
        let mut vals: Vec<f64> = h.edges().iter().map(|e| e.valuation).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, vec![100.0, 101.0, 102.0, 103.0]);
    }

    #[test]
    #[should_panic(expected = "flush the window")]
    fn rebuild_requires_a_flush_first() {
        let mut w = DemandWindow::new(2, 0);
        w.observe(set(&[0]), 1.0);
        let _ = w.rebuild_in_arrival_order();
    }
}
