//! The scenario library: named, reproducible market situations.
//!
//! Each [`Scenario`] bundles a population schedule, an arrival process, a
//! repricing policy, and a horizon. [`library`] instantiates the four
//! standard scenarios over any query pool (the paper's world workloads,
//! SSB, TPC-H, …), so every workload can be stress-tested under the same
//! four traffic shapes:
//!
//! | Scenario | Traffic | Repricing | What it probes |
//! |----------|---------|-----------|----------------|
//! | `steady_state` | constant Poisson | never | baseline revenue accrual |
//! | `flash_crowd` | one high-rate window | fixed cadence | repricing under a demand spike |
//! | `shifting_demand` | constant Poisson, population swaps mid-run | conversion drift | adapting prices to a new buyer mix |
//! | `arbitrage_probe` | periodic bursts | fixed cadence | lowball probing of narrow sub-queries vs broad buyers |

use qp_market::Broker;
use qp_qdb::Query;
use qp_workloads::arrivals::ArrivalProcess;

use crate::engine::{self, SimConfig};
use crate::metrics::SimReport;
use crate::population::{BudgetModel, BuyerSegment, Population};
use crate::repricing::{EveryNTicks, Never, OnConversionDrift, RepricingPolicy};

/// A declarative repricing-policy choice (the trait objects themselves are
/// stateful, so scenarios carry the recipe and build a fresh policy per run).
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Keep the initial pricing for the whole run.
    Never,
    /// Reprice on a fixed cadence.
    EveryNTicks {
        /// Cadence in ticks.
        every: u64,
    },
    /// Reprice when conversion drifts off-target.
    OnConversionDrift {
        /// Target conversion rate.
        target: f64,
        /// Allowed drift before repricing.
        tolerance: f64,
        /// Minimum quotes before drift is trusted.
        min_quotes: usize,
    },
}

impl PolicyKind {
    /// Builds a fresh policy instance.
    pub fn build(&self) -> Box<dyn RepricingPolicy> {
        match self {
            PolicyKind::Never => Box::new(Never),
            PolicyKind::EveryNTicks { every } => Box::new(EveryNTicks::new(*every)),
            PolicyKind::OnConversionDrift {
                target,
                tolerance,
                min_quotes,
            } => Box::new(OnConversionDrift::new(*target, *tolerance, *min_quotes)),
        }
    }
}

/// A named, fully-specified market situation, runnable against any broker
/// priced for the same query pool.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (stable, used in reports and `BENCH_sim.json`).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Population phases: `(from_tick, population)`, first phase at tick 0.
    pub schedule: Vec<(u64, Population)>,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// The repricing-policy recipe.
    pub policy: PolicyKind,
    /// Simulation horizon in ticks.
    pub ticks: u64,
}

impl Scenario {
    /// Runs the scenario against `broker`. The config's tick count is
    /// overridden by the scenario's horizon; seed, workers, and repricing
    /// algorithm come from `cfg`.
    pub fn run(&self, broker: &Broker, cfg: &SimConfig) -> SimReport {
        let mut policy = self.policy.build();
        let cfg = SimConfig {
            ticks: self.ticks,
            ..cfg.clone()
        };
        let mut report = engine::run(
            broker,
            &self.schedule,
            &self.arrivals,
            policy.as_mut(),
            &cfg,
        );
        report.scenario = self.name.to_string();
        report
    }
}

/// Instantiates the four standard scenarios over a query pool, with a
/// `ticks`-tick horizon each.
///
/// Panics if the pool is empty.
pub fn library(queries: &[Query], ticks: u64) -> Vec<Scenario> {
    assert!(
        !queries.is_empty(),
        "the scenario library needs a query pool"
    );
    let pool: Vec<Query> = queries.to_vec();
    // The probe pool: the front of the workload, which for the paper's
    // generators is where the narrow template expansions live.
    let narrow: Vec<Query> = queries[..queries.len().div_ceil(4)].to_vec();
    let mid = ticks / 2;

    vec![
        Scenario {
            name: "steady_state",
            description: "constant traffic, fixed pricing: the baseline revenue accrual",
            schedule: vec![(
                0,
                Population::new(vec![
                    BuyerSegment::new(
                        "regulars",
                        pool.clone(),
                        BudgetModel::Uniform { lo: 2.0, hi: 35.0 },
                    ),
                    BuyerSegment::new(
                        "premium",
                        pool.clone(),
                        BudgetModel::Normal {
                            mean: 60.0,
                            variance: 100.0,
                        },
                    )
                    .weight(0.35)
                    .skew(1.2),
                ]),
            )],
            arrivals: ArrivalProcess::Poisson { rate: 5.0 },
            policy: PolicyKind::Never,
            ticks,
        },
        Scenario {
            name: "flash_crowd",
            description: "a viral traffic spike mid-run, repriced on a fixed cadence",
            schedule: vec![(
                0,
                Population::new(vec![
                    BuyerSegment::new(
                        "regulars",
                        pool.clone(),
                        BudgetModel::Uniform { lo: 2.0, hi: 40.0 },
                    ),
                    BuyerSegment::new(
                        "rubberneckers",
                        pool.clone(),
                        BudgetModel::Exponential { mean: 8.0 },
                    )
                    .weight(0.8)
                    .skew(1.5),
                ]),
            )],
            arrivals: ArrivalProcess::FlashCrowd {
                base_rate: 2.0,
                peak_rate: 16.0,
                start: ticks / 3,
                duration: (ticks / 4).max(1),
            },
            policy: PolicyKind::EveryNTicks { every: 5 },
            ticks,
        },
        Scenario {
            name: "shifting_demand",
            description: "the buyer mix swaps from enterprise to long-tail mid-run; \
                          conversion drift triggers repricing on the demand actually seen",
            schedule: vec![
                (
                    0,
                    Population::new(vec![BuyerSegment::new(
                        "enterprise",
                        pool.clone(),
                        BudgetModel::Normal {
                            mean: 70.0,
                            variance: 225.0,
                        },
                    )]),
                ),
                (
                    mid,
                    Population::new(vec![BuyerSegment::new(
                        "long-tail",
                        pool.clone(),
                        BudgetModel::Exponential { mean: 6.0 },
                    )
                    .skew(1.5)]),
                ),
            ],
            arrivals: ArrivalProcess::Poisson { rate: 6.0 },
            policy: PolicyKind::OnConversionDrift {
                target: 0.6,
                tolerance: 0.25,
                min_quotes: 30,
            },
            ticks,
        },
        Scenario {
            name: "arbitrage_probe",
            description: "lowball probers hammer narrow sub-queries in bursts while a few \
                          whales buy broad bundles — the traffic shape arbitrage-free \
                          pricing must survive",
            schedule: vec![(
                0,
                Population::new(vec![
                    BuyerSegment::new("probers", narrow, BudgetModel::Exponential { mean: 3.0 })
                        .weight(0.7)
                        .skew(2.0),
                    BuyerSegment::new(
                        "whales",
                        pool,
                        BudgetModel::Normal {
                            mean: 90.0,
                            variance: 400.0,
                        },
                    )
                    .weight(0.3),
                ]),
            )],
            arrivals: ArrivalProcess::Bursty {
                base_rate: 3.0,
                burst_every: 8,
                burst_rate: 12.0,
            },
            policy: PolicyKind::EveryNTicks { every: 8 },
            ticks,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Vec<Query> {
        (0..n).map(|i| Query::scan(format!("T{i}"))).collect()
    }

    #[test]
    fn library_covers_four_scenarios_and_three_policies() {
        let lib = library(&pool(20), 40);
        let names: Vec<&str> = lib.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "steady_state",
                "flash_crowd",
                "shifting_demand",
                "arbitrage_probe"
            ]
        );
        assert!(lib.iter().any(|s| s.policy == PolicyKind::Never));
        assert!(lib
            .iter()
            .any(|s| matches!(s.policy, PolicyKind::EveryNTicks { .. })));
        assert!(lib
            .iter()
            .any(|s| matches!(s.policy, PolicyKind::OnConversionDrift { .. })));
        for s in &lib {
            assert_eq!(s.ticks, 40);
            assert_eq!(s.schedule[0].0, 0);
            assert!(!s.description.is_empty());
        }
    }

    #[test]
    fn shifting_demand_has_two_phases() {
        let lib = library(&pool(8), 30);
        let shifting = lib.iter().find(|s| s.name == "shifting_demand").unwrap();
        assert_eq!(shifting.schedule.len(), 2);
        assert_eq!(shifting.schedule[1].0, 15);
    }

    #[test]
    fn arbitrage_probers_draw_from_the_front_of_the_pool() {
        let lib = library(&pool(40), 30);
        let probe = lib.iter().find(|s| s.name == "arbitrage_probe").unwrap();
        let probers = &probe.schedule[0].1.segments()[0];
        assert_eq!(probers.name, "probers");
        assert_eq!(probers.queries.len(), 10);
        assert!(probers.query_skew.is_some());
    }

    #[test]
    fn policy_recipes_build_fresh_instances() {
        assert_eq!(PolicyKind::Never.build().label(), "never");
        assert!(PolicyKind::EveryNTicks { every: 4 }
            .build()
            .label()
            .contains('4'));
        assert!(PolicyKind::OnConversionDrift {
            target: 0.5,
            tolerance: 0.1,
            min_quotes: 10
        }
        .build()
        .label()
        .contains("drift"));
    }

    #[test]
    #[should_panic(expected = "query pool")]
    fn empty_pools_are_rejected() {
        library(&[], 10);
    }
}
