//! Benchmarks of conflict-set computation: the naive engine vs the
//! delta-aware engine on a slice of the skewed workload.

use criterion::{criterion_group, criterion_main, Criterion};
use qp_market::{
    build_hypergraph, DeltaConflictEngine, NaiveConflictEngine, SupportConfig, SupportSet,
};
use qp_workloads::queries::skewed;
use qp_workloads::world::{self, WorldConfig};
use qp_workloads::Scale;

fn bench_conflict_engines(c: &mut Criterion) {
    let cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&cfg);
    let workload = skewed::workload(&db, cfg.countries);
    let queries = &workload.queries[..60];
    let support = SupportSet::generate(&db, &SupportConfig::with_size(80));

    let mut group = c.benchmark_group("conflict_set_construction");
    group.sample_size(10);
    group.bench_function("naive", |b| {
        let engine = NaiveConflictEngine::new(&db, &support);
        b.iter(|| build_hypergraph(&engine, queries))
    });
    group.bench_function("delta_aware", |b| {
        let engine = DeltaConflictEngine::new(&db, &support);
        b.iter(|| build_hypergraph(&engine, queries))
    });
    group.finish();
}

criterion_group!(benches, bench_conflict_engines);
criterion_main!(benches);
