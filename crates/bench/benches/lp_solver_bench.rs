//! Benchmarks of the simplex solver on LPs shaped like the pricing LPs
//! (packing constraints with a handful of non-zeros per row).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qp_lp::{ConstraintOp, LpProblem, Sense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pricing_like_lp(vars: usize, rows: usize, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LpProblem::new(Sense::Maximize, vars);
    for j in 0..vars {
        lp.set_objective(j, rng.gen_range(0.5..2.0));
    }
    for _ in 0..rows {
        let nnz = rng.gen_range(2..8);
        let coeffs: Vec<(usize, f64)> = (0..nnz).map(|_| (rng.gen_range(0..vars), 1.0)).collect();
        lp.add_constraint(coeffs, ConstraintOp::Le, rng.gen_range(5.0..50.0));
    }
    // Per-variable caps keep the LP bounded even when a variable appears in
    // no packing row (mirrors the valuation caps of the pricing LPs).
    for j in 0..vars {
        lp.add_constraint(vec![(j, 1.0)], ConstraintOp::Le, 100.0);
    }
    lp
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    group.sample_size(10);
    for &(vars, rows) in &[(50usize, 40usize), (200, 150), (400, 300)] {
        let lp = pricing_like_lp(vars, rows, 5);
        group.bench_with_input(
            BenchmarkId::new("solve", format!("{vars}v_{rows}c")),
            &lp,
            |b, lp| b.iter(|| lp.solve().unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simplex);
criterion_main!(benches);
