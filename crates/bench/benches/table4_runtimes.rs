//! Criterion counterpart of Table 4: per-algorithm running time on a small
//! skewed-workload hypergraph (Uniform[1,100] valuations).

use criterion::{criterion_group, criterion_main, Criterion};
use qp_bench::{build_instance_with_support, AlgoConfig, WorkloadKind};
use qp_pricing::algorithms::{
    capacity_item_price, layering, lp_item_price, uniform_bundle_price, uniform_item_price,
};
use qp_workloads::valuations::{assign_valuations, ValuationModel};
use qp_workloads::Scale;

fn bench_algorithms(c: &mut Criterion) {
    let inst = build_instance_with_support(WorkloadKind::Skewed, Scale::Test, 120);
    let mut h = inst.hypergraph.clone();
    assign_valuations(&mut h, &ValuationModel::SampledUniform { k: 100.0 }, 7);
    let cfg = AlgoConfig::at_scale(Scale::Test);

    let mut group = c.benchmark_group("table4_skewed_workload");
    group.sample_size(10);
    group.bench_function("UBP", |b| b.iter(|| uniform_bundle_price(&h)));
    group.bench_function("UIP", |b| b.iter(|| uniform_item_price(&h)));
    group.bench_function("Layering", |b| b.iter(|| layering(&h)));
    group.bench_function("LPIP", |b| b.iter(|| lp_item_price(&h, &cfg.lpip)));
    group.bench_function("CIP", |b| b.iter(|| capacity_item_price(&h, &cfg.cip)));
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
