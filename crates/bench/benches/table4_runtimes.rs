//! Criterion counterpart of Table 4: per-algorithm running time on a small
//! skewed-workload hypergraph (Uniform[1,100] valuations), with the roster
//! drawn from the `qp_pricing::algorithms` registry.

use criterion::{criterion_group, criterion_main, Criterion};
use qp_bench::{build_instance_with_support, AlgoConfig, WorkloadKind};
use qp_workloads::valuations::{assign_valuations, ValuationModel};
use qp_workloads::Scale;

fn bench_algorithms(c: &mut Criterion) {
    let inst = build_instance_with_support(WorkloadKind::Skewed, Scale::Test, 120);
    let mut h = inst.hypergraph.clone();
    assign_valuations(&mut h, &ValuationModel::SampledUniform { k: 100.0 }, 7);
    let cfg = AlgoConfig::at_scale(Scale::Test);

    let mut group = c.benchmark_group("table4_skewed_workload");
    group.sample_size(10);
    for algo in cfg.algorithms() {
        group.bench_function(algo.name().to_string(), |b| b.iter(|| algo.run(&h)));
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
