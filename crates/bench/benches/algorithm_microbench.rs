//! Microbenchmarks of the pricing algorithms on synthetic hypergraphs of
//! increasing size (independent of any dataset), used to track algorithmic
//! regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qp_pricing::algorithms::{layering, uniform_bundle_price, uniform_item_price};
use qp_pricing::Hypergraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_hypergraph(items: usize, edges: usize, max_size: usize, seed: u64) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = Hypergraph::new(items);
    for _ in 0..edges {
        let size = rng.gen_range(1..=max_size);
        let members: Vec<usize> = (0..size).map(|_| rng.gen_range(0..items)).collect();
        h.add_edge(members, rng.gen_range(1.0..100.0));
    }
    h
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_scaling");
    group.sample_size(10);
    for &m in &[100usize, 400, 1600] {
        let h = random_hypergraph(m, m, 12, 99);
        group.bench_with_input(BenchmarkId::new("UBP", m), &h, |b, h| {
            b.iter(|| uniform_bundle_price(h))
        });
        group.bench_with_input(BenchmarkId::new("UIP", m), &h, |b, h| {
            b.iter(|| uniform_item_price(h))
        });
        group.bench_with_input(BenchmarkId::new("Layering", m), &h, |b, h| {
            b.iter(|| layering(h))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
