//! Microbenchmarks of the pricing algorithms on synthetic hypergraphs of
//! increasing size (independent of any dataset), used to track algorithmic
//! regressions.
//!
//! The roster comes from the `qp_pricing::algorithms` registry, so a newly
//! registered algorithm is benchmarked automatically. The LP-based
//! algorithms (LPIP / CIP / XOS) are capped to a few LP solves per run and
//! skipped on the largest instance (a dense-simplex solve at 1600 variables
//! takes minutes — the combinatorial algorithms are what the big sizes are
//! tracking); the cap is part of what is being timed, exactly as in the
//! harness's quick scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qp_pricing::algorithms::{self, CipConfig, LpipConfig};
use qp_pricing::Hypergraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_hypergraph(items: usize, edges: usize, max_size: usize, seed: u64) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = Hypergraph::new(items);
    for _ in 0..edges {
        let size = rng.gen_range(1..=max_size);
        let members: Vec<usize> = (0..size).map(|_| rng.gen_range(0..items)).collect();
        h.add_edge(members, rng.gen_range(1.0..100.0));
    }
    h
}

/// The repeated aggregate-query pattern of the CIP capacity sweep and the
/// harness statistics: `max_degree` / `edges_with_unique_item` / `stats` are
/// asked many times per run on one structure. Before the cached `ItemIndex`
/// every call rescanned all edges (O(n·m)); now only the first call builds
/// the index and the rest are O(1) / O(m) lookups.
fn bench_item_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypergraph_index");
    group.sample_size(10);
    for &m in &[400usize, 1600] {
        let h = random_hypergraph(m, m, 12, 99);
        group.bench_with_input(BenchmarkId::new("degree_queries_x32", m), &h, |b, h| {
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..32 {
                    acc += h.max_degree();
                    acc += h.edges_with_unique_item().iter().filter(|&&u| u).count();
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let lpip = LpipConfig {
        max_lps: Some(4),
        max_lp_iterations: 50_000,
    };
    let cip = CipConfig {
        epsilon: 4.0,
        max_lp_iterations: 50_000,
    };
    let mut group = c.benchmark_group("algorithm_scaling");
    group.sample_size(10);
    const LP_BASED: [&str; 3] = ["LPIP", "CIP", "XOS"];
    const LP_SIZE_CAP: usize = 400;
    for &m in &[100usize, 400, 1600] {
        let h = random_hypergraph(m, m, 12, 99);
        for algo in algorithms::all_with(&lpip, &cip) {
            if m > LP_SIZE_CAP && LP_BASED.contains(&algo.name()) {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(algo.name(), m), &h, |b, h| {
                b.iter(|| algo.run(h))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_item_index);
criterion_main!(benches);
