//! Conflict-engine scaling: the serial `DeltaConflictEngine` against the
//! `ParallelConflictEngine` on growing support sets of the skewed world
//! workload. CI runs this with `CRITERION_STUB_SAMPLES=1` as a smoke check
//! so the parallel path is exercised on every push; the committed
//! `BENCH_conflict.json` trajectory is produced by the `bench_conflict`
//! binary at larger support sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qp_market::{
    ConflictEngine, DeltaConflictEngine, ParallelConflictEngine, SupportConfig, SupportSet,
};
use qp_workloads::queries::skewed;
use qp_workloads::world::{self, WorldConfig};
use qp_workloads::Scale;

fn bench_conflict_engine_scaling(c: &mut Criterion) {
    let cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&cfg);
    let workload = skewed::workload(&db, cfg.countries);
    let queries = &workload.queries[..40];
    let support = SupportSet::generate(&db, &SupportConfig::with_size(400));

    let mut group = c.benchmark_group("conflict_engine_scaling");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        let s = support.truncate(n);
        group.bench_with_input(BenchmarkId::new("serial", n), &s, |b, s| {
            let engine = DeltaConflictEngine::new(&db, s);
            b.iter(|| engine.conflict_sets(queries))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &s, |b, s| {
            let engine = ParallelConflictEngine::new(&db, s);
            b.iter(|| engine.conflict_sets(queries))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conflict_engine_scaling);
criterion_main!(benches);
