//! # qp-bench — the experiment harness
//!
//! Shared plumbing for the binaries under `src/bin/`, each of which
//! regenerates one table or figure of the paper (see `EXPERIMENTS.md` at the
//! workspace root for the full index). The harness builds *workload
//! instances* — dataset + query workload + support set + conflict-set
//! hypergraph — and runs every pricing algorithm on them, reporting revenue
//! normalized by the two upper bounds exactly as the paper's figures do.
//!
//! All experiments accept a `--scale {test|quick|full}` argument; the default
//! (`test`) runs each figure in seconds on a laptop at reduced dataset /
//! support sizes, `quick` approaches the paper's workload sizes, and `full`
//! is the largest configuration that is still practical without the paper's
//! multi-hour budget.

pub mod figures;

use std::time::{Duration, Instant};

use qp_market::{build_hypergraph, ParallelConflictEngine, SupportConfig, SupportSet};
use qp_pricing::algorithms::{
    self, refine_uniform_bundle_price, uniform_bundle_price, xos_pricing, CipConfig, LpipConfig,
    PricingAlgorithm,
};
use qp_pricing::{bounds, revenue, Hypergraph};
use qp_qdb::Database;
use qp_workloads::queries::{skewed, uniform, Workload};
use qp_workloads::valuations::{assign_valuations, ValuationModel};
use qp_workloads::world::WorldConfig;
use qp_workloads::{ssb, tpch, world, Scale};

/// The four query workloads of the paper (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// 986-query skewed workload over the world dataset.
    Skewed,
    /// ~1000-query equal-selectivity workload over the world dataset.
    Uniform,
    /// 701-query SSB workload.
    Ssb,
    /// 220-query TPC-H workload.
    Tpch,
}

impl WorkloadKind {
    /// All four workloads in the paper's presentation order.
    pub fn all() -> [WorkloadKind; 4] {
        [
            WorkloadKind::Skewed,
            WorkloadKind::Uniform,
            WorkloadKind::Ssb,
            WorkloadKind::Tpch,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Skewed => "skewed",
            WorkloadKind::Uniform => "uniform",
            WorkloadKind::Ssb => "SSB",
            WorkloadKind::Tpch => "TPC-H",
        }
    }

    /// Parses a workload name as used on experiment command lines
    /// (`skewed`, `uniform`, `ssb`, `tpch`; case-insensitive).
    pub fn parse(name: &str) -> Option<WorkloadKind> {
        match name.to_ascii_lowercase().as_str() {
            "skewed" => Some(WorkloadKind::Skewed),
            "uniform" => Some(WorkloadKind::Uniform),
            "ssb" => Some(WorkloadKind::Ssb),
            "tpch" | "tpc-h" => Some(WorkloadKind::Tpch),
            _ => None,
        }
    }
}

/// Parses `--scale {test|quick|full}` from the process arguments
/// (defaulting to `test` so every binary finishes in seconds).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    arg_value(&args, "--scale")
        .map(|v| parse_scale(&v))
        .unwrap_or(Scale::Test)
}

/// Looks up a `--flag value` or `--flag=value` argument, shared by the
/// artifact binaries (`bench_conflict`, `sim_scenarios`, …).
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    for i in 0..args.len() {
        if args[i] == flag {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = args[i].strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn parse_scale(v: &str) -> Scale {
    match v {
        "quick" => Scale::Quick,
        "full" => Scale::Full,
        _ => Scale::Test,
    }
}

/// A fully-built experiment instance.
pub struct WorkloadInstance {
    /// Which workload this is.
    pub kind: WorkloadKind,
    /// The seller's database.
    pub db: Database,
    /// The sampled support set.
    pub support: SupportSet,
    /// The buyer queries.
    pub workload: Workload,
    /// The conflict-set hypergraph (valuations initially 0).
    pub hypergraph: Hypergraph,
    /// Wall-clock time spent computing conflict sets (the "hypergraph
    /// construction time" of Tables 4–5).
    pub construction_time: Duration,
}

/// Support-set size used per workload at a given scale.
pub fn support_size(kind: WorkloadKind, scale: Scale) -> usize {
    let base = match kind {
        WorkloadKind::Skewed | WorkloadKind::Uniform => 1.0,
        // The paper uses larger supports for the benchmark datasets; the
        // harness keeps the same ratio but smaller absolute sizes.
        WorkloadKind::Ssb | WorkloadKind::Tpch => 1.0,
    };
    (scale.default_support() as f64 * base) as usize
}

/// Builds a workload instance: dataset, queries, support, conflict sets.
pub fn build_instance(kind: WorkloadKind, scale: Scale) -> WorkloadInstance {
    build_instance_with_support(kind, scale, support_size(kind, scale))
}

/// Generates a workload's dataset and query set at a scale — the common
/// front half of [`build_instance_with_support`], also used directly by
/// binaries (e.g. `sim_scenarios`) that build their own broker instead of a
/// hypergraph.
pub fn dataset_and_queries(kind: WorkloadKind, scale: Scale) -> (Database, Workload) {
    match kind {
        WorkloadKind::Skewed => {
            let cfg = WorldConfig::at_scale(scale);
            let db = world::generate(&cfg);
            let w = skewed::workload(&db, cfg.countries);
            (db, w)
        }
        WorkloadKind::Uniform => {
            let cfg = WorldConfig::at_scale(scale);
            let db = world::generate(&cfg);
            let m = match scale {
                Scale::Test => 150,
                _ => 1000,
            };
            let w = uniform::workload(&db, m);
            (db, w)
        }
        WorkloadKind::Ssb => {
            let db = ssb::generate(&ssb::SsbConfig::at_scale(scale));
            (db, ssb::workload())
        }
        WorkloadKind::Tpch => {
            let db = tpch::generate(&tpch::TpchConfig::at_scale(scale));
            (db, tpch::workload())
        }
    }
}

/// Builds a workload instance with an explicit support-set size.
pub fn build_instance_with_support(
    kind: WorkloadKind,
    scale: Scale,
    support: usize,
) -> WorkloadInstance {
    let (db, workload) = dataset_and_queries(kind, scale);

    let support = SupportSet::generate(&db, &SupportConfig::with_size(support));
    let start = Instant::now();
    // Conflict sets fan out across the parallel engine's workers.
    let engine = ParallelConflictEngine::new(&db, &support);
    let hypergraph = build_hypergraph(&engine, &workload.queries);
    let construction_time = start.elapsed();

    WorkloadInstance {
        kind,
        db,
        support,
        workload,
        hypergraph,
        construction_time,
    }
}

/// Re-computes the hypergraph for a truncated support (Figure 8, Tables 5–6).
pub fn hypergraph_for_support(
    inst: &WorkloadInstance,
    support_size: usize,
) -> (Hypergraph, Duration) {
    let support = inst.support.truncate(support_size);
    let start = Instant::now();
    let engine = ParallelConflictEngine::new(&inst.db, &support);
    let h = build_hypergraph(&engine, &inst.workload.queries);
    (h, start.elapsed())
}

/// The result of running one algorithm on one configured hypergraph.
#[derive(Debug, Clone)]
pub struct AlgorithmRun {
    /// Algorithm name as registered in [`qp_pricing::algorithms`] (the
    /// paper's legend names).
    pub name: String,
    /// Absolute revenue.
    pub revenue: f64,
    /// Revenue normalized by Σ valuations.
    pub normalized: f64,
    /// Wall-clock running time of the pricing algorithm alone.
    pub time: Duration,
}

/// Algorithm-tuning knobs used by the harness, chosen per scale so that the
/// full figure suite completes quickly (the paper makes the same trade-off by
/// raising CIP's ε and capping its running time).
pub struct AlgoConfig {
    /// LPIP configuration.
    pub lpip: LpipConfig,
    /// CIP configuration.
    pub cip: CipConfig,
}

impl AlgoConfig {
    /// Harness defaults for a given scale.
    pub fn at_scale(scale: Scale) -> AlgoConfig {
        let (max_lps, epsilon) = match scale {
            // The test-scale LPs are tiny (hundreds of rows), so LPIP can
            // afford one LP per distinct valuation exactly as in the paper.
            Scale::Test => (None, 1.5),
            Scale::Quick => (Some(60), 2.0),
            Scale::Full => (Some(120), 1.0),
        };
        AlgoConfig {
            lpip: LpipConfig {
                max_lps,
                max_lp_iterations: 200_000,
            },
            cip: CipConfig {
                epsilon,
                max_lp_iterations: 200_000,
            },
        }
    }

    /// The paper's six-algorithm roster from the registry, tuned with this
    /// config (the roster every experiment binary iterates).
    pub fn algorithms(&self) -> Vec<Box<dyn PricingAlgorithm>> {
        algorithms::all_with(&self.lpip, &self.cip)
    }
}

/// Runs the registry's six paper algorithms (plus the sum-of-valuations and
/// subadditive bounds) on a hypergraph whose valuations are already set.
///
/// As in the paper's setup, XOS reuses the LPIP and CIP price vectors already
/// computed in the same run instead of solving both LPs again, so its
/// reported time is the cost of composing and evaluating the max — not a
/// second LPIP + CIP solve.
pub fn run_all_algorithms(h: &Hypergraph, cfg: &AlgoConfig) -> (Vec<AlgorithmRun>, f64, f64) {
    let sum = bounds::sum_of_valuations(h);
    let subadd = bounds::subadditive_bound(h, &Default::default());

    let mut lpip_pricing: Option<qp_pricing::Pricing> = None;
    let mut cip_pricing: Option<qp_pricing::Pricing> = None;
    let mut runs = Vec::new();
    for algo in cfg.algorithms() {
        let start = Instant::now();
        let out = match (algo.name(), &lpip_pricing, &cip_pricing) {
            ("XOS", Some(lpip), Some(cip)) => {
                qp_pricing::algorithms::xos_from_components(h, &[lpip.clone(), cip.clone()])
            }
            _ => algo.run(h),
        };
        let time = start.elapsed();
        match algo.name() {
            "LPIP" => lpip_pricing = Some(out.pricing.clone()),
            "CIP" => cip_pricing = Some(out.pricing.clone()),
            _ => {}
        }
        runs.push(AlgorithmRun {
            name: algo.name().to_string(),
            revenue: out.revenue,
            normalized: if sum > 0.0 { out.revenue / sum } else { 0.0 },
            time,
        });
    }

    (runs, sum, subadd)
}

/// Convenience: sets valuations, runs all algorithms, and returns the rows.
pub fn run_with_model(
    h: &Hypergraph,
    model: &ValuationModel,
    seed: u64,
    cfg: &AlgoConfig,
) -> (Vec<AlgorithmRun>, f64, f64) {
    let mut h = h.clone();
    assign_valuations(&mut h, model, seed);
    run_all_algorithms(&h, cfg)
}

/// Prints one figure panel: a header, the subadditive bound, then the
/// normalized revenue of every algorithm (the same series the paper plots).
pub fn print_panel(title: &str, runs: &[AlgorithmRun], sum: f64, subadditive: f64) {
    println!("\n== {title} ==");
    println!("  sum of valuations            : {sum:.2}");
    println!(
        "  subadditive bound (normalized): {:.3}",
        if sum > 0.0 { subadditive / sum } else { 0.0 }
    );
    for r in runs {
        println!(
            "  {:<14} normalized revenue = {:.3}   (revenue {:.2}, {:?})",
            r.name, r.normalized, r.revenue, r.time
        );
    }
}

/// Formats a duration in seconds with two decimals (Tables 4–6 use seconds).
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Checks that `xos_pricing` and composing registry-produced LPIP / CIP
/// pricings through `xos_from_components` agree (used by the ablation binary
/// and tests).
pub fn xos_consistency(h: &Hypergraph, cfg: &AlgoConfig) -> (f64, f64) {
    let full = xos_pricing(h, &cfg.lpip, &cfg.cip);
    let lpip = algorithms::by_name_with("LPIP", &cfg.lpip, &cfg.cip)
        .expect("LPIP is registered")
        .run(h);
    let cip = algorithms::by_name_with("CIP", &cfg.lpip, &cfg.cip)
        .expect("CIP is registered")
        .run(h);
    let reused = qp_pricing::algorithms::xos_from_components(h, &[lpip.pricing, cip.pricing]);
    (full.revenue, reused.revenue)
}

/// Also re-export the refinement experiment helper for the `ubp_refinement`
/// binary.
pub fn ubp_and_refinement(h: &Hypergraph) -> (f64, f64, f64) {
    let sum = bounds::sum_of_valuations(h);
    let ubp = uniform_bundle_price(h);
    let refined = refine_uniform_bundle_price(h);
    let _ = revenue::revenue(h, &refined.pricing);
    (
        if sum > 0.0 { ubp.revenue / sum } else { 0.0 },
        if sum > 0.0 {
            refined.revenue / sum
        } else {
            0.0
        },
        sum,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_tiny_instance_and_runs_everything() {
        let inst = build_instance_with_support(WorkloadKind::Skewed, Scale::Test, 60);
        assert_eq!(inst.hypergraph.num_edges(), inst.workload.len());
        assert_eq!(inst.hypergraph.num_items(), inst.support.len());

        let cfg = AlgoConfig::at_scale(Scale::Test);
        let (runs, sum, subadd) = run_with_model(
            &inst.hypergraph,
            &ValuationModel::SampledUniform { k: 100.0 },
            1,
            &cfg,
        );
        assert_eq!(runs.len(), 6);
        assert!(sum > 0.0);
        assert!(subadd <= sum + 1e-6);
        for r in &runs {
            assert!(
                r.normalized >= 0.0 && r.normalized <= 1.0 + 1e-9,
                "{}",
                r.name
            );
        }
        // LPIP dominates UIP (paper's consistent observation).
        let lpip = runs.iter().find(|r| r.name == "LPIP").unwrap().revenue;
        let uip = runs.iter().find(|r| r.name == "UIP").unwrap().revenue;
        assert!(lpip + 1e-6 >= uip);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("quick"), Scale::Quick);
        assert_eq!(parse_scale("full"), Scale::Full);
        assert_eq!(parse_scale("anything-else"), Scale::Test);
    }

    #[test]
    fn support_truncation_shrinks_the_hypergraph() {
        let inst = build_instance_with_support(WorkloadKind::Uniform, Scale::Test, 80);
        let (h_small, _) = hypergraph_for_support(&inst, 20);
        assert_eq!(h_small.num_items(), 20);
        assert_eq!(h_small.num_edges(), inst.hypergraph.num_edges());
        let avg_small = h_small.stats().avg_edge_size;
        let avg_full = inst.hypergraph.stats().avg_edge_size;
        assert!(avg_small <= avg_full);
    }
}
