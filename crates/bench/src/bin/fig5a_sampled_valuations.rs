//! Figure 5a: normalized revenue under *sampled* bundle valuations
//! (Uniform\[1,k\] and Zipf(a)) on the skewed and uniform workloads.

use qp_bench::{figures, scale_from_args, WorkloadKind};

fn main() {
    let scale = scale_from_args();
    println!("Figure 5a: sampled bundle valuations, skewed + uniform workloads (scale: {scale:?})");
    figures::sampled_valuations(&[WorkloadKind::Skewed, WorkloadKind::Uniform], scale);
}
