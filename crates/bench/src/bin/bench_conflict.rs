//! Conflict-engine scaling benchmark artifact.
//!
//! Measures wall-clock hypergraph construction (one conflict set per query)
//! with the serial `DeltaConflictEngine` and the `ParallelConflictEngine`
//! at increasing support sizes, verifies the two engines produce identical
//! conflict sets, and writes the trajectory to `BENCH_conflict.json`:
//!
//! ```bash
//! cargo run --release -p qp-bench --bin bench_conflict
//! cargo run --release -p qp-bench --bin bench_conflict -- \
//!     --sizes 1000,5000,10000 --queries 40 --out BENCH_conflict.json
//! ```
//!
//! The recorded `threads` field is `std::thread::available_parallelism()` at
//! the time of the run — parallel speedups only materialize on multi-core
//! hardware, and the artifact makes the machine shape part of the record.

use std::time::Instant;

use qp_bench::arg_value;
use qp_market::{
    ConflictEngine, DeltaConflictEngine, ParallelConflictEngine, SupportConfig, SupportSet,
};
use qp_workloads::queries::skewed;
use qp_workloads::world::{self, WorldConfig};
use qp_workloads::Scale;

struct Row {
    support: usize,
    serial_ms: f64,
    parallel_ms: f64,
    forced_4t_ms: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sizes: Vec<usize> = arg_value(&args, "--sizes")
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![1000, 5000, 10_000]);
    let num_queries: usize = arg_value(&args, "--queries")
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_conflict.json".to_string());

    let cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&cfg);
    let workload = skewed::workload(&db, cfg.countries);
    let queries = &workload.queries[..num_queries.min(workload.queries.len())];
    let max_support = sizes.iter().copied().max().unwrap_or(1000);
    let support = SupportSet::generate(&db, &SupportConfig::with_size(max_support));
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "conflict-engine scaling: {} queries, {threads} hardware threads",
        queries.len()
    );
    let mut rows = Vec::new();
    for &n in &sizes {
        let s = support.truncate(n);

        let serial = DeltaConflictEngine::new(&db, &s);
        let start = Instant::now();
        let serial_sets = serial.conflict_sets(queries);
        let serial_ms = start.elapsed().as_secs_f64() * 1e3;

        let parallel = ParallelConflictEngine::new(&db, &s);
        let start = Instant::now();
        let parallel_sets = parallel.conflict_sets(queries);
        let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

        // Forced 4 workers regardless of core count (bypassing the engine's
        // hardware clamp): on single-core hardware this measures threading
        // overhead, on ≥4 cores it is the speedup.
        let forced = ParallelConflictEngine::with_threads_forced(&db, &s, 4);
        let start = Instant::now();
        let forced_sets = forced.conflict_sets(queries);
        let forced_4t_ms = start.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            serial_sets, parallel_sets,
            "engines diverged at support {n}"
        );
        assert_eq!(
            serial_sets, forced_sets,
            "forced-thread engine diverged at support {n}"
        );
        println!(
            "  support {n:>6}: serial {serial_ms:>9.1} ms   parallel {parallel_ms:>9.1} ms   4-thread {forced_4t_ms:>9.1} ms   speedup {:.2}x",
            serial_ms / parallel_ms
        );
        rows.push(Row {
            support: s.len(),
            serial_ms,
            parallel_ms,
            forced_4t_ms,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"conflict_engine_scaling\",\n");
    json.push_str("  \"workload\": \"skewed (world dataset, test scale)\",\n");
    json.push_str(&format!("  \"queries\": {},\n", queries.len()));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"support\": {}, \"serial_ms\": {:.1}, \"parallel_ms\": {:.1}, \"parallel_4threads_ms\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.support,
            r.serial_ms,
            r.parallel_ms,
            r.forced_4t_ms,
            r.serial_ms / r.parallel_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("writing the benchmark artifact");
    println!("wrote {out_path}");
}
