//! Figure 6a: normalized revenue under *sampled* bundle valuations
//! (Uniform\[1,k\] and Zipf(a)) on the SSB and TPC-H workloads.

use qp_bench::{figures, scale_from_args, WorkloadKind};

fn main() {
    let scale = scale_from_args();
    println!("Figure 6a: sampled bundle valuations, SSB + TPC-H workloads (scale: {scale:?})");
    figures::sampled_valuations(&[WorkloadKind::Ssb, WorkloadKind::Tpch], scale);
}
