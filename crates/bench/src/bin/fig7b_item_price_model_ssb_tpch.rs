//! Figure 7b: normalized revenue under the additive item-price valuation
//! model (D̃ ∈ {Uniform\[1,k\], Binomial(k, ½)}) on the SSB and TPC-H
//! workloads.

use qp_bench::{figures, scale_from_args, WorkloadKind};

fn main() {
    let scale = scale_from_args();
    println!("Figure 7b: additive item-price valuations, SSB + TPC-H workloads (scale: {scale:?})");
    figures::item_price_model(&[WorkloadKind::Ssb, WorkloadKind::Tpch], scale);
}
