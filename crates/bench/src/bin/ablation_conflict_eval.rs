//! Ablation: naive vs delta-aware conflict-set computation.
//!
//! The paper's Qirana substrate makes conflict-set computation tractable by
//! exploiting the single-tuple structure of support databases; this binary
//! quantifies how much that matters in our reimplementation by timing both
//! engines on the same workload and verifying they agree.

use std::time::Instant;

use qp_bench::{scale_from_args, WorkloadKind};
use qp_market::{
    build_hypergraph, DeltaConflictEngine, NaiveConflictEngine, SupportConfig, SupportSet,
};
use qp_workloads::queries::skewed;
use qp_workloads::world::{self, WorldConfig};

fn main() {
    let scale = scale_from_args();
    println!("Ablation: conflict-set computation, naive vs delta-aware (scale: {scale:?})");

    let cfg = WorldConfig::at_scale(scale);
    let db = world::generate(&cfg);
    let workload = skewed::workload(&db, cfg.countries);
    // Keep the naive pass tractable: cap the number of queries at test scale.
    let queries = &workload.queries[..workload.queries.len().min(200)];
    let support = SupportSet::generate(&db, &SupportConfig::with_size(scale.default_support() / 3));

    let naive = NaiveConflictEngine::new(&db, &support);
    let fast = DeltaConflictEngine::new(&db, &support);

    let start = Instant::now();
    let h_fast = build_hypergraph(&fast, queries);
    let fast_time = start.elapsed();

    let start = Instant::now();
    let h_naive = build_hypergraph(&naive, queries);
    let naive_time = start.elapsed();

    let agree = (0..h_fast.num_edges()).all(|i| h_fast.edge(i).items == h_naive.edge(i).items);
    println!(
        "{} queries ({}) x support {}:",
        queries.len(),
        WorkloadKind::Skewed.name(),
        support.len()
    );
    println!("  naive engine      : {:?}", naive_time);
    println!("  delta-aware engine: {:?}", fast_time);
    println!(
        "  speedup           : {:.2}x   (identical conflict sets: {agree})",
        naive_time.as_secs_f64() / fast_time.as_secs_f64().max(1e-9)
    );
    assert!(agree, "conflict engines disagree");
}
