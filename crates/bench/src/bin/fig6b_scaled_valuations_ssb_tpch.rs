//! Figure 6b: normalized revenue under *scaled* bundle valuations
//! (Exponential(|e|^k), Normal(|e|^k, 10)) on the SSB and TPC-H workloads.

use qp_bench::{figures, scale_from_args, WorkloadKind};

fn main() {
    let scale = scale_from_args();
    println!("Figure 6b: scaled bundle valuations, SSB + TPC-H workloads (scale: {scale:?})");
    figures::scaled_valuations(&[WorkloadKind::Ssb, WorkloadKind::Tpch], scale);
}
