//! Figure 4: the hyperedge-size distribution of each workload, printed as a
//! bucketed histogram (size bucket → number of hyperedges).

use qp_bench::{build_instance, scale_from_args, WorkloadKind};

fn main() {
    let scale = scale_from_args();
    println!("Figure 4: Hyperedge size distribution (scale: {scale:?})");
    for kind in WorkloadKind::all() {
        let inst = build_instance(kind, scale);
        let stats = inst.hypergraph.stats();
        println!(
            "\n-- {} workload: {} queries, support {} (avg edge size {:.2}) --",
            kind.name(),
            stats.num_edges,
            inst.support.len(),
            stats.avg_edge_size
        );
        println!("{:>12} {:>12}", "edge size >=", "#hyperedges");
        for (bucket_start, count) in inst.hypergraph.edge_size_histogram(20) {
            if count > 0 {
                println!("{bucket_start:>12} {count:>12}");
            }
        }
    }
}
