//! Market-simulator benchmark artifact.
//!
//! Runs the `qp-sim` scenario library (`steady_state`, `flash_crowd`,
//! `shifting_demand`, `arbitrage_probe`) over at least two of the paper's
//! query workloads, each against a freshly-built live broker, and writes the
//! per-scenario metrics — revenue over time, conversion rate, quotes/sec,
//! repricing latency — to `BENCH_sim.json`:
//!
//! ```bash
//! cargo run --release -p qp-bench --bin sim_scenarios
//! cargo run --release -p qp-bench --bin sim_scenarios -- \
//!     --workloads skewed,uniform --seed 42 --ticks 40 --out BENCH_sim.json
//! cargo run --release -p qp-bench --bin sim_scenarios -- --smoke   # CI-sized
//! ```
//!
//! Every run re-executes the first scenario on a second identically-built
//! broker and asserts bit-identical total revenue — the simulator's
//! same-seed determinism guarantee is checked on every artifact, the same
//! way `bench_conflict` asserts engine equivalence.

use std::time::Instant;

use qp_bench::{arg_value, dataset_and_queries, WorkloadKind};
use qp_market::{Broker, SupportConfig};
use qp_qdb::{Database, Query};
use qp_sim::{bench_json, library, SimConfig, SimReport};
use qp_workloads::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Sizing {
    /// Support-set size behind every broker.
    support: usize,
    /// Cap on the per-workload query pool.
    pool: usize,
    /// Simulation horizon per scenario.
    ticks: u64,
}

/// Builds a fresh, deterministically-priced broker for a query pool:
/// seeded support, seeded anticipated valuations, registry algorithm.
fn build_broker(
    db: &Database,
    pool: &[Query],
    sizing: &Sizing,
    algorithm: &str,
    seed: u64,
) -> Broker {
    let mut rng = StdRng::seed_from_u64(seed);
    Broker::builder(db.clone())
        .support_config(SupportConfig::with_size(sizing.support))
        .algorithm(algorithm)
        .anticipate_all(pool.iter().map(|q| (q.clone(), rng.gen_range(1.0..=50.0))))
        .build()
        .unwrap_or_else(|e| panic!("broker build failed: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let workload_names: Vec<String> = arg_value(&args, "--workloads")
        .unwrap_or_else(|| "skewed,uniform".to_string())
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let algorithm = arg_value(&args, "--algorithm").unwrap_or_else(|| "UIP".to_string());
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_sim.json".to_string());
    let sizing = if smoke {
        Sizing {
            support: 80,
            pool: 60,
            ticks: 12,
        }
    } else {
        Sizing {
            support: 150,
            pool: 160,
            ticks: 40,
        }
    };
    let ticks = arg_value(&args, "--ticks")
        .and_then(|s| s.parse().ok())
        .unwrap_or(sizing.ticks);
    let sizing = Sizing { ticks, ..sizing };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "sim_scenarios: {} workloads, seed {seed}, {} ticks, {threads} hardware threads{}",
        workload_names.len(),
        sizing.ticks,
        if smoke { " (smoke)" } else { "" }
    );

    let cfg = SimConfig {
        seed,
        algorithm: algorithm.clone(),
        ..SimConfig::default()
    };
    let mut runs: Vec<SimReport> = Vec::new();
    for name in &workload_names {
        let kind = WorkloadKind::parse(name).unwrap_or_else(|| {
            panic!("unknown workload {name:?} (expected skewed, uniform, ssb, or tpch)")
        });
        let started = Instant::now();
        let (db, workload) = dataset_and_queries(kind, Scale::Test);
        let mut pool: Vec<Query> = workload.queries;
        pool.truncate(sizing.pool);
        println!(
            "  {name}: {} queries, support {}, built in {:.1}s",
            pool.len(),
            sizing.support,
            started.elapsed().as_secs_f64()
        );

        for scenario in library(&pool, sizing.ticks) {
            // A fresh broker per scenario: runs are independent, and the
            // ledger/pricing state of one scenario never leaks into another.
            let broker = build_broker(&db, &pool, &sizing, &algorithm, seed);
            let mut report = scenario.run(&broker, &cfg);
            report.workload = name.clone();
            println!("    {}", report.summary());
            runs.push(report);
        }

        // Same-seed determinism self-check: rebuild and re-run the first
        // scenario; total revenue must be bit-identical.
        let scenario = library(&pool, sizing.ticks)
            .into_iter()
            .next()
            .expect("library is non-empty");
        let broker = build_broker(&db, &pool, &sizing, &algorithm, seed);
        let again = scenario.run(&broker, &cfg);
        let first = runs
            .iter()
            .find(|r| r.workload == *name && r.scenario == scenario.name)
            .expect("the scenario just ran");
        assert_eq!(
            first.total_revenue().to_bits(),
            again.total_revenue().to_bits(),
            "same-seed reruns of {}/{} diverged",
            name,
            scenario.name
        );
    }

    let json = bench_json(seed, threads, &runs);
    std::fs::write(&out_path, json).expect("writing the benchmark artifact");
    println!(
        "wrote {out_path}: {} runs ({} scenarios x {} workloads), determinism check passed",
        runs.len(),
        runs.len() / workload_names.len(),
        workload_names.len()
    );
}
