//! Table 4: wall-clock running time (seconds) of every pricing algorithm on
//! the four workloads, with the hypergraph-construction (conflict-set) time
//! reported separately — the paper folds it into the item-pricing columns.
//!
//! The algorithm roster comes from the `qp_pricing::algorithms` registry, so
//! adding an algorithm there adds a column here.

use qp_bench::{build_instance, run_with_model, scale_from_args, secs, AlgoConfig, WorkloadKind};
use qp_pricing::algorithms::PAPER_ALGORITHMS;
use qp_workloads::valuations::ValuationModel;

fn main() {
    let scale = scale_from_args();
    println!("Table 4: algorithm running times in seconds (scale: {scale:?})");
    print!("{:<10} {:>12}", "Workload", "construction");
    for name in PAPER_ALGORITHMS {
        print!(" {name:>10}");
    }
    println!();

    let cfg = AlgoConfig::at_scale(scale);
    for kind in WorkloadKind::all() {
        let inst = build_instance(kind, scale);
        let (runs, _, _) = run_with_model(
            &inst.hypergraph,
            &ValuationModel::SampledUniform { k: 100.0 },
            41,
            &cfg,
        );
        print!("{:<10} {:>12}", kind.name(), secs(inst.construction_time));
        for name in PAPER_ALGORITHMS {
            let cell = runs
                .iter()
                .find(|r| r.name == name)
                .map(|r| secs(r.time))
                .unwrap_or_else(|| "-".into());
            print!(" {cell:>10}");
        }
        println!();
    }
}
