//! Table 4: wall-clock running time (seconds) of every pricing algorithm on
//! the four workloads, with the hypergraph-construction (conflict-set) time
//! reported separately — the paper folds it into the item-pricing columns.

use qp_bench::{build_instance, run_with_model, scale_from_args, secs, AlgoConfig, WorkloadKind};
use qp_workloads::valuations::ValuationModel;

fn main() {
    let scale = scale_from_args();
    println!("Table 4: algorithm running times in seconds (scale: {scale:?})");
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>14}",
        "Workload", "construction", "LPIP", "UBP", "UIP", "CIP", "Layering", "XOS-LPIP+CIP"
    );
    let cfg = AlgoConfig::at_scale(scale);
    for kind in WorkloadKind::all() {
        let inst = build_instance(kind, scale);
        let (runs, _, _) = run_with_model(
            &inst.hypergraph,
            &ValuationModel::SampledUniform { k: 100.0 },
            41,
            &cfg,
        );
        let time_of = |name: &str| {
            runs.iter()
                .find(|r| r.name == name)
                .map(|r| secs(r.time))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>14}",
            kind.name(),
            secs(inst.construction_time),
            time_of("LPIP"),
            time_of("UBP"),
            time_of("UIP"),
            time_of("CIP"),
            time_of("layering"),
            time_of("XOS-LPIP+CIP"),
        );
    }
}
