//! Figure 5b: normalized revenue under *scaled* bundle valuations
//! (Exponential(|e|^k), Normal(|e|^k, 10)) on the skewed and uniform
//! workloads.

use qp_bench::{figures, scale_from_args, WorkloadKind};

fn main() {
    let scale = scale_from_args();
    println!("Figure 5b: scaled bundle valuations, skewed + uniform workloads (scale: {scale:?})");
    figures::scaled_valuations(&[WorkloadKind::Skewed, WorkloadKind::Uniform], scale);
}
