//! Figure 3 / Lemmas 1–4: the revenue gaps between pricing-function classes
//! on the paper's worst-case constructions.
//!
//! * Lemma 2 (harmonic singletons): item pricing wins by Θ(log m) over any
//!   uniform bundle price.
//! * Lemma 3 (partition classes): uniform bundle pricing wins by Θ(log n)
//!   over item pricing.
//! * Lemma 4 (laminar family): both succinct classes lose Ω(log m) against
//!   the optimal subadditive pricing.

use qp_pricing::algorithms::{self, CipConfig, LpipConfig};
use qp_pricing::{bounds, instances};

fn main() {
    println!("Lower-bound constructions (Lemmas 2-4, Figure 3)\n");

    let ubp = algorithms::by_name("UBP").expect("UBP is registered");
    let uip = algorithms::by_name("UIP").expect("UIP is registered");
    let lpip = algorithms::by_name("LPIP").expect("LPIP is registered");

    // Lemma 2.
    for m in [64usize, 256, 1024] {
        let h = instances::harmonic_singletons(m);
        let sum = bounds::sum_of_valuations(&h);
        let bundle = ubp.run(&h);
        let item = lpip.run(&h);
        println!(
            "Lemma 2, m = {m:>5}: sum = {sum:.2}  item pricing = {:.2}  best uniform bundle = {:.2}  (gap {:.2}x)",
            item.revenue,
            bundle.revenue,
            item.revenue / bundle.revenue.max(1e-9)
        );
    }
    println!();

    // Lemma 3.
    for n in [32usize, 64, 128] {
        let h = instances::partition_classes(n);
        let sum = bounds::sum_of_valuations(&h);
        let bundle = ubp.run(&h);
        let item = uip.run(&h);
        println!(
            "Lemma 3, n = {n:>4}: sum = {sum:.0}  uniform bundle = {:.0}  uniform item pricing = {:.2}  (gap {:.2}x)",
            bundle.revenue,
            item.revenue,
            bundle.revenue / item.revenue.max(1e-9)
        );
    }
    println!();

    // Lemma 4. The capped-LP LPIP keeps the sweep fast on the larger
    // laminar instances.
    let capped_lpip = algorithms::by_name_with(
        "LPIP",
        &LpipConfig {
            max_lps: Some(8),
            max_lp_iterations: 200_000,
        },
        &CipConfig::default(),
    )
    .expect("LPIP is registered");
    for t in [2u32, 3, 4] {
        let h = instances::laminar_family(t);
        let opt = instances::laminar_optimal_revenue(t);
        println!(
            "Lemma 4, t = {t}: OPT = {opt:.0}  uniform bundle = {:.1}  uniform item = {:.1}  LPIP = {:.1}",
            ubp.run(&h).revenue,
            uip.run(&h).revenue,
            capped_lpip.run(&h).revenue
        );
    }
}
