//! Figure 3 / Lemmas 1–4: the revenue gaps between pricing-function classes
//! on the paper's worst-case constructions.
//!
//! * Lemma 2 (harmonic singletons): item pricing wins by Θ(log m) over any
//!   uniform bundle price.
//! * Lemma 3 (partition classes): uniform bundle pricing wins by Θ(log n)
//!   over item pricing.
//! * Lemma 4 (laminar family): both succinct classes lose Ω(log m) against
//!   the optimal subadditive pricing.

use qp_pricing::algorithms::{lp_item_price, uniform_bundle_price, uniform_item_price, LpipConfig};
use qp_pricing::{bounds, instances};

fn main() {
    println!("Lower-bound constructions (Lemmas 2-4, Figure 3)\n");

    // Lemma 2.
    for m in [64usize, 256, 1024] {
        let h = instances::harmonic_singletons(m);
        let sum = bounds::sum_of_valuations(&h);
        let ubp = uniform_bundle_price(&h);
        let lpip = lp_item_price(&h, &LpipConfig::default());
        println!(
            "Lemma 2, m = {m:>5}: sum = {sum:.2}  item pricing = {:.2}  best uniform bundle = {:.2}  (gap {:.2}x)",
            lpip.revenue,
            ubp.revenue,
            lpip.revenue / ubp.revenue.max(1e-9)
        );
    }
    println!();

    // Lemma 3.
    for n in [32usize, 64, 128] {
        let h = instances::partition_classes(n);
        let sum = bounds::sum_of_valuations(&h);
        let ubp = uniform_bundle_price(&h);
        let uip = uniform_item_price(&h);
        println!(
            "Lemma 3, n = {n:>4}: sum = {sum:.0}  uniform bundle = {:.0}  uniform item pricing = {:.2}  (gap {:.2}x)",
            ubp.revenue,
            uip.revenue,
            ubp.revenue / uip.revenue.max(1e-9)
        );
    }
    println!();

    // Lemma 4.
    for t in [2u32, 3, 4] {
        let h = instances::laminar_family(t);
        let opt = instances::laminar_optimal_revenue(t);
        let ubp = uniform_bundle_price(&h);
        let uip = uniform_item_price(&h);
        let lpip = lp_item_price(&h, &LpipConfig { max_lps: Some(8), max_lp_iterations: 200_000 });
        println!(
            "Lemma 4, t = {t}: OPT = {opt:.0}  uniform bundle = {:.1}  uniform item = {:.1}  LPIP = {:.1}",
            ubp.revenue, uip.revenue, lpip.revenue
        );
    }
}
