//! Table 5: running times (seconds) on the skewed workload as a function of
//! the support-set size, *including* hypergraph-construction time, as in the
//! paper.

use qp_bench::{
    build_instance, hypergraph_for_support, run_with_model, scale_from_args, secs, AlgoConfig,
    WorkloadKind,
};
use qp_workloads::valuations::ValuationModel;

fn main() {
    let scale = scale_from_args();
    println!("Table 5: skewed workload running times vs support size, construction included (scale: {scale:?})");
    let cfg = AlgoConfig::at_scale(scale);
    let inst = build_instance(WorkloadKind::Skewed, scale);
    let full = inst.support.len();
    let sweep: Vec<usize> = [0.01, 0.05, 0.1, 0.5, 1.0]
        .iter()
        .map(|f| ((full as f64 * f) as usize).max(5))
        .collect();

    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "|S|", "construction", "LPIP", "UBP", "UIP", "CIP", "Layering"
    );
    for &s in &sweep {
        let (h, construction) = hypergraph_for_support(&inst, s);
        let (runs, _, _) =
            run_with_model(&h, &ValuationModel::SampledUniform { k: 100.0 }, 43, &cfg);
        let with_construction = |name: &str| {
            runs.iter()
                .find(|r| r.name == name)
                .map(|r| secs(r.time + construction))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            s,
            secs(construction),
            with_construction("LPIP"),
            // UBP does not need the conflict sets at all (paper §6.4).
            runs.iter()
                .find(|r| r.name == "UBP")
                .map(|r| secs(r.time))
                .unwrap_or_default(),
            with_construction("UIP"),
            with_construction("CIP"),
            with_construction("Layering"),
        );
    }
}
