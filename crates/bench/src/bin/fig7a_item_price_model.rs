//! Figure 7a: normalized revenue under the additive item-price valuation
//! model (D̃ ∈ {Uniform\[1,k\], Binomial(k, ½)}) on the skewed and uniform
//! workloads.

use qp_bench::{figures, scale_from_args, WorkloadKind};

fn main() {
    let scale = scale_from_args();
    println!(
        "Figure 7a: additive item-price valuations, skewed + uniform workloads (scale: {scale:?})"
    );
    figures::item_price_model(&[WorkloadKind::Skewed, WorkloadKind::Uniform], scale);
}
