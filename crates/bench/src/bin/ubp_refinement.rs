//! §6.3 UBP refinement: the LP post-processing step that lifts the best
//! uniform bundle price into a non-uniform item pricing constrained to keep
//! every UBP-sold bundle sold (the paper reports 0.78 → 0.99 on TPC-H with
//! the additive model, k = 1).

use qp_bench::{build_instance, scale_from_args, ubp_and_refinement, WorkloadKind};
use qp_workloads::valuations::{assign_valuations, ValuationModel};

fn main() {
    let scale = scale_from_args();
    println!("UBP refinement (paper §6.3), additive model D~ = Uniform[1,1] (scale: {scale:?})");
    println!(
        "{:<10} {:>18} {:>22}",
        "Workload", "UBP (normalized)", "UBP-refined (normalized)"
    );
    for kind in WorkloadKind::all() {
        let inst = build_instance(kind, scale);
        let mut h = inst.hypergraph.clone();
        assign_valuations(&mut h, &ValuationModel::AdditiveUniform { k: 1 }, 53);
        let (ubp, refined, _sum) = ubp_and_refinement(&h);
        println!("{:<10} {:>18.3} {:>22.3}", kind.name(), ubp, refined);
    }
}
