//! Cache-hot kernel micro-benchmarks → `BENCH_kernels.json`.
//!
//! Pits each rewritten hot kernel against its scalar reference — the
//! pre-optimization implementation kept verbatim in [`qp_core::reference`]
//! and [`qp_pricing::algorithms::reference`] — on the operand shapes the
//! pricing hot paths actually see:
//!
//! * **small_set** — conflict-set algebra on inline-sized sets (≤ 2 blocks,
//!   the overwhelmingly common case in quoting): the reference allocates a
//!   fresh heap `Vec<u64>` per op and walks one block at a time; the fast
//!   path stays on the stack and takes the single-block early arms.
//! * **large_set** — the same algebra on ~32-block sets (wide support
//!   databases): reference scalar walk vs the 4-blocks-per-iteration
//!   chunked loops.
//! * **uip_merge** — the incremental repricer's rate-multiset merge at
//!   m = 10k distinct rates with a 1% delta: reference entry-at-a-time
//!   walk (fresh allocation per merge) vs the galloping, bulk-copying
//!   [`RateTable::merge_batch`] into a reused double buffer.
//! * **telemetry** — the observability zero-overhead contract: the same
//!   inline-set fold bare vs instrumented the way the quote path is — one
//!   `TelemetrySink::Disabled` span + counter touch per 32-op batch (a
//!   quote wraps a whole conflict-set fold in one span, it does not span
//!   each set op). Here `before` is the bare fold and `after` the
//!   instrumented one, so CI can gate on `after_ns <= 1.02 * before_ns`
//!   (the ≤ 2 % overhead budget for the disabled sink).
//! * **tracing** — the live-tracing overhead contract: a broker
//!   quote+settle on the default `Disabled` sink (`before`) vs the same
//!   broker on an `Enabled` sink with a trace id stamped per settle, the
//!   way a `TRACED` frame dispatches (`after`). CI bounds the quotient at
//!   ≤ 3 % (`after_ns <= 1.03 * before_ns`).
//! * **wal** — the durability overhead contract: a broker quote+settle
//!   (`Broker::purchase_at`) bare (`before`) vs identically built but
//!   `FileStore`-backed with the default group-commit fsync policy
//!   (`after`) — every settle appends a CRC-framed WAL record before it
//!   returns. CI bounds the quotient at ≤ 10 % (`after_ns <= 1.10 *
//!   before_ns`).
//!
//! Every measured pair is also *checked* — each timed round asserts the
//! fast path and the reference produce identical results, so the benchmark
//! cannot drift from the differential test suites it mirrors.
//!
//! ```bash
//! cargo run --release -p qp-bench --bin bench_kernels
//! cargo run --release -p qp-bench --bin bench_kernels -- \
//!     --reps 15 --iters 200 --out BENCH_kernels.json
//! cargo run --release -p qp-bench --bin bench_kernels -- --smoke   # CI-sized
//! ```

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qp_bench::arg_value;
use qp_core::{reference, ItemSet};
use qp_market::{Broker, PurchaseOutcome, SupportConfig};
use qp_pricing::algorithms::{reference as rate_reference, RateTable};
use qp_qdb::{ColumnType, Database, Query, Relation, Schema, Value};
use qp_store::{FileStore, SharedStore};
use qp_telemetry::TelemetrySink;

/// Operand pool sizes: enough pairs to defeat branch-predictor lock-in,
/// small enough to stay cache-resident (the kernels, not the RAM, are
/// under test).
const PAIRS: usize = 256;

/// Item universe for the small (inline-sized) sets: 2 blocks.
const SMALL_UNIVERSE: usize = 128;
/// Item universe for the large (chunked-loop) sets: 32 blocks.
const LARGE_UNIVERSE: usize = 2048;

struct Row {
    group: &'static str,
    kernel: &'static str,
    before_ns: f64,
    after_ns: f64,
}

/// A random set of `size` items drawn from `universe`.
fn random_set(rng: &mut StdRng, universe: usize, size: usize) -> ItemSet {
    (0..size).map(|_| rng.gen_range(0..universe)).collect()
}

/// Operand pairs for one group: sizes span the group's range so the pools
/// exercise subset/overlap/disjoint shapes alike.
fn pairs(rng: &mut StdRng, universe: usize, max_size: usize) -> Vec<(ItemSet, ItemSet)> {
    (0..PAIRS)
        .map(|_| {
            let size_a = rng.gen_range(1..=max_size);
            let a = random_set(rng, universe, size_a);
            // Half the pairs share a base with `a` so subset/overlap paths
            // are exercised, not just the disjoint fast exits.
            let size_b = rng.gen_range(1..=max_size);
            let b = if rng.gen_bool(0.5) {
                let mut b = a.clone();
                b.union_with(&random_set(rng, universe, size_b));
                b
            } else {
                random_set(rng, universe, size_b)
            };
            (a, b)
        })
        .collect()
}

/// Median per-op nanoseconds of `f` run over the pool, `iters` sweeps per
/// sample and `reps` samples.
fn time_ns<F: FnMut() -> u64>(reps: usize, iters: usize, ops_per_iter: usize, mut f: F) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    let mut sink = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            sink = sink.wrapping_add(f());
        }
        let per_op = t0.elapsed().as_nanos() as f64 / (iters * ops_per_iter) as f64;
        samples.push(per_op);
    }
    black_box(sink);
    median(&mut samples)
}

/// Times two workloads A/B-interleaved: each rep measures `before` then
/// `after` back to back, so slow drift (CPU frequency, page cache state)
/// lands on both sides of the ratio instead of biasing one. Used by the
/// wal row, where the gated quantity *is* the after/before quotient.
fn time_ns_paired<F: FnMut() -> u64, G: FnMut() -> u64>(
    reps: usize,
    iters: usize,
    ops_per_iter: usize,
    mut before: F,
    mut after: G,
) -> (f64, f64) {
    let mut before_samples = Vec::with_capacity(reps);
    let mut after_samples = Vec::with_capacity(reps);
    let mut sink = 0u64;
    let ops = (iters * ops_per_iter) as f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            sink = sink.wrapping_add(before());
        }
        before_samples.push(t0.elapsed().as_nanos() as f64 / ops);
        let t1 = Instant::now();
        for _ in 0..iters {
            sink = sink.wrapping_add(after());
        }
        after_samples.push(t1.elapsed().as_nanos() as f64 / ops);
    }
    black_box(sink);
    (median(&mut before_samples), median(&mut after_samples))
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Measures one set-algebra kernel over an operand pool: `before` is the
/// scalar reference, `after` the fast path; both are folded to a `u64` so
/// results feed the timing sink (and are cross-checked once up front).
fn set_kernel(
    group: &'static str,
    kernel: &'static str,
    pool: &[(ItemSet, ItemSet)],
    reps: usize,
    iters: usize,
    before: impl Fn(&ItemSet, &ItemSet) -> u64,
    after: impl Fn(&ItemSet, &ItemSet) -> u64,
) -> Row {
    for (a, b) in pool {
        assert_eq!(
            before(a, b),
            after(a, b),
            "{group}/{kernel}: fast path diverged from the reference"
        );
    }
    let before_ns = time_ns(reps, iters, pool.len(), || {
        pool.iter()
            .map(|(a, b)| before(black_box(a), black_box(b)))
            .fold(0u64, u64::wrapping_add)
    });
    let after_ns = time_ns(reps, iters, pool.len(), || {
        pool.iter()
            .map(|(a, b)| after(black_box(a), black_box(b)))
            .fold(0u64, u64::wrapping_add)
    });
    Row {
        group,
        kernel,
        before_ns,
        after_ns,
    }
}

/// The set-algebra rows for one operand-shape group.
fn set_rows(
    group: &'static str,
    pool: &[(ItemSet, ItemSet)],
    reps: usize,
    iters: usize,
) -> Vec<Row> {
    // Result sets fold to their stable hash so construction cost (the
    // allocation the fast path avoids) stays inside the timed region.
    vec![
        set_kernel(
            group,
            "union",
            pool,
            reps,
            iters,
            |a, b| reference::union(a, b).stable_hash(),
            |a, b| a.union(b).stable_hash(),
        ),
        set_kernel(
            group,
            "intersection",
            pool,
            reps,
            iters,
            |a, b| reference::intersection(a, b).stable_hash(),
            |a, b| a.intersection(b).stable_hash(),
        ),
        set_kernel(
            group,
            "difference",
            pool,
            reps,
            iters,
            |a, b| reference::difference(a, b).stable_hash(),
            |a, b| a.difference(b).stable_hash(),
        ),
        set_kernel(
            group,
            "intersection_len",
            pool,
            reps,
            iters,
            |a, b| reference::intersection_len(a, b) as u64,
            |a, b| a.intersection_len(b) as u64,
        ),
        set_kernel(
            group,
            "is_subset",
            pool,
            reps,
            iters,
            |a, b| reference::is_subset(a, b) as u64,
            |a, b| a.is_subset(b) as u64,
        ),
        set_kernel(
            group,
            "is_disjoint",
            pool,
            reps,
            iters,
            |a, b| reference::is_disjoint(a, b) as u64,
            |a, b| a.is_disjoint(b) as u64,
        ),
    ]
}

/// The UIP rate-merge row: m distinct rates, `pct`% delta (half fresh
/// insertions, half removals of tracked rates).
fn uip_merge_row(m: usize, pct: usize, reps: usize, iters: usize, seed: u64) -> Row {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<(u64, rate_reference::RateEntry)> = (0..m)
        .map(|i| {
            let count = rng.gen_range(1..4usize);
            let sizes = count * rng.gen_range(1..24usize);
            // Keys spaced out so delta keys can land between them.
            (
                (i as u64 + 1) * 1000,
                rate_reference::RateEntry { count, sizes },
            )
        })
        .collect();
    let k = (m * pct).div_ceil(100).max(1);
    let mut ins: Vec<(u64, usize)> = (0..k)
        .map(|_| {
            let slot = rng.gen_range(0..m as u64);
            (
                slot * 1000 + rng.gen_range(1..1000u64),
                rng.gen_range(1..24usize),
            )
        })
        .collect();
    ins.sort_unstable_by_key(|e| e.0);
    let mut rem: Vec<(u64, usize)> = (0..k)
        .map(|_| {
            let (key, e) = base[rng.gen_range(0..m)];
            // Remove at most one bundle per key; sizes drawn from what the
            // entry holds so the merge never underflows.
            (key, e.sizes / e.count)
        })
        .collect();
    rem.sort_unstable_by_key(|e| e.0);
    // Duplicate removals at one key could exceed its count; thin them out.
    rem.dedup_by_key(|e| e.0);

    let table = rate_reference::table_from_entries(&base);
    let expected = rate_reference::merge_rates(&base, &ins, &rem);
    let mut out = RateTable::new();
    table.merge_batch(&ins, &rem, &mut out);
    assert_eq!(
        rate_reference::entries_from_table(&out),
        expected,
        "uip_merge: batch merge diverged from the reference walk"
    );

    let before_ns = time_ns(reps, iters, 1, || {
        let merged = rate_reference::merge_rates(black_box(&base), &ins, &rem);
        merged.len() as u64
    });
    let after_ns = time_ns(reps, iters, 1, || {
        table.merge_batch(black_box(&ins), &rem, &mut out);
        out.len() as u64
    });
    Row {
        group: "uip_merge",
        kernel: "merge_rates",
        before_ns,
        after_ns,
    }
}

/// The disabled-sink overhead row: the inline-set `intersection_len` fold
/// bare (`before`) vs instrumented at quote-path granularity (`after`) —
/// one span guard + counter increment per 32-op batch, every handle handed
/// out by a [`TelemetrySink::Disabled`] sink. The quotient `after/before`
/// is the overhead the CI telemetry job bounds at 2 %.
fn telemetry_overhead_row(pool: &[(ItemSet, ItemSet)], reps: usize, iters: usize) -> Row {
    let sink = TelemetrySink::default();
    assert!(
        !sink.is_enabled(),
        "overhead row measures the Disabled sink"
    );
    let batch_span = sink.span_handle("bench.batch");
    let batch_ops = sink.counter("bench.ops");
    let before_ns = time_ns(reps, iters, pool.len(), || {
        pool.iter()
            .map(|(a, b)| black_box(a).intersection_len(black_box(b)) as u64)
            .fold(0u64, u64::wrapping_add)
    });
    let after_ns = time_ns(reps, iters, pool.len(), || {
        let mut acc = 0u64;
        for batch in pool.chunks(32) {
            let _guard = batch_span.enter();
            batch_ops.inc();
            for (a, b) in batch {
                acc = acc.wrapping_add(black_box(a).intersection_len(black_box(b)) as u64);
            }
        }
        acc
    });
    Row {
        group: "telemetry",
        kernel: "disabled_sink",
        before_ns,
        after_ns,
    }
}

/// The tracing-enabled overhead row: `Broker::purchase_at` on two
/// identically built brokers, one on the default `Disabled` sink
/// (`before`) and one on an `Enabled` sink with a fresh trace id stamped
/// into the thread-local context before every settle — exactly what a
/// `TRACED` envelope does on dispatch (`after`). The quotient
/// `after/before` is the cost of *live* tracing on the quote path; the
/// CI tracing job bounds it at 3 %.
fn tracing_overhead_row(reps: usize, iters: usize) -> Row {
    fn tiny_broker(sink: TelemetrySink) -> Broker {
        let mut rel = Relation::new(Schema::new(vec![
            ("name", ColumnType::Str),
            ("size", ColumnType::Int),
        ]));
        for i in 0..32 {
            rel.push(vec![format!("row{i}").into(), Value::Int(i)])
                .expect("schema matches");
        }
        let mut db = Database::new();
        db.add_table("T", rel);
        Broker::builder(db)
            .support_config(SupportConfig::with_size(40))
            .algorithm("UBP")
            .anticipate(Query::scan("T"), 30.0)
            .telemetry(sink)
            .build()
            .expect("UBP is registered")
    }

    let q = Query::scan("T");
    let bare = tiny_broker(TelemetrySink::default());
    let traced = tiny_broker(TelemetrySink::enabled());
    assert_eq!(
        bare.quote(&q).price.to_bits(),
        traced.quote(&q).price.to_bits(),
        "tracing: the sink must not change pricing"
    );

    let settle_sweep = |broker: &Broker, stamp_trace: bool| {
        let mut acc = 0u64;
        for i in 0..WAL_OPS as u64 {
            if stamp_trace {
                // Deterministic worker-style ids, like NetTransport mints.
                qp_telemetry::set_current_trace_id((1u64 << 32) | (i + 1));
            }
            let budget = if i % 2 == 0 { 1e9 } else { 0.0 };
            match broker.purchase_at(black_box(&q), budget, i).expect("eval") {
                PurchaseOutcome::Sold { price, .. } => acc = acc.wrapping_add(price.to_bits()),
                PurchaseOutcome::Declined { price } => acc = acc.wrapping_add(!price.to_bits()),
            }
        }
        acc
    };
    // Untimed warmup on both sides: first-touch journal/registry growth is
    // setup cost a live server amortizes, not per-quote tracing cost.
    black_box(settle_sweep(&bare, false));
    black_box(settle_sweep(&traced, true));
    // Like the wal row, this gates a ratio of two µs-scale composites:
    // paired interleaving + extra reps keep the median honest.
    let (before_ns, after_ns) = time_ns_paired(
        reps * 2 - 1,
        iters,
        WAL_OPS,
        || settle_sweep(&bare, false),
        || settle_sweep(&traced, true),
    );
    assert_eq!(
        bare.ledger().total().to_bits(),
        traced.ledger().total().to_bits(),
        "tracing: both brokers settled identical traffic"
    );
    Row {
        group: "tracing",
        kernel: "traced_quote_settle",
        before_ns,
        after_ns,
    }
}

/// Settles per timing iteration on the WAL row — alternating sold/declined
/// so both ledger paths (and both WAL record kinds) are in the measurement.
const WAL_OPS: usize = 64;

/// The WAL-append overhead row: `Broker::purchase_at` (quote + settle) on
/// two identically built brokers, one bare and one backed by a `FileStore`
/// with the default group-commit fsync policy. The quotient `after/before`
/// is the durability tax on the quote path that the CI durability job
/// bounds at 10 %.
fn wal_append_row(reps: usize, iters: usize) -> Row {
    fn tiny_broker(store: Option<SharedStore>) -> Broker {
        let mut rel = Relation::new(Schema::new(vec![
            ("name", ColumnType::Str),
            ("size", ColumnType::Int),
        ]));
        for i in 0..32 {
            rel.push(vec![format!("row{i}").into(), Value::Int(i)])
                .expect("schema matches");
        }
        let mut db = Database::new();
        db.add_table("T", rel);
        let mut builder = Broker::builder(db)
            .support_config(SupportConfig::with_size(40))
            .algorithm("UBP")
            .anticipate(Query::scan("T"), 30.0);
        if let Some(store) = store {
            builder = builder.store(store);
        }
        builder.build().expect("UBP is registered")
    }

    let q = Query::scan("T");
    let bare = tiny_broker(None);
    let dir = std::env::temp_dir().join(format!("qp-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store: SharedStore =
        Arc::new(FileStore::open(&dir).expect("opening the WAL bench scratch dir"));
    let durable = tiny_broker(Some(store));
    assert_eq!(
        bare.quote(&q).price.to_bits(),
        durable.quote(&q).price.to_bits(),
        "wal: the store must not change pricing"
    );

    let settle_sweep = |broker: &Broker| {
        let mut acc = 0u64;
        for i in 0..WAL_OPS as u64 {
            // Even ops sell, odd ops decline: both WAL record kinds count.
            let budget = if i % 2 == 0 { 1e9 } else { 0.0 };
            match broker.purchase_at(black_box(&q), budget, i).expect("eval") {
                PurchaseOutcome::Sold { price, .. } => acc = acc.wrapping_add(price.to_bits()),
                PurchaseOutcome::Declined { price } => acc = acc.wrapping_add(!price.to_bits()),
            }
        }
        acc
    };
    // Untimed warmup: the durable broker's first sweep pays WAL file
    // growth and first-touch page faults that a live server amortizes
    // over its whole run — they are setup, not quote-path cost.
    black_box(settle_sweep(&bare));
    black_box(settle_sweep(&durable));
    // Extra reps: this row gates a ratio of two ~35 µs composites, so its
    // median needs more samples than the nanosecond kernel rows.
    let (before_ns, after_ns) = time_ns_paired(
        reps * 2 - 1,
        iters,
        WAL_OPS,
        || settle_sweep(&bare),
        || settle_sweep(&durable),
    );
    assert_eq!(
        bare.ledger().total().to_bits(),
        durable.ledger().total().to_bits(),
        "wal: both brokers settled identical traffic"
    );
    let _ = std::fs::remove_dir_all(&dir);
    Row {
        group: "wal",
        kernel: "quote_settle_append",
        before_ns,
        after_ns,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let reps: usize = arg_value(&args, "--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 5 } else { 15 });
    let iters: usize = arg_value(&args, "--iters")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 20 } else { 200 });
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_kernels.json".to_string());

    println!(
        "kernel micro-benchmarks{}: {PAIRS} operand pairs/group, {reps} reps x {iters} iters",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rng = StdRng::seed_from_u64(0x5E7B17);
    let small_pool = pairs(&mut rng, SMALL_UNIVERSE, 24);
    let large_pool = pairs(&mut rng, LARGE_UNIVERSE, 512);

    let mut rows = Vec::new();
    rows.extend(set_rows("small_set", &small_pool, reps, iters));
    rows.extend(set_rows("large_set", &large_pool, reps, iters));
    let (merge_m, merge_iters) = if smoke { (1000, iters) } else { (10_000, 50) };
    rows.push(uip_merge_row(merge_m, 1, reps, merge_iters, 0x0417E5));
    rows.push(telemetry_overhead_row(&small_pool, reps, iters));
    // Fewer sweeps: each op is a full quote+settle with query evaluation.
    rows.push(tracing_overhead_row(reps, if smoke { iters } else { 50 }));
    rows.push(wal_append_row(reps, if smoke { iters } else { 50 }));

    for r in &rows {
        println!(
            "  {:<10} {:<16}: before {:>9.2} ns   after {:>9.2} ns   speedup {:>5.2}x",
            r.group,
            r.kernel,
            r.before_ns,
            r.after_ns,
            r.before_ns / r.after_ns
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"pricing_kernels\",\n");
    json.push_str(
        "  \"workload\": \"set algebra on inline- and chunked-sized operands; UIP rate-multiset merge\",\n",
    );
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"kernel\": \"{}\", \"before_ns\": {:.2}, \"after_ns\": {:.2}, \"speedup\": {:.2}}}{}\n",
            r.group,
            r.kernel,
            r.before_ns,
            r.after_ns,
            r.before_ns / r.after_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("writing the benchmark artifact");
    println!("wrote {out_path}");
}
