//! Incremental vs full-rebuild repricing latency → `BENCH_delta.json`.
//!
//! Simulates the live-repricing hot path over a sliding demand window of
//! `m` observed quotes: each measured repricing first absorbs a delta of
//! `pct`% fresh observations (evicting the oldest), then either
//!
//! * **full** — rebuilds the demand hypergraph from the window in arrival
//!   order and re-runs the full algorithm (the pre-delta path,
//!   `RepricingMode::FullRebuild`), or
//! * **incremental** — applies the accumulated `HypergraphDelta` to the
//!   live hypergraph in O(|delta|) and lets the algorithm's incremental
//!   rule patch the pricing in place (`RepricingMode::Incremental`).
//!
//! Both paths run over the *same* observation stream, and for the exact
//! algorithms (UBP, UIP) every repricing asserts the two installed
//! pricings are identical — the benchmark self-checks the equivalence it
//! is measuring. Neither UBP nor UIP queries the `ItemIndex`, so neither
//! path builds one — exactly like the simulator's hot path. (Index-using
//! algorithms have no incremental rule; their repricing cost is their own
//! full run — ~650 ms for Layering at m = 10k — which makes graph
//! maintenance noise by comparison.)
//!
//! ```bash
//! cargo run --release -p qp-bench --bin bench_delta
//! cargo run --release -p qp-bench --bin bench_delta -- \
//!     --sizes 1000,5000,10000 --deltas 1,5,20 --reps 15 --out BENCH_delta.json
//! cargo run --release -p qp-bench --bin bench_delta -- --smoke   # CI-sized
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qp_bench::arg_value;
use qp_core::ItemSet;
use qp_pricing::algorithms::{self, Repricer};
use qp_sim::DemandWindow;

/// Support size and observed-bundle shape of the synthetic demand stream
/// (thousands of support databases, as in the paper's experiments).
const NUM_ITEMS: usize = 2048;
const MAX_BUNDLE: usize = 24;

struct Row {
    algorithm: &'static str,
    edges: usize,
    delta_pct: usize,
    full_ms: f64,
    incremental_ms: f64,
}

/// One observed quote: a random conflict set and the buyer's bid.
fn observation(rng: &mut StdRng) -> (ItemSet, f64) {
    let size = rng.gen_range(1..=MAX_BUNDLE);
    let set: ItemSet = (0..size).map(|_| rng.gen_range(0..NUM_ITEMS)).collect();
    let bid: f64 = rng.gen_range(0.0..50.0);
    (set, bid)
}

/// Measures one (algorithm, m, pct) cell: median per-repricing latency of the
/// full and incremental paths over `reps` window slides each.
fn measure(algorithm: &'static str, m: usize, pct: usize, reps: usize, seed: u64) -> Row {
    let k = (m * pct).div_ceil(100).max(1);

    // Two windows fed the identical observation stream: one repriced by
    // full rebuilds, one by incremental deltas.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut full_window = DemandWindow::new(NUM_ITEMS, m);
    let mut inc_window = DemandWindow::new(NUM_ITEMS, m);
    let mut feed = |full: &mut DemandWindow, inc: &mut DemandWindow, count: usize| {
        for _ in 0..count {
            let (set, bid) = observation(&mut rng);
            full.observe(set.clone(), bid);
            inc.observe(set, bid);
        }
    };
    feed(&mut full_window, &mut inc_window, m);

    let mut repricer = Repricer::new(
        algorithms::by_name(algorithm).expect("benchmarked algorithms are registered"),
    );
    let exact = repricer.is_incremental() && matches!(algorithm, "UBP" | "UIP");

    // Prime outside the timed region: build the incremental graph and the
    // repricer state, and install the initial pricings.
    let (demand, ops) = inc_window.flush();
    let (out, patch) = repricer.reprice(demand, &ops);
    let mut inc_pricing = out.pricing;
    patch.apply(&mut inc_pricing);
    full_window.flush();

    let mut full_samples = Vec::with_capacity(reps);
    let mut incremental_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        feed(&mut full_window, &mut inc_window, k);

        // Full rebuild: window → fresh hypergraph → full algorithm run.
        let t0 = Instant::now();
        full_window.flush();
        let h = full_window.rebuild_in_arrival_order();
        let full_pricing = repricer.run_full(&h).pricing;
        full_samples.push(t0.elapsed().as_secs_f64() * 1e3);

        // Incremental: delta → live hypergraph → in-place pricing patch.
        let t0 = Instant::now();
        let (demand, ops) = inc_window.flush();
        let (_, patch) = repricer.reprice(demand, &ops);
        patch.apply(&mut inc_pricing);
        incremental_samples.push(t0.elapsed().as_secs_f64() * 1e3);

        if exact {
            assert_eq!(
                inc_pricing, full_pricing,
                "{algorithm}: incremental and full pricings diverged at m={m}, delta={pct}%"
            );
        }
    }

    Row {
        algorithm,
        edges: m,
        delta_pct: pct,
        full_ms: median(&mut full_samples),
        incremental_ms: median(&mut incremental_samples),
    }
}

/// Median of the collected per-repricing latencies — resistant to the
/// allocator/scheduler spikes a shared machine injects into mean latencies.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let sizes: Vec<usize> = arg_value(&args, "--sizes")
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| {
            if smoke {
                vec![300]
            } else {
                vec![1000, 5000, 10_000]
            }
        });
    let deltas: Vec<usize> = arg_value(&args, "--deltas")
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| if smoke { vec![5] } else { vec![1, 5, 20] });
    let reps: usize = arg_value(&args, "--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 3 } else { 15 });
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_delta.json".to_string());

    println!(
        "delta repricing{}: {NUM_ITEMS} support items, windows {sizes:?}, deltas {deltas:?}%, {reps} reps",
        if smoke { " (smoke)" } else { "" }
    );
    let mut rows = Vec::new();
    for &algorithm in &["UBP", "UIP"] {
        for &m in &sizes {
            for &pct in &deltas {
                let row = measure(algorithm, m, pct, reps, 0xDE17A + m as u64);
                println!(
                    "  {:<4} m {:>6}  delta {:>3}%: full {:>9.3} ms   incremental {:>9.3} ms   speedup {:>6.1}x",
                    row.algorithm,
                    row.edges,
                    row.delta_pct,
                    row.full_ms,
                    row.incremental_ms,
                    row.full_ms / row.incremental_ms
                );
                rows.push(row);
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"delta_repricing\",\n");
    json.push_str("  \"workload\": \"synthetic sliding demand window\",\n");
    json.push_str(&format!("  \"support_items\": {NUM_ITEMS},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"edges\": {}, \"delta_pct\": {}, \"full_ms\": {:.4}, \"incremental_ms\": {:.4}, \"speedup\": {:.2}}}{}\n",
            r.algorithm,
            r.edges,
            r.delta_pct,
            r.full_ms,
            r.incremental_ms,
            r.full_ms / r.incremental_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("writing the benchmark artifact");
    println!("wrote {out_path}");
}
