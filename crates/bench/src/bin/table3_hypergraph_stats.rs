//! Table 3: hypergraph characteristics of the four query workloads
//! (number of queries m, maximum degree B, average edge size), plus the
//! empty-edge and unique-item counts discussed in §6.2.

use qp_bench::{build_instance, scale_from_args, WorkloadKind};

fn main() {
    let scale = scale_from_args();
    println!("Table 3: Hypergraph Characteristics (scale: {scale:?})");
    println!(
        "{:<10} {:>12} {:>14} {:>16} {:>14} {:>20}",
        "Workload",
        "# Queries(m)",
        "Max degree(B)",
        "Avg edge size",
        "Empty edges",
        "Edges w/ unique item"
    );
    for kind in WorkloadKind::all() {
        let inst = build_instance(kind, scale);
        let stats = inst.hypergraph.stats();
        println!(
            "{:<10} {:>12} {:>14} {:>16.2} {:>14} {:>20}",
            kind.name(),
            stats.num_edges,
            stats.max_degree,
            stats.avg_edge_size,
            stats.empty_edges,
            stats.edges_with_unique_item
        );
    }
}
