//! Figure 8: revenue extracted as the support-set size shrinks, on the skewed
//! and SSB workloads with Uniform\[1,100\] valuations.
//!
//! The hypergraph over the largest support is built once; smaller supports
//! are prefixes of it, so their hyperedges are obtained by restricting each
//! conflict set to the first `|S|` items (identical to recomputing, since the
//! support databases are sampled independently).

use qp_bench::{
    build_instance, print_panel, run_all_algorithms, scale_from_args, AlgoConfig, WorkloadKind,
};
use qp_workloads::valuations::{assign_valuations, ValuationModel};

fn main() {
    let scale = scale_from_args();
    println!("Figure 8: revenue vs support-set size, Uniform[1,100] valuations (scale: {scale:?})");
    let cfg = AlgoConfig::at_scale(scale);
    for kind in [WorkloadKind::Skewed, WorkloadKind::Ssb] {
        let inst = build_instance(kind, scale);
        let full = inst.support.len();
        // Five geometrically spaced support sizes, mirroring the paper's
        // {100, 500, 1000, 5000, 15000} sweep.
        let sweep: Vec<usize> = [0.01, 0.05, 0.1, 0.5, 1.0]
            .iter()
            .map(|f| ((full as f64 * f) as usize).max(5))
            .collect();
        println!(
            "\n#### {} workload: {} queries, full support {} ####",
            kind.name(),
            inst.workload.len(),
            full
        );
        for &s in &sweep {
            let mut h = inst.hypergraph.restrict_items(s);
            assign_valuations(&mut h, &ValuationModel::SampledUniform { k: 100.0 }, 31);
            let (runs, sum, sub) = run_all_algorithms(&h, &cfg);
            print_panel(
                &format!("{} workload; |S| = {s}", kind.name()),
                &runs,
                sum,
                sub,
            );
        }
    }
}
