//! Table 6: running times (seconds) on the SSB workload as a function of the
//! support-set size, *excluding* hypergraph-construction time, as in the
//! paper.

use qp_bench::{
    build_instance, hypergraph_for_support, run_with_model, scale_from_args, secs, AlgoConfig,
    WorkloadKind,
};
use qp_workloads::valuations::ValuationModel;

fn main() {
    let scale = scale_from_args();
    println!("Table 6: SSB workload running times vs support size, construction excluded (scale: {scale:?})");
    let cfg = AlgoConfig::at_scale(scale);
    let inst = build_instance(WorkloadKind::Ssb, scale);
    let full = inst.support.len();
    let sweep: Vec<usize> = [0.01, 0.05, 0.1, 0.5, 1.0]
        .iter()
        .map(|f| ((full as f64 * f) as usize).max(5))
        .collect();

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "|S|", "LPIP", "UBP", "UIP", "CIP", "Layering"
    );
    for &s in &sweep {
        let (h, _construction) = hypergraph_for_support(&inst, s);
        let (runs, _, _) =
            run_with_model(&h, &ValuationModel::SampledUniform { k: 100.0 }, 47, &cfg);
        let time_of = |name: &str| {
            runs.iter()
                .find(|r| r.name == name)
                .map(|r| secs(r.time))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            s,
            time_of("LPIP"),
            time_of("UBP"),
            time_of("UIP"),
            time_of("CIP"),
            time_of("Layering"),
        );
    }
}
