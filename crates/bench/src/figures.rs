//! Shared drivers for the revenue figures (Figures 5–7 of the paper).
//!
//! Each driver builds the requested workload instances once, then sweeps the
//! valuation-model parameters, reusing the conflict-set hypergraph across
//! parameter values (only the valuations change — exactly as in the paper's
//! setup).

use qp_workloads::valuations::ValuationModel;
use qp_workloads::Scale;

use crate::{build_instance, print_panel, run_with_model, AlgoConfig, WorkloadKind};

/// Figure 5a / 6a: *sampled* bundle valuations — Uniform[1, k] for
/// k ∈ {100, …, 500} and Zipf(a) for a ∈ {1.5, …, 2.5}.
pub fn sampled_valuations(kinds: &[WorkloadKind], scale: Scale) {
    let cfg = AlgoConfig::at_scale(scale);
    for &kind in kinds {
        let inst = build_instance(kind, scale);
        println!(
            "\n#### {} workload: {} queries, support {} ####",
            kind.name(),
            inst.workload.len(),
            inst.support.len()
        );
        for k in [100.0, 200.0, 300.0, 400.0, 500.0] {
            let model = ValuationModel::SampledUniform { k };
            let (runs, sum, sub) = run_with_model(&inst.hypergraph, &model, 11, &cfg);
            print_panel(
                &format!(
                    "{} queries, {} workload; uniform dist. k = {k}",
                    inst.workload.len(),
                    kind.name()
                ),
                &runs,
                sum,
                sub,
            );
        }
        for a in [1.5, 1.75, 2.0, 2.25, 2.5] {
            let model = ValuationModel::SampledZipf {
                a,
                max_rank: 10_000,
            };
            let (runs, sum, sub) = run_with_model(&inst.hypergraph, &model, 13, &cfg);
            print_panel(
                &format!(
                    "{} queries, {} workload; zipfian dist. a = {a}",
                    inst.workload.len(),
                    kind.name()
                ),
                &runs,
                sum,
                sub,
            );
        }
    }
}

/// Figure 5b / 6b: *scaled* bundle valuations — Exponential(|e|^k) and
/// Normal(|e|^k, 10) for k ∈ {2, 3/2, 1, 1/2, 1/4}.
pub fn scaled_valuations(kinds: &[WorkloadKind], scale: Scale) {
    let cfg = AlgoConfig::at_scale(scale);
    let ks = [2.0, 1.5, 1.0, 0.5, 0.25];
    for &kind in kinds {
        let inst = build_instance(kind, scale);
        println!(
            "\n#### {} workload: {} queries, support {} ####",
            kind.name(),
            inst.workload.len(),
            inst.support.len()
        );
        for &k in &ks {
            let model = ValuationModel::ScaledExponential { k };
            let (runs, sum, sub) = run_with_model(&inst.hypergraph, &model, 17, &cfg);
            print_panel(
                &format!("{} workload; exponential dist. beta = |e|^{k}", kind.name()),
                &runs,
                sum,
                sub,
            );
        }
        for &k in &ks {
            let model = ValuationModel::ScaledNormal { k, variance: 10.0 };
            let (runs, sum, sub) = run_with_model(&inst.hypergraph, &model, 19, &cfg);
            print_panel(
                &format!(
                    "{} workload; normal dist. mu = |e|^{k}, sigma^2 = 10",
                    kind.name()
                ),
                &runs,
                sum,
                sub,
            );
        }
    }
}

/// Figure 7a / 7b: the additive item-price model with
/// D̃ ∈ {Uniform[1, k], Binomial(k, ½)} and k ∈ {1, 10, 10², 10³, 5·10³, 10⁴}.
pub fn item_price_model(kinds: &[WorkloadKind], scale: Scale) {
    let cfg = AlgoConfig::at_scale(scale);
    let ks = [1usize, 10, 100, 1000, 5000, 10_000];
    for &kind in kinds {
        let inst = build_instance(kind, scale);
        println!(
            "\n#### {} workload: {} queries, support {} ####",
            kind.name(),
            inst.workload.len(),
            inst.support.len()
        );
        for &k in &ks {
            let model = ValuationModel::AdditiveUniform { k };
            let (runs, sum, sub) = run_with_model(&inst.hypergraph, &model, 23, &cfg);
            print_panel(
                &format!("{} workload; D~ = Uniform[1,{k}]", kind.name()),
                &runs,
                sum,
                sub,
            );
        }
        for &k in &ks {
            let model = ValuationModel::AdditiveBinomial { k };
            let (runs, sum, sub) = run_with_model(&inst.hypergraph, &model, 29, &cfg);
            print_panel(
                &format!("{} workload; D~ = Binomial({k}, 0.5)", kind.name()),
                &runs,
                sum,
                sub,
            );
        }
    }
}
