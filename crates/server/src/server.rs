//! The TCP front-end: an accept loop fanning connections across handler
//! threads, each speaking the frame protocol against the shared
//! [`ShardSet`].
//!
//! The server is deliberately boring: **all** pricing logic lives in the
//! shard set; a connection handler only decodes a frame, dispatches, and
//! encodes the reply. Malformed payloads are answered with a typed
//! [`Response::Error`] rather than a dropped connection, so clients can
//! tell a protocol bug from a network failure.
//!
//! Shutdown is cooperative: a `SHUTDOWN` frame (or [`QuoteServer::shutdown`])
//! sets a stop flag and wakes the accept loop with a dummy connection.
//! Handler threads notice the flag at their next idle read timeout and wind
//! down; in-flight requests always complete.

use parking_lot::atomic::{AtomicBool, Ordering};
use parking_lot::Mutex;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use qp_core::RingBuffer;
use qp_store::SharedStore;
use qp_telemetry::{FlightDump, ProtocolEvent, TelemetrySink};

use crate::protocol::{write_frame, ErrorCode, QuoteReply, Request, Response, MAX_FRAME};
use crate::shard::{SettleOutcome, ShardSet};

/// How often an idle handler thread re-checks the stop flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// How many protocol events the flight recorder retains (newest win).
const PROTO_EVENT_CAPACITY: usize = 256;

/// The crash flight recorder: a bounded, preallocated ring of the last-N
/// protocol events plus handles to everything else a post-mortem wants
/// (the registry, the flight span journal, the store's WAL sequence), and
/// a single-shot `dump()` that freezes it all into `flight.dump` in the
/// data directory — CRC-framed, torn-tail tolerant (see
/// [`qp_telemetry::flight`]).
///
/// `dump()` is called from crash paths — the `CrashSwitch` fire site and
/// the panic hook — so it never panics and never blocks unboundedly.
pub struct FlightRecorder {
    dir: PathBuf,
    sink: TelemetrySink,
    store: Option<SharedStore>,
    events: Mutex<RingBuffer<ProtocolEvent>>,
    dumped: AtomicBool,
}

impl FlightRecorder {
    /// A recorder dumping into `dir` (normally the server's `--data-dir`),
    /// reading the registry behind `sink` and, when `store` is present,
    /// stamping the dump with its WAL sequence number.
    pub fn new(
        dir: impl Into<PathBuf>,
        sink: TelemetrySink,
        store: Option<SharedStore>,
    ) -> Arc<Self> {
        Arc::new(FlightRecorder {
            dir: dir.into(),
            sink,
            store,
            events: Mutex::new(RingBuffer::new(PROTO_EVENT_CAPACITY)),
            dumped: AtomicBool::new(false),
        })
    }

    /// Records one protocol event (called per dispatched frame).
    pub fn record_event(&self, opcode: u8, trace_id: u64, frame_len: u32) {
        self.events.lock().push(ProtocolEvent {
            opcode,
            trace_id,
            frame_len,
        });
    }

    /// Writes the dump, once: later calls (a panic racing the crash
    /// switch, say) are no-ops. Returns the path on the first successful
    /// write. I/O failures are swallowed — a crash path has nobody to
    /// report to, and the WAL's own durability never depends on the dump.
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        // ordering: SeqCst — single-shot latch; exactness beats speed on a
        // path that runs at most once.
        if self.dumped.swap(true, Ordering::SeqCst) {
            return None;
        }
        let wal_seq = self.store.as_ref().map_or(0, |s| s.wal_seq());
        let dump = FlightDump::capture(
            reason,
            wal_seq,
            self.sink.snapshot(),
            self.sink.flight_roots(),
            self.events.lock().to_vec(),
        );
        dump.write_to(&self.dir).ok()
    }

    /// Whether the dump has already been written (or is being written).
    pub fn already_dumped(&self) -> bool {
        // ordering: SeqCst — pairs with the swap in `dump`.
        self.dumped.load(Ordering::SeqCst)
    }

    /// Installs a process-wide panic hook that writes the dump (chained:
    /// the previous hook still runs, so backtraces keep printing).
    pub fn install_panic_hook(recorder: &Arc<Self>) {
        let recorder = Arc::clone(recorder);
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            recorder.dump(&format!("panic: {info}"));
            previous(info);
        }));
    }

    /// Reads a previously written dump back from `dir` (recovery /
    /// post-mortem side). `Ok(None)` when no dump was ever written.
    pub fn read_dump(dir: &Path) -> io::Result<Option<FlightDump>> {
        FlightDump::read_from(dir)
    }
}

/// Crash injection for durability testing: arms a budget of `n` dispatched
/// requests, after which the server "crashes" — it stops serving instantly
/// and drops every connection without a reply, exactly as if the process
/// died between requests.
///
/// The check runs at **dispatch entry**, so a request is either never
/// dispatched (the client sees a dead connection and must retry against
/// the recovered server) or fully dispatched with its reply written. There
/// is no settled-but-unacked window, which is what lets the crash harness
/// demand *bit-identical* revenue against an uninterrupted run: combined
/// with the store's append-before-ack ordering, every settle is either
/// durable or observably never happened.
#[derive(Clone)]
pub struct CrashSwitch {
    /// Remaining dispatches before the crash fires.
    budget: Arc<parking_lot::atomic::AtomicU64>,
    crashed: Arc<AtomicBool>,
}

impl CrashSwitch {
    /// Crash after `n` dispatched requests (the `n+1`-th is refused).
    pub fn after(n: u64) -> CrashSwitch {
        CrashSwitch {
            budget: Arc::new(parking_lot::atomic::AtomicU64::new(n)),
            crashed: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Whether the crash has fired (the supervisor's cue to recover).
    pub fn crashed(&self) -> bool {
        // ordering: Acquire — pairs with the Release store in
        // `should_crash`; the supervisor that observes the crash also sees
        // every WAL append the server performed before it.
        self.crashed.load(Ordering::Acquire)
    }

    fn should_crash(&self) -> bool {
        // ordering: Acquire — see `crashed`.
        if self.crashed.load(Ordering::Acquire) {
            return true;
        }
        // ordering: SeqCst — the budget handoff decides *which* request
        // crashes; keep the strongest ordering so the count is exact
        // across handler threads.
        let exhausted = self
            .budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_err();
        if exhausted {
            // ordering: Release — pairs with the Acquire loads above.
            self.crashed.store(true, Ordering::Release);
        }
        exhausted
    }
}

struct ServerState {
    shards: ShardSet,
    stop: AtomicBool,
    crash: Option<CrashSwitch>,
    flight: Option<Arc<FlightRecorder>>,
    /// Requests past the crash check but before their reply write. A crash
    /// supervisor must not reopen the data directory until this drains —
    /// an in-flight dispatch may still be appending to the WAL.
    in_flight: parking_lot::atomic::AtomicU64,
}

/// A running quote server: the accept loop runs on its own thread from
/// `bind` until [`QuoteServer::shutdown`] (or drop).
pub struct QuoteServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_handle: Option<JoinHandle<()>>,
}

impl QuoteServer {
    /// Binds a listener and starts serving `shards` immediately.
    ///
    /// Bind to port 0 to let the OS pick a free port; the actual address is
    /// available from [`QuoteServer::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs, shards: ShardSet) -> io::Result<QuoteServer> {
        QuoteServer::bind_inner(addr, shards, None, None)
    }

    /// [`QuoteServer::bind`] with crash injection armed: once `crash`'s
    /// dispatch budget is exhausted the server stops serving instantly,
    /// simulating a process kill (durability test harnesses only).
    pub fn bind_with_crash_switch(
        addr: impl ToSocketAddrs,
        shards: ShardSet,
        crash: CrashSwitch,
    ) -> io::Result<QuoteServer> {
        QuoteServer::bind_inner(addr, shards, Some(crash), None)
    }

    /// The fully-armed bind: optional crash injection *and* an optional
    /// [`FlightRecorder`]. With a recorder attached, every dispatched
    /// frame is logged to its protocol-event ring and a crash-switch fire
    /// writes the flight dump before the server goes dark.
    pub fn bind_with_options(
        addr: impl ToSocketAddrs,
        shards: ShardSet,
        crash: Option<CrashSwitch>,
        flight: Option<Arc<FlightRecorder>>,
    ) -> io::Result<QuoteServer> {
        QuoteServer::bind_inner(addr, shards, crash, flight)
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        shards: ShardSet,
        crash: Option<CrashSwitch>,
        flight: Option<Arc<FlightRecorder>>,
    ) -> io::Result<QuoteServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            shards,
            stop: AtomicBool::new(false),
            crash,
            flight,
            in_flight: parking_lot::atomic::AtomicU64::new(0),
        });
        let accept_state = Arc::clone(&state);
        let accept_handle = std::thread::Builder::new()
            .name("qp-server-accept".into())
            .spawn(move || accept_loop(listener, accept_state))?;
        Ok(QuoteServer {
            addr,
            state,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard set being served (stats, direct quoting in tests).
    pub fn shards(&self) -> &ShardSet {
        &self.state.shards
    }

    /// Stops accepting connections and joins the accept loop. Idempotent.
    /// Connection handlers finish their in-flight request and exit at
    /// their next idle poll.
    pub fn shutdown(&mut self) {
        // ordering: Release — pairs with the Acquire loads in the accept
        // loop and idle polls, so work done before shutdown is visible to
        // the threads that observe the flag.
        self.state.stop.store(true, Ordering::Release);
        // Wake the accept loop: a throwaway connection, immediately closed.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until the server shuts down (a `SHUTDOWN` frame arrives or
    /// another thread calls [`QuoteServer::shutdown`]). Used by the
    /// standalone `serve` binary.
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }

    /// Crash-harness quiesce: stops accepting and blocks until no request
    /// is between its crash check and its reply write. After this returns,
    /// the old server will never append to the store again, so a
    /// supervisor may safely reopen the data directory and recover.
    pub fn quiesce(&mut self) {
        self.shutdown();
        // ordering: SeqCst — the handler's increment precedes its budget
        // RMW (program order), budget RMWs are totally ordered, and the
        // crashing RMW precedes the Release store that made `crashed()`
        // true for the supervisor; so after observing the crash, every
        // dispatching handler's increment is visible here, and seeing the
        // matching decrement means its dispatch (and WAL append) completed.
        while self.state.in_flight.load(Ordering::SeqCst) != 0 {
            // timing: quiesce poll only; never affects a settled outcome.
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Drop for QuoteServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    for stream in listener.incoming() {
        // ordering: Acquire — pairs with the Release stores of the stop
        // flag; everything the stopping thread did is visible here.
        if state.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_state = Arc::clone(&state);
        // Handlers are detached: they exit on peer EOF or at the first
        // idle poll after the stop flag is set.
        let _ = std::thread::Builder::new()
            .name("qp-server-conn".into())
            .spawn(move || handle_connection(stream, conn_state));
    }
}

fn handle_connection(mut stream: TcpStream, state: Arc<ServerState>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    // Span sites resolved once per connection: the per-frame path below
    // never touches the registry map.
    let sink = state.shards.telemetry_sink().clone();
    let request_span = sink.span_handle("server.request");
    let decode_span = sink.span_handle("frame.decode");
    loop {
        let payload = match read_frame_idle_aware(&mut stream, &state.stop) {
            Ok(Some(payload)) => payload,
            Ok(None) | Err(_) => return, // peer EOF, stop flag, or broken pipe
        };
        // Crash injection point: the "process" dies between requests —
        // this frame is never dispatched and never answered. In-flight
        // requests on other threads complete and write their replies.
        // The in-flight count brackets the check itself (see `quiesce`):
        // incrementing *before* the check is what makes "crashed and
        // in_flight == 0" mean no dispatch can ever touch the WAL again.
        // ordering: SeqCst — see `QuoteServer::quiesce`.
        state.in_flight.fetch_add(1, Ordering::SeqCst);
        if let Some(crash) = &state.crash {
            if crash.should_crash() {
                // ordering: Release — as in shutdown(): the WAL appends of
                // every dispatched request happen-before the flag.
                state.stop.store(true, Ordering::Release);
                // ordering: SeqCst — see `QuoteServer::quiesce`.
                state.in_flight.fetch_sub(1, Ordering::SeqCst);
                // Black-box moment: freeze the flight recorder at the
                // instant of death. In-flight dispatches on other threads
                // are waited out first (bounded — they always complete),
                // so the dump's WAL sequence number is exactly the
                // sequence recovery will replay to.
                if let Some(recorder) = &state.flight {
                    if !recorder.already_dumped() {
                        for _ in 0..1000 {
                            // ordering: SeqCst — see `QuoteServer::quiesce`.
                            if state.in_flight.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            // timing: crash-dump drain poll only.
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        recorder.dump("crash-switch kill");
                    }
                }
                let _ = stream.local_addr().map(TcpStream::connect);
                return;
            }
        }
        // Root span over the whole serve path (decode → dispatch → write);
        // idle time waiting for the frame is deliberately excluded.
        let req_guard = request_span.enter();
        let decoded = {
            let _guard = decode_span.enter();
            Request::decode(&payload)
        };
        let (response, shutdown) = match decoded {
            Ok(request) => {
                if let Some(recorder) = &state.flight {
                    // Log the *inner* opcode for envelopes so a post-mortem
                    // reads real traffic, with the trace id alongside.
                    let (op, tid) = match &request {
                        Request::Traced { trace_id, request } => (request.wire_opcode(), *trace_id),
                        other => (other.wire_opcode(), 0),
                    };
                    recorder.record_event(op, tid, payload.len() as u32);
                }
                dispatch(&state, request)
            }
            Err(err) => (error_response(&err), false),
        };
        let write_failed = write_frame(&mut stream, &response.encode()).is_err();
        drop(req_guard);
        // ordering: SeqCst — see `QuoteServer::quiesce`; the decrement
        // comes after the reply write, so quiesce implies every dispatched
        // request was also acked.
        state.in_flight.fetch_sub(1, Ordering::SeqCst);
        if write_failed {
            return;
        }
        if shutdown {
            // ordering: Release — pairs with the Acquire loads in the
            // accept loop and idle polls (see shutdown()).
            state.stop.store(true, Ordering::Release);
            // Wake the accept loop so it observes the flag.
            let _ = stream.local_addr().map(TcpStream::connect);
            return;
        }
    }
}

/// Executes one request against the shard set. Returns the reply and
/// whether the connection asked the server to shut down.
fn dispatch(state: &ServerState, request: Request) -> (Response, bool) {
    match request {
        Request::Quote(bundle) => {
            let q = state.shards.quote(&bundle);
            (
                Response::Quoted(QuoteReply {
                    quote_id: q.quote_id,
                    price: q.price,
                    epoch: q.epoch,
                    shard: q.shard as u32,
                    cache_hit: q.cache_hit,
                }),
                false,
            )
        }
        Request::Purchase {
            quote_id,
            budget,
            tick,
        } => match state.shards.settle(quote_id, budget, tick) {
            SettleOutcome::Settled { sold, price } => (Response::Purchased { sold, price }, false),
            SettleOutcome::Expired => (
                Response::Error {
                    code: ErrorCode::QuoteExpired,
                    message: format!(
                        "quote {quote_id} expired under pending-table pressure; re-quote"
                    ),
                },
                false,
            ),
            SettleOutcome::Unknown => (
                Response::Error {
                    code: ErrorCode::UnknownQuote,
                    message: format!("quote {quote_id} was never issued or is already settled"),
                },
                false,
            ),
        },
        Request::Stats => (Response::Stats(state.shards.stats()), false),
        Request::Reprice(patch) => (
            Response::Repriced {
                epochs: state.shards.apply_patch(&patch),
            },
            false,
        ),
        Request::Shutdown => (Response::ShutdownAck, true),
        Request::Metrics => (
            Response::Metrics(state.shards.telemetry_sink().snapshot()),
            false,
        ),
        Request::Trace { trace_id } => (
            Response::Trace(state.shards.telemetry_sink().exemplars_for_trace(trace_id)),
            false,
        ),
        Request::Traced { trace_id, request } => {
            // Install the wire trace id as this thread's ambient trace
            // context. The `server.request` root span is already open in
            // `handle_connection`; at its drop the id is stamped into the
            // exemplar, which is what stitches the server span tree to the
            // client's under one trace id.
            if state.shards.telemetry_sink().is_enabled() {
                qp_telemetry::set_current_trace_id(trace_id);
            }
            dispatch(state, *request)
        }
    }
}

fn error_response(err: &crate::protocol::WireError) -> Response {
    use crate::protocol::WireError;
    let code = match err {
        WireError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
        _ => ErrorCode::Malformed,
    };
    Response::Error {
        code,
        message: err.to_string(),
    }
}

/// [`read_frame`] over a stream with a read timeout: timeouts while waiting
/// for a new frame's first byte poll the stop flag and keep waiting, so an
/// idle keep-alive connection neither busy-spins nor outlives shutdown.
/// A timeout *inside* a frame keeps reading — the peer has committed to
/// sending it.
fn read_frame_idle_aware(stream: &mut TcpStream, stop: &AtomicBool) -> io::Result<Option<Vec<u8>>> {
    // Header, byte by byte so a timeout before the first byte is cleanly
    // distinguishable from one mid-header.
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // ordering: Acquire — pairs with the Release stores of the
                // stop flag.
                if got == 0 && stop.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match stream.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame payload",
                ))
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::QuoteClient;
    use crate::protocol::read_frame;
    use qp_core::ItemSet;
    use qp_market::{Broker, SupportConfig};
    use qp_pricing::algorithms::PricingPatch;
    use qp_qdb::{ColumnType, Database, Query, Relation, Schema, Value};

    fn tiny_broker() -> Arc<Broker> {
        let mut rel = Relation::new(Schema::new(vec![
            ("name", ColumnType::Str),
            ("size", ColumnType::Int),
        ]));
        for i in 0..10 {
            rel.push(vec![format!("row{i}").into(), Value::Int(i)])
                .unwrap();
        }
        let mut db = Database::new();
        db.add_table("T", rel);
        Arc::new(
            Broker::builder(db)
                .support_config(SupportConfig::with_size(40))
                .algorithm("UBP")
                .anticipate(Query::scan("T"), 30.0)
                .build()
                .expect("UBP is registered"),
        )
    }

    fn start_server(shards: usize) -> QuoteServer {
        let set = ShardSet::new((0..shards).map(|_| tiny_broker()).collect());
        QuoteServer::bind("127.0.0.1:0", set).expect("bind loopback")
    }

    #[test]
    fn quote_purchase_stats_roundtrip_over_tcp() {
        let mut server = start_server(2);
        let mut client = QuoteClient::connect(server.local_addr()).expect("connect");

        client
            .reprice(&PricingPatch::SetUniformPrice(5.0))
            .expect("reprice");
        let bundle: ItemSet = [0usize, 3].as_slice().into();
        let q = client.quote(&bundle).expect("quote");
        assert_eq!(q.price, 5.0);
        assert!((q.shard as usize) < 2);

        // Repricing between quote and purchase: the quote is honored.
        let epochs = client
            .reprice(&PricingPatch::SetUniformPrice(50.0))
            .expect("reprice");
        assert_eq!(epochs.len(), 2);
        let (sold, price) = client.purchase(q.quote_id, 5.0, 3).expect("purchase");
        assert!(sold);
        assert_eq!(price, 5.0);

        // One-shot: the second settlement attempt is a typed error.
        let err = client.purchase(q.quote_id, 5.0, 3).expect_err("consumed");
        assert!(err.to_string().contains("already settled"), "{err}");

        let stats = client.stats().expect("stats");
        assert_eq!(stats.len(), 2);
        assert_eq!(stats.iter().map(|s| s.sales).sum::<u64>(), 1);
        let revenue: f64 = stats.iter().map(|s| s.revenue).sum();
        assert!((revenue - 5.0).abs() < 1e-12);

        drop(client);
        server.shutdown();
    }

    #[test]
    fn malformed_and_unknown_frames_get_typed_errors_not_hangups() {
        let mut server = start_server(1);
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

        // Unknown opcode.
        write_frame(&mut stream, &[0x42u8]).unwrap();
        let reply = read_frame(&mut stream).unwrap().expect("reply");
        match Response::decode(&reply).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownOpcode),
            other => panic!("expected error, got {other:?}"),
        }

        // Truncated QUOTE body — the connection survives to serve a good
        // request afterwards.
        write_frame(&mut stream, &[0x01u8, 0, 0]).unwrap();
        let reply = read_frame(&mut stream).unwrap().expect("reply");
        match Response::decode(&reply).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("expected error, got {other:?}"),
        }
        write_frame(&mut stream, &Request::Stats.encode()).unwrap();
        let reply = read_frame(&mut stream).unwrap().expect("reply");
        assert!(matches!(
            Response::decode(&reply).unwrap(),
            Response::Stats(_)
        ));

        drop(stream);
        server.shutdown();
    }

    #[test]
    fn shutdown_frame_winds_the_server_down() {
        let mut server = start_server(1);
        let addr = server.local_addr();
        let mut client = QuoteClient::connect(addr).expect("connect");
        client.shutdown_server().expect("acked");
        // The accept loop exits; wait() returns rather than blocking
        // forever.
        server.wait();
        // New connections are no longer served (either refused outright or
        // accepted by the OS backlog and never answered — sending must not
        // yield a reply).
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = write_frame(&mut s, &Request::Stats.encode());
            s.set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            let got_reply = matches!(read_frame(&mut s), Ok(Some(_)));
            assert!(!got_reply, "a shut-down server must not serve");
        }
    }

    #[test]
    fn concurrent_clients_each_get_their_own_answers() {
        let server = start_server(2);
        let addr = server.local_addr();
        server
            .shards()
            .apply_patch(&PricingPatch::SetUniformPrice(2.0));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut client = QuoteClient::connect(addr).expect("connect");
                    let mut bought = 0usize;
                    for i in 0..25usize {
                        let bundle: ItemSet = [t, i % 7].as_slice().into();
                        let q = client.quote(&bundle).expect("quote");
                        let (sold, price) = client
                            .purchase(q.quote_id, 2.0, i as u64)
                            .expect("purchase");
                        assert_eq!(price.to_bits(), q.price.to_bits());
                        bought += usize::from(sold);
                    }
                    bought
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100, "uniform price 2 with budget 2 always sells");
        let stats = server.shards().stats();
        assert_eq!(stats.iter().map(|s| s.sales).sum::<u64>(), 100);
    }
}
