//! The network [`SettleTransport`]: `qp-sim`'s event loop driven over the
//! wire.
//!
//! [`NetTransport`] implements the transport boundary the simulator's
//! engine was factored around (`qp_sim::driver`): each worker thread gets
//! its own TCP connection ([`NetWorker`]), buyers' queries are resolved to
//! their **precomputed** conflict-set bundles through a [`BundleTable`]
//! (the server prices bundles, not queries), and live repricings travel as
//! `REPRICE` frames on a dedicated admin connection — acknowledged before
//! the engine proceeds, so pricing changes land on tick boundaries exactly
//! as they do in-process.
//!
//! Because the engine samples everything on the coordinating thread and
//! aggregates in arrival order, a run over this transport must report
//! **bit-identical revenue** to an in-process run with the same seed
//! against an identically built broker — the determinism self-check the
//! `loadgen` binary performs on every invocation.
//!
//! Workers panic on I/O errors: this transport exists for load generation
//! and self-checks, where a lost connection invalidates the run.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use qp_core::ItemSet;
use qp_market::Broker;
use qp_pricing::algorithms::PricingPatch;
use qp_pricing::Pricing;
use qp_sim::driver::{SettleTransport, SettleWorker, SettledQuote};
use qp_sim::{Buyer, Population};

use crate::client::QuoteClient;

/// Conflict-set bundles for every query a schedule can sample, indexed
/// `[phase][segment][query]` — the shape of [`Buyer`]'s indices.
pub struct BundleTable {
    phases: Vec<Vec<Vec<ItemSet>>>,
    num_items: usize,
}

impl BundleTable {
    /// Precomputes the conflict set of every query in every phase of a
    /// schedule against `broker`'s support. The broker only lends its
    /// conflict engine here; its pricing is never read.
    pub fn for_schedule(broker: &Broker, schedule: &[(u64, Population)]) -> BundleTable {
        let phases = schedule
            .iter()
            .map(|(_, population)| {
                population
                    .segments()
                    .iter()
                    .map(|segment| {
                        segment
                            .queries
                            .iter()
                            .map(|q| broker.conflict_set(q))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        BundleTable {
            phases,
            num_items: broker.support().len(),
        }
    }

    /// The bundle for a sampled buyer in a schedule phase.
    pub fn bundle(&self, phase: usize, buyer: &Buyer) -> &ItemSet {
        &self.phases[phase][buyer.segment][buyer.query]
    }

    /// Number of support items the bundles index into.
    pub fn num_items(&self) -> usize {
        self.num_items
    }
}

/// The engine-facing network transport: hands each fan-out thread a
/// dedicated connection and broadcasts repricings over an admin connection.
///
/// Connections are pooled: the engine requests one worker per fan-out
/// thread **per tick**, so workers check their connection back in on drop
/// and the next tick's workers reuse it — connection setup happens once
/// per concurrent thread, not once per tick, and the timed run measures
/// quoting rather than TCP handshakes. A worker that panics mid-request
/// drops its connection instead (the stream may carry a half-read reply).
pub struct NetTransport {
    addr: SocketAddr,
    bundles: Arc<BundleTable>,
    admin: Mutex<QuoteClient>,
    /// Checked-in idle connections, reused across ticks.
    idle: Arc<Mutex<Vec<QuoteClient>>>,
    /// Round-trip latency samples (µs), one per settled quote (QUOTE +
    /// PURCHASE), flushed in by workers as they drop.
    latencies_us: Arc<Mutex<Vec<u64>>>,
}

impl NetTransport {
    /// Connects the admin channel to a running server.
    pub fn connect(addr: SocketAddr, bundles: BundleTable) -> std::io::Result<NetTransport> {
        Ok(NetTransport {
            addr,
            bundles: Arc::new(bundles),
            admin: Mutex::new(QuoteClient::connect(addr)?),
            idle: Arc::new(Mutex::new(Vec::new())),
            latencies_us: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Drains the collected per-request latency samples (µs). Workers
    /// flush on drop, so call this after the run's fan-outs have joined
    /// (i.e. after `run_with` returns).
    pub fn take_latencies_us(&self) -> Vec<u64> {
        std::mem::take(&mut self.latencies_us.lock())
    }

    /// Borrows the admin connection (e.g. for a final `STATS`).
    pub fn admin(&self) -> parking_lot::MutexGuard<'_, QuoteClient> {
        self.admin.lock()
    }
}

impl SettleTransport for NetTransport {
    type Worker = NetWorker;

    fn worker(&self) -> NetWorker {
        let client = self
            .idle
            .lock()
            .pop()
            .map(Ok)
            .unwrap_or_else(|| QuoteClient::connect(self.addr))
            .expect("loadgen worker connect");
        NetWorker {
            client: Some(client),
            pool: Arc::clone(&self.idle),
            bundles: Arc::clone(&self.bundles),
            samples: Vec::new(),
            sink: Arc::clone(&self.latencies_us),
        }
    }

    fn install_pricing(&self, pricing: Pricing) {
        self.apply_patch(&PricingPatch::Replace(pricing));
    }

    fn apply_patch(&self, patch: &PricingPatch) {
        // The reply is awaited, so the patch is live on every shard before
        // the engine issues the next tick's quotes.
        self.admin
            .lock()
            .reprice(patch)
            .expect("loadgen repricing frame");
    }

    fn num_items(&self) -> usize {
        self.bundles.num_items()
    }
}

/// One worker thread's connection (checked out of the transport's pool):
/// quotes the buyer's precomputed bundle and settles at the quoted price,
/// timing the round trip.
pub struct NetWorker {
    /// `Some` until drop; taken there so the connection can be returned to
    /// the pool (or discarded on panic).
    client: Option<QuoteClient>,
    pool: Arc<Mutex<Vec<QuoteClient>>>,
    bundles: Arc<BundleTable>,
    samples: Vec<u64>,
    sink: Arc<Mutex<Vec<u64>>>,
}

impl SettleWorker for NetWorker {
    fn quote_and_settle(
        &mut self,
        _population: &Population,
        phase: usize,
        buyer: &Buyer,
        tick: u64,
    ) -> SettledQuote {
        let client = self.client.as_mut().expect("live until drop");
        let bundle = self.bundles.bundle(phase, buyer).clone();
        // timing: measures the QUOTE+PURCHASE network round trip for the
        // latency report; the settled outcome never depends on it.
        let started = Instant::now();
        let quote = client.quote(&bundle).expect("loadgen quote");
        let (sold, price) = client
            .purchase(quote.quote_id, buyer.budget, tick)
            .expect("loadgen purchase");
        let latency_us = started.elapsed().as_micros() as u64;
        self.samples.push(latency_us);
        debug_assert_eq!(
            price.to_bits(),
            quote.price.to_bits(),
            "the server must honor the quoted price"
        );
        SettledQuote {
            sold,
            price,
            budget: buyer.budget,
            conflict_set: bundle,
            latency_us,
        }
    }
}

impl Drop for NetWorker {
    fn drop(&mut self) {
        if !self.samples.is_empty() {
            self.sink.lock().append(&mut self.samples);
        }
        // Check the connection back in for the next tick's workers —
        // unless this thread is unwinding, in which case the stream may
        // hold a half-finished exchange and must not be reused.
        if !std::thread::panicking() {
            if let Some(client) = self.client.take() {
                self.pool.lock().push(client);
            }
        }
    }
}
