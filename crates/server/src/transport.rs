//! The network [`SettleTransport`]: `qp-sim`'s event loop driven over the
//! wire.
//!
//! [`NetTransport`] implements the transport boundary the simulator's
//! engine was factored around (`qp_sim::driver`): each worker thread gets
//! its own TCP connection ([`NetWorker`]), buyers' queries are resolved to
//! their **precomputed** conflict-set bundles through a [`BundleTable`]
//! (the server prices bundles, not queries), and live repricings travel as
//! `REPRICE` frames on a dedicated admin connection — acknowledged before
//! the engine proceeds, so pricing changes land on tick boundaries exactly
//! as they do in-process.
//!
//! Because the engine samples everything on the coordinating thread and
//! aggregates in arrival order, a run over this transport must report
//! **bit-identical revenue** to an in-process run with the same seed
//! against an identically built broker — the determinism self-check the
//! `loadgen` binary performs on every invocation.
//!
//! By default workers panic on I/O errors: this transport exists for load
//! generation and self-checks, where a lost connection invalidates the
//! run. The crash-recovery harness instead connects through a shared
//! [`Endpoint`] (see [`NetTransport::connect_endpoint`]): when the server
//! is killed and recovered on a new port, the supervisor updates the
//! endpoint and workers **reconnect and re-quote** — a retried buyer
//! settles exactly once, at the same price the recovered pricing assigns,
//! which is what lets the harness demand bit-identical revenue.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::atomic::{AtomicU64, Ordering};
use parking_lot::Mutex;

use qp_core::ItemSet;
use qp_market::Broker;
use qp_pricing::algorithms::PricingPatch;
use qp_pricing::Pricing;
use qp_sim::driver::{SettleTransport, SettleWorker, SettledQuote};
use qp_sim::{Buyer, Population};
use qp_telemetry::{SpanHandle, TelemetrySink};

use crate::client::QuoteClient;
use crate::shard::SettleOutcome;

/// How long a resilient worker keeps retrying a dead server before
/// declaring the run lost. Recovery (rebuild brokers + WAL replay) takes
/// well under this; only a wedged supervisor hits it.
const RECONNECT_DEADLINE: Duration = Duration::from_secs(30);
const RECONNECT_PAUSE: Duration = Duration::from_millis(20);

/// A movable server address: the supervisor of a crash-recovery run
/// republishes the recovered server's (new) address here, and every
/// client-side component reconnects to the current generation.
pub struct Endpoint {
    addr: Mutex<SocketAddr>,
    generation: AtomicU64,
}

impl Endpoint {
    /// An endpoint at its first address (generation 0).
    pub fn new(addr: SocketAddr) -> Arc<Endpoint> {
        Arc::new(Endpoint {
            addr: Mutex::new(addr),
            generation: AtomicU64::new(0),
        })
    }

    /// Publishes the recovered server's address and bumps the generation,
    /// which tells workers their pooled connections are stale.
    pub fn update(&self, addr: SocketAddr) {
        let mut slot = self.addr.lock();
        *slot = addr;
        // ordering: Release — the address write above must be visible to
        // any thread that Acquire-loads this generation (current() takes
        // the lock anyway; the ordering documents the handoff).
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// The current address and its generation.
    pub fn current(&self) -> (SocketAddr, u64) {
        let addr = *self.addr.lock();
        // ordering: Acquire — pairs with the Release bump in update().
        (addr, self.generation.load(Ordering::Acquire))
    }
}

/// Conflict-set bundles for every query a schedule can sample, indexed
/// `[phase][segment][query]` — the shape of [`Buyer`]'s indices.
pub struct BundleTable {
    phases: Vec<Vec<Vec<ItemSet>>>,
    num_items: usize,
}

impl BundleTable {
    /// Precomputes the conflict set of every query in every phase of a
    /// schedule against `broker`'s support. The broker only lends its
    /// conflict engine here; its pricing is never read.
    pub fn for_schedule(broker: &Broker, schedule: &[(u64, Population)]) -> BundleTable {
        let phases = schedule
            .iter()
            .map(|(_, population)| {
                population
                    .segments()
                    .iter()
                    .map(|segment| {
                        segment
                            .queries
                            .iter()
                            .map(|q| broker.conflict_set(q))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        BundleTable {
            phases,
            num_items: broker.support().len(),
        }
    }

    /// The bundle for a sampled buyer in a schedule phase.
    pub fn bundle(&self, phase: usize, buyer: &Buyer) -> &ItemSet {
        &self.phases[phase][buyer.segment][buyer.query]
    }

    /// Number of support items the bundles index into.
    pub fn num_items(&self) -> usize {
        self.num_items
    }
}

/// The engine-facing network transport: hands each fan-out thread a
/// dedicated connection and broadcasts repricings over an admin connection.
///
/// Connections are pooled: the engine requests one worker per fan-out
/// thread **per tick**, so workers check their connection back in on drop
/// and the next tick's workers reuse it — connection setup happens once
/// per concurrent thread, not once per tick, and the timed run measures
/// quoting rather than TCP handshakes. A worker that panics mid-request
/// drops its connection instead (the stream may carry a half-read reply).
pub struct NetTransport {
    endpoint: Arc<Endpoint>,
    /// Whether workers survive a server kill by reconnecting through the
    /// endpoint and re-quoting (crash-recovery harness) instead of
    /// panicking (plain load generation).
    resilient: bool,
    bundles: Arc<BundleTable>,
    admin: Mutex<QuoteClient>,
    /// Checked-in idle connections tagged with the endpoint generation
    /// they were made at, reused across ticks while that generation lives.
    idle: Arc<Mutex<Vec<(u64, QuoteClient)>>>,
    /// Round-trip latency samples (µs), one per settled quote (QUOTE +
    /// PURCHASE), flushed in by workers as they drop.
    latencies_us: Arc<Mutex<Vec<u64>>>,
    /// Client-side telemetry for distributed tracing (`None` = untraced:
    /// requests go out in their pre-trace byte layout). See
    /// [`NetTransport::enable_tracing`].
    tracing: Option<TelemetrySink>,
    /// Worker-id well for trace-id minting; each checked-out worker takes
    /// the next id, so `(worker_id << 32) | seq` never collides.
    next_worker_id: AtomicU64,
}

impl NetTransport {
    /// Connects the admin channel to a running server. Workers panic on
    /// I/O errors — a lost connection invalidates a plain loadgen run.
    pub fn connect(addr: SocketAddr, bundles: BundleTable) -> std::io::Result<NetTransport> {
        NetTransport::connect_inner(Endpoint::new(addr), bundles, false)
    }

    /// Connects through a shared movable [`Endpoint`]: when the server is
    /// killed and recovered elsewhere, the supervisor calls
    /// [`Endpoint::update`] and workers reconnect and **re-quote** their
    /// in-flight buyer instead of panicking. Exactly-once settlement is
    /// preserved because the server's crash point is between requests (see
    /// [`crate::CrashSwitch`]) — a lost request observably never happened.
    pub fn connect_endpoint(
        endpoint: Arc<Endpoint>,
        bundles: BundleTable,
    ) -> std::io::Result<NetTransport> {
        NetTransport::connect_inner(endpoint, bundles, true)
    }

    fn connect_inner(
        endpoint: Arc<Endpoint>,
        bundles: BundleTable,
        resilient: bool,
    ) -> std::io::Result<NetTransport> {
        let admin = QuoteClient::connect(endpoint.current().0)?;
        Ok(NetTransport {
            endpoint,
            resilient,
            bundles: Arc::new(bundles),
            admin: Mutex::new(admin),
            idle: Arc::new(Mutex::new(Vec::new())),
            latencies_us: Arc::new(Mutex::new(Vec::new())),
            tracing: None,
            next_worker_id: AtomicU64::new(0),
        })
    }

    /// Turns on distributed tracing: every settle gets a trace id minted
    /// from deterministic per-worker counters (never a clock or RNG — the
    /// revenue stream must stay bit-identical to an untraced run), a
    /// client-side `client.settle` root span recorded into `sink`, and a
    /// `TRACED` envelope carrying the id to the server so both halves of
    /// the trace stitch. Call before handing the transport to the engine.
    pub fn enable_tracing(&mut self, sink: TelemetrySink) {
        self.tracing = Some(sink);
    }

    /// Drains the collected per-request latency samples (µs). Workers
    /// flush on drop, so call this after the run's fan-outs have joined
    /// (i.e. after `run_with` returns).
    pub fn take_latencies_us(&self) -> Vec<u64> {
        std::mem::take(&mut self.latencies_us.lock())
    }

    /// Borrows the admin connection (e.g. for a final `STATS`).
    pub fn admin(&self) -> parking_lot::MutexGuard<'_, QuoteClient> {
        self.admin.lock()
    }
}

impl SettleTransport for NetTransport {
    type Worker = NetWorker;

    fn worker(&self) -> NetWorker {
        let (addr, generation) = self.endpoint.current();
        // Reuse a pooled connection only if it belongs to the live server
        // generation; stale ones point at a crashed listener.
        {
            let mut idle = self.idle.lock();
            while let Some((gen, client)) = idle.pop() {
                if gen == generation {
                    return self.make_worker(Some(client), generation);
                }
                drop(client);
            }
        }
        match QuoteClient::connect(addr) {
            Ok(client) => self.make_worker(Some(client), generation),
            // Mid-crash: hand out a disconnected worker; its first
            // quote_and_settle reconnects once the endpoint moves.
            Err(_) if self.resilient => self.make_worker(None, generation),
            Err(e) => panic!("loadgen worker connect: {e}"),
        }
    }

    fn install_pricing(&self, pricing: Pricing) {
        self.apply_patch(&PricingPatch::Replace(pricing));
    }

    fn apply_patch(&self, patch: &PricingPatch) {
        // The reply is awaited, so the patch is live on every shard before
        // the engine issues the next tick's quotes.
        let mut admin = self.admin.lock();
        if admin.reprice(patch).is_ok() {
            return;
        }
        if !self.resilient {
            panic!("loadgen repricing frame failed");
        }
        // The server died under the patch. The crash point is between
        // requests, so the patch was either fully applied (reply lost is
        // impossible — in-flight requests complete) or never dispatched;
        // resending to the recovered server is therefore safe, and the
        // recovered pricing already reflects every patch that was acked.
        // timing: reconnect deadline only — bounds a wedged supervisor.
        let deadline = Instant::now() + RECONNECT_DEADLINE;
        loop {
            let (addr, _) = self.endpoint.current();
            if let Ok(mut fresh) = QuoteClient::connect(addr) {
                if fresh.reprice(patch).is_ok() {
                    *admin = fresh;
                    return;
                }
            }
            // timing: see above.
            if Instant::now() >= deadline {
                panic!("loadgen repricing frame: server unreachable after {RECONNECT_DEADLINE:?}");
            }
            std::thread::sleep(RECONNECT_PAUSE);
        }
    }

    fn num_items(&self) -> usize {
        self.bundles.num_items()
    }
}

impl NetTransport {
    fn make_worker(&self, client: Option<QuoteClient>, generation: u64) -> NetWorker {
        let trace = self.tracing.as_ref().map(|sink| WorkerTrace {
            settle_span: sink.span_handle("client.settle"),
            // ordering: Relaxed — the id only needs uniqueness; nothing
            // else is published through it.
            worker_id: self.next_worker_id.fetch_add(1, Ordering::Relaxed),
            seq: 0,
            current: 0,
        });
        NetWorker {
            client,
            generation,
            endpoint: Arc::clone(&self.endpoint),
            resilient: self.resilient,
            pool: Arc::clone(&self.idle),
            bundles: Arc::clone(&self.bundles),
            samples: Vec::new(),
            sink: Arc::clone(&self.latencies_us),
            trace,
        }
    }
}

/// A worker's tracing state: the pre-resolved root span handle and the
/// deterministic trace-id counter (`(worker_id << 32) | seq`, seq starting
/// at 1 so id 0 stays reserved for "untraced").
struct WorkerTrace {
    settle_span: SpanHandle,
    worker_id: u64,
    seq: u64,
    /// The id of the settle in progress, reapplied to fresh connections
    /// after a resilient reconnect.
    current: u64,
}

impl WorkerTrace {
    fn mint(&mut self) -> u64 {
        self.seq += 1;
        self.current = (self.worker_id << 32) | (self.seq & 0xFFFF_FFFF);
        self.current
    }
}

/// One worker thread's connection (checked out of the transport's pool):
/// quotes the buyer's precomputed bundle and settles at the quoted price,
/// timing the round trip.
pub struct NetWorker {
    /// `Some` until drop (or between a connection loss and the reconnect
    /// in resilient mode); taken at drop so the connection can be returned
    /// to the pool (or discarded on panic).
    client: Option<QuoteClient>,
    /// Endpoint generation `client` was connected at.
    generation: u64,
    endpoint: Arc<Endpoint>,
    resilient: bool,
    pool: Arc<Mutex<Vec<(u64, QuoteClient)>>>,
    bundles: Arc<BundleTable>,
    samples: Vec<u64>,
    sink: Arc<Mutex<Vec<u64>>>,
    /// `Some` when the transport has tracing enabled.
    trace: Option<WorkerTrace>,
}

impl NetWorker {
    /// Re-establishes a connection to the endpoint's current address,
    /// retrying until the supervisor publishes a live server.
    fn reconnect(&mut self, deadline: Instant) {
        loop {
            let (addr, generation) = self.endpoint.current();
            match QuoteClient::connect(addr) {
                Ok(client) => {
                    self.generation = generation;
                    self.client = Some(client);
                    return;
                }
                Err(e) => {
                    // timing: deadline only bounds a wedged supervisor;
                    // it never affects a settled outcome.
                    if Instant::now() >= deadline {
                        panic!(
                            "loadgen worker: server unreachable after {RECONNECT_DEADLINE:?}: {e}"
                        );
                    }
                    std::thread::sleep(RECONNECT_PAUSE);
                }
            }
        }
    }

    /// One buyer, settled exactly once, surviving server kills: any I/O
    /// failure means the request was never dispatched (the crash point is
    /// between requests), so reconnecting and **re-quoting** repeats no
    /// settle; a quote that died with the server is re-quoted at the same
    /// price because recovery restores the pricing bit-exactly.
    fn settle_resilient(&mut self, bundle: &ItemSet, budget: f64, tick: u64) -> (bool, f64) {
        // timing: see reconnect().
        let deadline = Instant::now() + RECONNECT_DEADLINE;
        loop {
            if self.client.is_none() {
                self.reconnect(deadline);
            }
            let client = self.client.as_mut().expect("reconnect just set it");
            // A reconnect hands back a fresh (untraced) connection:
            // restamp the in-progress settle's trace id.
            if let Some(trace) = &self.trace {
                client.set_trace_id(trace.current);
            }
            let attempt = client.quote(bundle).and_then(|q| {
                client
                    .try_purchase(q.quote_id, budget, tick)
                    .map(|o| (q, o))
            });
            match attempt {
                Ok((quote, SettleOutcome::Settled { sold, price })) => {
                    debug_assert_eq!(
                        price.to_bits(),
                        quote.price.to_bits(),
                        "the server must honor the quoted price"
                    );
                    return (sold, price);
                }
                // The quote evaporated (evicted, or issued by a server
                // that died before the purchase): re-quote on the live
                // connection.
                Ok((_, _)) => continue,
                // Dead connection: the request never dispatched. Drop the
                // stream and retry against the (possibly moved) endpoint.
                Err(_) => self.client = None,
            }
        }
    }
}

impl SettleWorker for NetWorker {
    fn quote_and_settle(
        &mut self,
        _population: &Population,
        phase: usize,
        buyer: &Buyer,
        tick: u64,
    ) -> SettledQuote {
        let bundle = self.bundles.bundle(phase, buyer).clone();
        // Tracing: mint the id and install it as both the wire context
        // (the client's TRACED envelope) and the thread's ambient context,
        // then open the client-side root span — its drop at the end of
        // this settle stamps the id into the client exemplar, the half
        // that stitches against the server's `server.request` tree.
        let _root = self.trace.as_mut().map(|trace| {
            let trace_id = trace.mint();
            qp_telemetry::set_current_trace_id(trace_id);
            if let Some(client) = self.client.as_mut() {
                client.set_trace_id(trace_id);
            }
            trace.settle_span.enter()
        });
        // timing: measures the QUOTE+PURCHASE network round trip for the
        // latency report; the settled outcome never depends on it.
        let started = Instant::now();
        let (sold, price) = if self.resilient {
            self.settle_resilient(&bundle, buyer.budget, tick)
        } else {
            let client = self.client.as_mut().expect("live until drop");
            let quote = client.quote(&bundle).expect("loadgen quote");
            let (sold, price) = client
                .purchase(quote.quote_id, buyer.budget, tick)
                .expect("loadgen purchase");
            debug_assert_eq!(
                price.to_bits(),
                quote.price.to_bits(),
                "the server must honor the quoted price"
            );
            (sold, price)
        };
        let latency_us = started.elapsed().as_micros() as u64;
        self.samples.push(latency_us);
        SettledQuote {
            sold,
            price,
            budget: buyer.budget,
            conflict_set: bundle,
            latency_us,
        }
    }
}

impl Drop for NetWorker {
    fn drop(&mut self) {
        if !self.samples.is_empty() {
            self.sink.lock().append(&mut self.samples);
        }
        // Check the connection back in for the next tick's workers —
        // unless this thread is unwinding, in which case the stream may
        // hold a half-finished exchange and must not be reused.
        if !std::thread::panicking() {
            if let Some(client) = self.client.take() {
                self.pool.lock().push((self.generation, client));
            }
        }
    }
}
