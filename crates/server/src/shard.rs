//! The sharded quote engine: [`Broker`] replicas behind an epoch-validated
//! quote cache.
//!
//! A [`ShardSet`] owns `k` broker replicas (identically built, identically
//! priced — repricing patches are broadcast to all of them). Every bundle
//! is routed to the shard `stable_hash(bundle) mod k`, which spreads load
//! and gives each bundle **cache affinity**: repeated quotes for the same
//! bundle hit the same shard's cache and never touch the pricing lock.
//!
//! # Cache correctness
//!
//! Each cache entry is a `(price, epoch)` pair filled from
//! [`Broker::versioned_price`], which is atomically consistent (the epoch
//! is read under the pricing read lock; writers bump it under the write
//! lock — see the `qp_market::broker` module docs). A hit is served only
//! when the entry's epoch equals the broker's *current* epoch; since every
//! observable repricing strictly increases the epoch, a stale entry can
//! never satisfy that check. The pair served to the client is therefore
//! always self-consistent: the price is exactly what the pricing at the
//! claimed epoch assigns the bundle. (The concurrent proof of this lives
//! in `tests/epoch_races.rs`.)
//!
//! Quotes are **one-shot contracts**: [`ShardSet::quote`] registers the
//! quoted price under a fresh id, and [`ShardSet::settle`] consumes the id
//! and settles at that price — honored even if the epoch has moved on,
//! matching `Broker::settle`'s guarantee (and its budget tolerance).
//!
//! # Durability
//!
//! With a store attached ([`ShardSet::with_store`]), every settle — sales,
//! declines, and pressure evictions alike — appends a WAL record *before*
//! the call returns (append-before-ack), and every repricing broadcast
//! appends its patch; on a cadence of broadcasts the full state is written
//! as an epoch-stamped snapshot. All WAL appends and ledger mutations
//! happen under one durability lock, so a snapshot captured under that
//! lock is exactly consistent with its `wal_seq` — the invariant
//! [`ShardSet::restore`] relies on to rebuild revenue **bit-identically**
//! (per-shard sale order is preserved, so order-sensitive float summation
//! reproduces). Lock order: `pending` → `durability` → shard `ledger`;
//! the brokers handed to a stored shard set must not carry stores of
//! their own, or repricing broadcasts would be logged twice.

use parking_lot::atomic::{AtomicU64, Ordering};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use qp_core::ItemSet;
use qp_market::{ledger_from_snapshot, ledger_to_snapshot, Broker, RevenueLedger};
use qp_pricing::algorithms::PricingPatch;
use qp_store::{ReplayedState, SharedStore, Snapshot, StoreError, WalRecord};
use qp_telemetry::{Counter, SpanHandle, TelemetrySink};

use crate::protocol::ShardStats;

/// Default per-shard cache capacity (entries). When full, the cache is
/// flushed wholesale rather than evicted piecemeal — bundles follow a
/// workload's query pool, so the working set either fits or churns.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Budget slack used when settling, mirroring [`Broker::settle`] so the
/// network path and the in-process path make identical sold/declined calls.
const BUDGET_EPSILON: f64 = 1e-9;

/// Cap on outstanding (quoted, unsettled) quotes. Quote ids are issued in
/// increasing order, so when the table is full the **oldest** pending quote
/// is expired to make room — a peer that quotes without ever purchasing
/// (a crashed client, or a hostile one) cannot grow server memory without
/// bound, the same posture `protocol::MAX_FRAME` takes against oversized
/// frames. An eviction is **accounted**, not silently dropped: the serving
/// shard records it as a declined quote (and logs it when a store is
/// attached), and settling the expired id reports
/// [`SettleOutcome::Expired`] so clients know to re-quote.
pub const MAX_PENDING_QUOTES: usize = 1 << 16;

/// Default snapshot cadence: a full state snapshot is written every this
/// many non-`Keep` repricing broadcasts. Repricings are the natural beat —
/// they bound how many `Reprice` records a recovery replays, and settle
/// records between snapshots replay cheaply.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 8;

struct CacheEntry {
    epoch: u64,
    price: f64,
}

struct Shard {
    broker: Arc<Broker>,
    cache: Mutex<HashMap<ItemSet, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Cache entries dropped because a repricing bumped the shard's epoch
    /// (each broadcast counts the entries it stranded). A `REPRICE` storm
    /// is visible here long before hit rates decay.
    invalidations: AtomicU64,
    /// Pending quotes this shard served that were expired under table
    /// pressure before the client settled them (each is also recorded as a
    /// decline in the ledger).
    evictions: AtomicU64,
    /// Server-side sales record. Separate from the broker's own ledger:
    /// wire purchases settle bundles, not queries, so nothing is evaluated
    /// on the database here.
    ledger: Mutex<RevenueLedger>,
}

/// A served quote: the one-shot id plus everything the wire reply carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardQuote {
    /// One-shot settlement id.
    pub quote_id: u64,
    /// The shard that served (and will settle) the quote.
    pub shard: usize,
    /// The quoted price.
    pub price: f64,
    /// The pricing epoch the price belongs to.
    pub epoch: u64,
    /// Whether the cache answered without touching the pricing lock.
    pub cache_hit: bool,
}

struct PendingQuote {
    shard: usize,
    price: f64,
    bundle_len: usize,
}

/// What [`ShardSet::settle`] found for a quote id. `Expired` and `Unknown`
/// are deliberately distinct: an expired quote was real and was evicted
/// under pending-table pressure (the client should re-quote), while an
/// unknown id was never issued or has already been settled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SettleOutcome {
    /// The quote was pending and settled at its quoted price.
    Settled {
        /// Whether the budget covered the price (sale vs. decline).
        sold: bool,
        /// The honored quote price.
        price: f64,
    },
    /// The quote was evicted under pending-table pressure before the
    /// client settled it; it was already recorded as a decline.
    Expired,
    /// The id was never issued, or the quote was already settled.
    Unknown,
}

/// The store hookup plus the snapshot cadence state. One mutex serializes
/// every WAL append *and* every ledger mutation (see the module docs), so
/// a snapshot taken while holding it captures ledgers exactly consistent
/// with the store's `wal_seq`.
struct Durability {
    store: Option<SharedStore>,
    /// Snapshot every this many non-`Keep` repricing broadcasts.
    snapshot_every: u64,
    reprices_since_snapshot: u64,
}

impl Durability {
    fn detached() -> Durability {
        Durability {
            store: None,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            reprices_since_snapshot: 0,
        }
    }

    /// Appends a record, or panics: once a settle has mutated in-memory
    /// state we must not ack it to the client unlogged, and the append
    /// happens *before* the mutation precisely so a failure aborts the
    /// whole operation.
    fn log(&self, record: &WalRecord) {
        if let Some(store) = &self.store {
            if let Err(e) = store.append(record) {
                panic!("WAL append failed, refusing to ack an unlogged settle: {e}");
            }
        }
    }
}

/// `k` broker replicas, a router, per-shard epoch-validated caches, and
/// the outstanding-quote table. The transport-independent core of the
/// server: the TCP layer only decodes frames into these calls.
pub struct ShardSet {
    shards: Vec<Shard>,
    cache_capacity: usize,
    pending_cap: usize,
    next_quote_id: AtomicU64,
    /// Highest quote id ever evicted under pending-table pressure (0 =
    /// none). Evictions pop the *smallest* pending id and ids are issued
    /// in increasing order, so "id ≤ watermark" exactly identifies quotes
    /// that either expired or settled before the watermark passed them —
    /// enough to tell [`SettleOutcome::Expired`] from `Unknown`.
    evicted_watermark: AtomicU64,
    /// Outstanding quotes by id. A `BTreeMap` because ids are issued in
    /// increasing order, which makes "expire the oldest" when
    /// [`MAX_PENDING_QUOTES`] is reached an O(log n) `pop_first`.
    pending: Mutex<BTreeMap<u64, PendingQuote>>,
    /// WAL/snapshot hookup; also the lock every ledger mutation runs under.
    durability: Mutex<Durability>,
    /// Pre-registered observability handles (inert on a disabled sink).
    telemetry: ShardSetTelemetry,
}

/// The shard set's pre-registered telemetry: one span handle per stage of
/// the server-side quote path plus the cache outcome counters. All handles
/// resolve their registry entries once here, so the quote hot path records
/// without touching a registration lock; with `TelemetrySink::Disabled`
/// every operation is a branch on `None`.
#[derive(Debug, Clone, Default)]
struct ShardSetTelemetry {
    sink: TelemetrySink,
    /// `quote.route` — bundle → shard routing.
    route: SpanHandle,
    /// `quote.cache` — epoch-validated cache lookup.
    cache: SpanHandle,
    /// `quote.price` — pricing read on a cache miss.
    price: SpanHandle,
    /// `settle.ledger` — settling a pending quote into the shard ledger.
    settle: SpanHandle,
    /// `reprice.broadcast` — patching every shard replica.
    broadcast: SpanHandle,
    /// `cache.hit` / `cache.miss` / `cache.invalidated` totals.
    cache_hits: Counter,
    cache_misses: Counter,
    cache_invalidations: Counter,
    /// `quote.evicted` — pending quotes expired under table pressure.
    evicted: Counter,
}

impl ShardSetTelemetry {
    fn new(sink: TelemetrySink) -> ShardSetTelemetry {
        ShardSetTelemetry {
            route: sink.span_handle("quote.route"),
            cache: sink.span_handle("quote.cache"),
            price: sink.span_handle("quote.price"),
            settle: sink.span_handle("settle.ledger"),
            broadcast: sink.span_handle("reprice.broadcast"),
            cache_hits: sink.counter("cache.hit"),
            cache_misses: sink.counter("cache.miss"),
            cache_invalidations: sink.counter("cache.invalidated"),
            evicted: sink.counter("quote.evicted"),
            sink,
        }
    }
}

impl ShardSet {
    /// Builds a shard set over broker replicas with the default cache
    /// capacity. The brokers should be identically built and priced;
    /// repricing broadcasts keep them in lockstep afterwards.
    ///
    /// # Panics
    ///
    /// Panics on an empty replica list.
    pub fn new(brokers: Vec<Arc<Broker>>) -> ShardSet {
        ShardSet::with_cache_capacity(brokers, DEFAULT_CACHE_CAPACITY)
    }

    /// [`ShardSet::new`] with an explicit per-shard cache capacity
    /// (0 disables caching: every quote reads the pricing).
    pub fn with_cache_capacity(brokers: Vec<Arc<Broker>>, cache_capacity: usize) -> ShardSet {
        assert!(!brokers.is_empty(), "a shard set needs at least one broker");
        ShardSet {
            shards: brokers
                .into_iter()
                .map(|broker| Shard {
                    broker,
                    cache: Mutex::new(HashMap::new()),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                    invalidations: AtomicU64::new(0),
                    evictions: AtomicU64::new(0),
                    ledger: Mutex::new(RevenueLedger::default()),
                })
                .collect(),
            cache_capacity,
            pending_cap: MAX_PENDING_QUOTES,
            next_quote_id: AtomicU64::new(0),
            evicted_watermark: AtomicU64::new(0),
            pending: Mutex::new(BTreeMap::new()),
            durability: Mutex::new(Durability::detached()),
            telemetry: ShardSetTelemetry::default(),
        }
    }

    /// Overrides the pending-quote cap (default [`MAX_PENDING_QUOTES`]).
    /// Tests use small caps to exercise eviction pressure without issuing
    /// 2^16 quotes.
    ///
    /// # Panics
    ///
    /// Panics on a cap of 0 — the table must hold at least the quote
    /// being registered.
    pub fn with_pending_cap(mut self, cap: usize) -> ShardSet {
        assert!(cap > 0, "pending-quote cap must be at least 1");
        self.pending_cap = cap;
        self
    }

    /// Attaches a durable store: every settle and eviction appends a WAL
    /// record before returning, every non-`Keep` repricing broadcast
    /// appends its patch, and a full snapshot is written every
    /// `snapshot_every` non-`Keep` broadcasts (see the module docs).
    ///
    /// The brokers must not carry stores of their own.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot_every` is 0.
    pub fn with_store(mut self, store: SharedStore, snapshot_every: u64) -> ShardSet {
        assert!(snapshot_every > 0, "snapshot cadence must be at least 1");
        self.durability = Mutex::new(Durability {
            store: Some(store),
            snapshot_every,
            reprices_since_snapshot: 0,
        });
        self
    }

    /// Rebuilds a shard set from a store after a crash: loads the newest
    /// valid snapshot, replays the WAL suffix, and installs the recovered
    /// pricing, epoch, per-shard ledgers, quote-id counter, and eviction
    /// watermark. The store stays attached, so the recovered set resumes
    /// logging where the crashed one stopped.
    ///
    /// `brokers` must be **freshly rebuilt the same deterministic way** as
    /// the crashed set's (same database, support, algorithm, anticipated
    /// workload, shard count): the first broker's pricing/epoch seed the
    /// replay for the no-snapshot, no-`Replace`-record case. Returns the
    /// replayed state alongside the set so callers can use it as the
    /// recovery oracle.
    ///
    /// # Panics
    ///
    /// Panics if the recovered state's shard count differs from
    /// `brokers.len()` — revenue recorded by a shard that no longer
    /// exists cannot be restored, so a changed topology must be rejected
    /// loudly rather than silently dropping ledgers.
    pub fn restore(
        brokers: Vec<Arc<Broker>>,
        cache_capacity: usize,
        store: SharedStore,
        snapshot_every: u64,
    ) -> Result<(ShardSet, ReplayedState), StoreError> {
        assert!(!brokers.is_empty(), "a shard set needs at least one broker");
        let recovery = store.recover()?;
        let (seed_pricing, seed_epoch) = brokers[0].pricing_snapshot();
        let state = recovery.replay(seed_pricing, seed_epoch, brokers.len());
        assert_eq!(
            state.shards.len(),
            brokers.len(),
            "recovered state has a different shard count than the rebuilt set"
        );
        for broker in &brokers {
            broker.restore_pricing(state.pricing.clone(), state.epoch);
        }
        let set = ShardSet::with_cache_capacity(brokers, cache_capacity)
            .with_store(store, snapshot_every);
        for (shard, ledger_snap) in set.shards.iter().zip(&state.shards) {
            *shard.ledger.lock() = ledger_from_snapshot(ledger_snap);
        }
        // The counter holds the count of ids issued so far; replayed
        // `next_quote_id` is the next id to hand out, i.e. counter + 1.
        set.next_quote_id
            .store(state.next_quote_id.saturating_sub(1), Ordering::SeqCst);
        set.evicted_watermark
            .store(state.evicted_watermark, Ordering::SeqCst);
        Ok((set, state))
    }

    /// Attaches a telemetry sink: the quote path records per-stage spans
    /// (`quote.route` → `quote.cache` → `quote.price`), cache outcomes
    /// count into `cache.hit`/`cache.miss`/`cache.invalidated`, and
    /// repricing broadcasts time into `reprice.broadcast`. Telemetry is
    /// strictly out-of-band: prices, epochs, and ledgers are identical
    /// with it on or off.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> ShardSet {
        self.telemetry = ShardSetTelemetry::new(sink);
        self
    }

    /// The telemetry sink this shard set records into (`Disabled` unless
    /// one was attached). The server's `METRICS` frame snapshots it.
    pub fn telemetry_sink(&self) -> &TelemetrySink {
        &self.telemetry.sink
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a bundle routes to: `stable_hash(bundle) mod k`, so the
    /// same bundle lands on the same shard across connections, runs, and
    /// processes.
    pub fn route(&self, bundle: &ItemSet) -> usize {
        (bundle.stable_hash() % self.shards.len() as u64) as usize
    }

    /// The broker replica behind a shard (tests and embedders).
    pub fn broker(&self, shard: usize) -> &Arc<Broker> {
        &self.shards[shard].broker
    }

    /// Quotes a bundle: routes, serves from the epoch-validated cache when
    /// possible, and registers a one-shot pending quote at the served
    /// price.
    pub fn quote(&self, bundle: &ItemSet) -> ShardQuote {
        let idx = {
            let _span = self.telemetry.route.enter();
            self.route(bundle)
        };
        // Tag the thread's ambient trace context with the serving shard:
        // every span event recorded below (cache, price, the open server
        // root) carries it, making exemplar JSON joinable by shard.
        if self.telemetry.sink.is_enabled() {
            qp_telemetry::set_current_shard(idx as u32);
        }
        let shard = &self.shards[idx];

        let current_epoch = shard.broker.pricing_epoch();
        let cached = {
            let _span = self.telemetry.cache.enter();
            shard
                .cache
                .lock()
                .get(bundle)
                .filter(|e| e.epoch == current_epoch)
                .map(|e| (e.price, e.epoch))
        };

        let (price, epoch, cache_hit) = match cached {
            Some((price, epoch)) => {
                // ordering: Relaxed — hits is a statistics counter; no
                // other memory depends on its value.
                shard.hits.fetch_add(1, Ordering::Relaxed);
                self.telemetry.cache_hits.inc();
                (price, epoch, true)
            }
            None => {
                // ordering: Relaxed — statistics counter, as above.
                shard.misses.fetch_add(1, Ordering::Relaxed);
                self.telemetry.cache_misses.inc();
                let _span = self.telemetry.price.enter();
                // The only way a (price, epoch) pair enters the system:
                // atomically consistent by the broker's contract.
                let (price, epoch) = shard.broker.versioned_price(bundle);
                if self.cache_capacity > 0 {
                    let mut cache = shard.cache.lock();
                    if cache.len() >= self.cache_capacity && !cache.contains_key(bundle) {
                        cache.clear();
                    }
                    match cache.entry(bundle.clone()) {
                        Entry::Occupied(mut slot) => {
                            // Concurrent fills race benignly; keep the
                            // newest epoch so progress is monotone.
                            if slot.get().epoch < epoch {
                                slot.insert(CacheEntry { epoch, price });
                            }
                        }
                        Entry::Vacant(slot) => {
                            slot.insert(CacheEntry { epoch, price });
                        }
                    }
                }
                (price, epoch, false)
            }
        };

        // ordering: Relaxed — the counter only needs uniqueness; the id is
        // published to other threads via the pending-table mutex below.
        let quote_id = self.next_quote_id.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut pending = self.pending.lock();
            while pending.len() >= self.pending_cap {
                let Some((evicted_id, evicted)) = pending.pop_first() else {
                    break;
                };
                // Expiring the oldest unsettled quote is a business event,
                // not a silent drop: the quoted price is forgone revenue,
                // so it lands in the serving shard's ledger as a decline
                // (and in the WAL, so recovery reproduces it). Evictions
                // pop the smallest id, so the watermark stays the exact
                // boundary below which `settle` reports `Expired`.
                self.evicted_watermark
                    .fetch_max(evicted_id, Ordering::SeqCst);
                let shard = &self.shards[evicted.shard];
                // ordering: Relaxed — statistics counter.
                shard.evictions.fetch_add(1, Ordering::Relaxed);
                self.telemetry.evicted.inc();
                let dur = self.durability.lock();
                let mut ledger = shard.ledger.lock();
                dur.log(&WalRecord::Decline {
                    quote_id: evicted_id,
                    shard: evicted.shard as u32,
                    price: evicted.price,
                    tick: 0,
                    evicted: true,
                });
                ledger.record_decline(evicted.price);
            }
            pending.insert(
                quote_id,
                PendingQuote {
                    shard: idx,
                    price,
                    bundle_len: bundle.len(),
                },
            );
        }
        ShardQuote {
            quote_id,
            shard: idx,
            price,
            epoch,
            cache_hit,
        }
    }

    /// Settles a pending quote at its quoted price: sold if the budget
    /// covers it, declined otherwise, recorded in the serving shard's
    /// ledger at `tick`. An id the set does not hold is classified as
    /// [`SettleOutcome::Expired`] (evicted under table pressure — the
    /// client should re-quote) or [`SettleOutcome::Unknown`] (never
    /// issued, or already settled — ids are one-shot).
    pub fn settle(&self, quote_id: u64, budget: f64, tick: u64) -> SettleOutcome {
        let _span = self.telemetry.settle.enter();
        let pending = match self.pending.lock().remove(&quote_id) {
            Some(p) => p,
            None => {
                let watermark = self.evicted_watermark.load(Ordering::SeqCst);
                // Below the watermark the quote existed and was evicted
                // (or settled before the watermark reached it — either
                // way "re-quote" is the right client response). Above it,
                // the id was never issued or was settled normally.
                return if quote_id != 0 && quote_id <= watermark {
                    SettleOutcome::Expired
                } else {
                    SettleOutcome::Unknown
                };
            }
        };
        // See `quote`: shard-tag the ambient trace context for exemplars.
        if self.telemetry.sink.is_enabled() {
            qp_telemetry::set_current_shard(pending.shard as u32);
        }
        let shard = &self.shards[pending.shard];
        let sold = pending.price <= budget + BUDGET_EPSILON;
        // WAL append strictly before the ledger write and the return: if
        // the append panics, no in-memory state has changed and nothing
        // unlogged is ever acked.
        let dur = self.durability.lock();
        let mut ledger = shard.ledger.lock();
        if sold {
            dur.log(&WalRecord::Sale {
                quote_id,
                shard: pending.shard as u32,
                bundle_len: pending.bundle_len as u32,
                price: pending.price,
                tick,
            });
            ledger.record_at(pending.bundle_len, pending.price, tick);
        } else {
            dur.log(&WalRecord::Decline {
                quote_id,
                shard: pending.shard as u32,
                price: pending.price,
                tick,
                evicted: false,
            });
            ledger.record_decline(pending.price);
        }
        SettleOutcome::Settled {
            sold,
            price: pending.price,
        }
    }

    /// Broadcasts a pricing patch to every shard and returns the post-patch
    /// epochs in shard order. Each non-`Keep` patch bumps the shard's epoch
    /// under its pricing write lock, instantly invalidating that shard's
    /// whole cache (entries carry the old epoch); the stranded entries are
    /// counted per shard and dropped eagerly so memory follows the live
    /// epoch.
    pub fn apply_patch(&self, patch: &PricingPatch) -> Vec<u64> {
        let _span = self.telemetry.broadcast.enter();
        // The durability lock is held across the whole broadcast: the WAL
        // patch record, the per-shard installs, and (on cadence) the
        // snapshot form one atomic unit relative to settles, so recovery
        // never sees a half-broadcast pricing.
        let mut dur = self.durability.lock();
        let is_keep = matches!(patch, PricingPatch::Keep);
        if !is_keep {
            dur.log(&WalRecord::Reprice {
                patch: patch.clone(),
            });
        }
        let epochs: Vec<u64> = self
            .shards
            .iter()
            .map(|s| {
                let before = s.broker.pricing_epoch();
                s.broker.apply_delta(patch);
                let after = s.broker.pricing_epoch();
                if after != before {
                    // Every cached entry carries an epoch < after and can
                    // never be served again: count and drop them now.
                    let stranded = {
                        let mut cache = s.cache.lock();
                        let n = cache.len();
                        cache.clear();
                        n as u64
                    };
                    if stranded > 0 {
                        // ordering: Relaxed — statistics counter.
                        s.invalidations.fetch_add(stranded, Ordering::Relaxed);
                        self.telemetry.cache_invalidations.add(stranded);
                    }
                }
                after
            })
            .collect();
        if !is_keep && dur.store.is_some() {
            dur.reprices_since_snapshot += 1;
            if dur.reprices_since_snapshot >= dur.snapshot_every {
                dur.reprices_since_snapshot = 0;
                self.write_snapshot_locked(&dur);
            }
        }
        epochs
    }

    /// Writes a full-state snapshot. The caller holds the durability lock,
    /// which keeps settles out: the ledgers cloned here are exactly the
    /// state produced by WAL records `1..=wal_seq`.
    fn write_snapshot_locked(&self, dur: &Durability) {
        let Some(store) = &dur.store else { return };
        let (pricing, epoch) = self.shards[0].broker.pricing_snapshot();
        let snapshot = Snapshot {
            epoch,
            wal_seq: store.wal_seq(),
            // The counter holds the count of ids issued; the next id to
            // hand out is one past it. Ids issued after the snapshot's
            // wal_seq only ever push this forward during replay.
            next_quote_id: self.next_quote_id.load(Ordering::SeqCst) + 1,
            pricing,
            shards: self
                .shards
                .iter()
                .map(|s| ledger_to_snapshot(&s.ledger.lock()))
                .collect(),
        };
        if let Err(e) = store.write_snapshot(&snapshot) {
            // Snapshot failure is not data loss (the WAL still has every
            // record), but limping on silently would hide a dying disk.
            panic!("snapshot write failed: {e}");
        }
    }

    /// Forces a snapshot now, regardless of the repricing cadence (shutdown
    /// paths and tests). A no-op without a store.
    pub fn snapshot_now(&self) {
        let mut dur = self.durability.lock();
        dur.reprices_since_snapshot = 0;
        self.write_snapshot_locked(&dur);
    }

    /// Per-shard serving statistics, in shard order.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let ledger = s.ledger.lock();
                // Load each counter exactly once: deriving `quotes` from
                // two loads of `hits` could report cache_hits > quotes
                // under concurrent quoting.
                // ordering: Relaxed — monotone counters read for reporting;
                // a momentarily stale value is acceptable.
                let hits = s.hits.load(Ordering::Relaxed);
                // ordering: Relaxed — as above.
                let misses = s.misses.load(Ordering::Relaxed);
                // ordering: Relaxed — as above.
                let invalidations = s.invalidations.load(Ordering::Relaxed);
                // ordering: Relaxed — as above.
                let evictions = s.evictions.load(Ordering::Relaxed);
                ShardStats {
                    epoch: s.broker.pricing_epoch(),
                    quotes: hits + misses,
                    cache_hits: hits,
                    invalidations,
                    evictions,
                    sales: ledger.len() as u64,
                    declines: ledger.declined_count() as u64,
                    revenue: ledger.total(),
                }
            })
            .collect()
    }

    /// Quotes issued but not yet settled.
    pub fn pending_quotes(&self) -> usize {
        self.pending.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_market::SupportConfig;
    use qp_pricing::Pricing;
    use qp_qdb::{ColumnType, Database, Query, Relation, Schema, Value};

    fn tiny_broker() -> Arc<Broker> {
        let mut rel = Relation::new(Schema::new(vec![
            ("name", ColumnType::Str),
            ("size", ColumnType::Int),
        ]));
        for i in 0..10 {
            rel.push(vec![format!("row{i}").into(), Value::Int(i)])
                .unwrap();
        }
        let mut db = Database::new();
        db.add_table("T", rel);
        Arc::new(
            Broker::builder(db)
                .support_config(SupportConfig::with_size(40))
                .algorithm("UBP")
                .anticipate(Query::scan("T"), 30.0)
                .build()
                .expect("UBP is registered"),
        )
    }

    fn shard_set(shards: usize) -> ShardSet {
        ShardSet::new((0..shards).map(|_| tiny_broker()).collect())
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let set = shard_set(3);
        for i in 0..50usize {
            let bundle: ItemSet = [i, i + 3].as_slice().into();
            let shard = set.route(&bundle);
            assert!(shard < 3);
            assert_eq!(shard, set.route(&bundle.clone()));
        }
    }

    #[test]
    fn cache_hits_after_first_quote_and_invalidates_on_epoch_bump() {
        let set = shard_set(2);
        let bundle: ItemSet = [1usize, 4].as_slice().into();
        let first = set.quote(&bundle);
        assert!(!first.cache_hit, "cold cache must miss");
        let second = set.quote(&bundle);
        assert!(second.cache_hit, "warm cache must hit");
        assert_eq!(second.price.to_bits(), first.price.to_bits());
        assert_eq!(second.epoch, first.epoch);

        // An epoch bump invalidates every cached entry on the patched
        // shards...
        set.apply_patch(&PricingPatch::SetUniformPrice(123.0));
        let after = set.quote(&bundle);
        assert!(!after.cache_hit, "stale entry must not be served");
        assert_eq!(after.price, 123.0);
        assert_eq!(after.epoch, first.epoch + 1);
        // ...but a Keep patch bumps nothing and the refill keeps serving.
        set.apply_patch(&PricingPatch::Keep);
        assert!(set.quote(&bundle).cache_hit);
    }

    #[test]
    fn quotes_are_one_shot_and_settle_at_the_quoted_price() {
        let set = shard_set(1);
        set.apply_patch(&PricingPatch::SetUniformPrice(10.0));
        let bundle: ItemSet = [0usize, 2].as_slice().into();
        let q = set.quote(&bundle);
        assert_eq!(set.pending_quotes(), 1);

        // Reprice between quote and purchase: the quote is honored.
        set.apply_patch(&PricingPatch::SetUniformPrice(99.0));
        assert_eq!(
            set.settle(q.quote_id, 10.0, 5),
            SettleOutcome::Settled {
                sold: true,
                price: 10.0
            },
            "budget exactly covers the quoted price"
        );
        assert_eq!(set.pending_quotes(), 0);
        // The id is consumed — and nothing was evicted, so it reports
        // Unknown rather than Expired.
        assert_eq!(set.settle(q.quote_id, 100.0, 5), SettleOutcome::Unknown);
        // Never-issued ids (including 0) are Unknown too.
        assert_eq!(set.settle(0, 100.0, 5), SettleOutcome::Unknown);
        assert_eq!(set.settle(u64::MAX, 100.0, 5), SettleOutcome::Unknown);

        // A decline records forgone revenue, not a sale.
        let q2 = set.quote(&bundle);
        assert_eq!(
            set.settle(q2.quote_id, 1.0, 6),
            SettleOutcome::Settled {
                sold: false,
                price: 99.0
            }
        );

        let stats = set.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].sales, 1);
        assert_eq!(stats[0].declines, 1);
        assert_eq!(stats[0].quotes, 2);
        assert!((stats[0].revenue - 10.0).abs() < 1e-12);
    }

    #[test]
    fn full_caches_flush_and_keep_serving_correctly() {
        let brokers = vec![tiny_broker()];
        let set = ShardSet::with_cache_capacity(brokers, 4);
        // More distinct bundles than capacity: the cache flushes but every
        // quote still matches the direct pricing read.
        for round in 0..3 {
            for i in 0..10usize {
                let bundle: ItemSet = [i].as_slice().into();
                let q = set.quote(&bundle);
                let (expect, _) = set.broker(0).versioned_price(&bundle);
                assert_eq!(
                    q.price.to_bits(),
                    expect.to_bits(),
                    "round {round} bundle {i}"
                );
            }
        }
        // Capacity 0 disables caching entirely.
        let uncached = ShardSet::with_cache_capacity(vec![tiny_broker()], 0);
        let b: ItemSet = [1usize].as_slice().into();
        uncached.quote(&b);
        assert!(!uncached.quote(&b).cache_hit);
    }

    #[test]
    fn pending_quotes_are_bounded_by_expiring_the_oldest() {
        let set = shard_set(1)
            .with_pending_cap(8)
            .with_telemetry(qp_telemetry::TelemetrySink::enabled());
        let bundle: ItemSet = [0usize, 2].as_slice().into();
        let first = set.quote(&bundle);
        // Fill the table past the cap: the earliest quote is expired.
        let mut last = first;
        for _ in 0..8 {
            last = set.quote(&bundle);
        }
        assert_eq!(set.pending_quotes(), 8);
        assert_eq!(
            set.settle(first.quote_id, 1e9, 0),
            SettleOutcome::Expired,
            "the oldest quote must have been expired, distinguishably"
        );
        assert!(
            matches!(
                set.settle(last.quote_id, 1e9, 0),
                SettleOutcome::Settled { sold: true, .. }
            ),
            "recent quotes survive"
        );

        // The eviction was accounted, not dropped: one decline at the
        // evicted quote's price, one eviction in stats and telemetry.
        let stats = set.stats();
        assert_eq!(stats[0].evictions, 1);
        assert_eq!(stats[0].declines, 1);
        assert_eq!(
            set.telemetry_sink().snapshot().counter("quote.evicted"),
            Some(1)
        );
    }

    #[test]
    fn eviction_pressure_matches_a_no_eviction_oracle() {
        // Same quote/settle sequence against a pressured set (cap 4) and
        // an unpressured oracle (default cap). Quotes the pressured set
        // evicts must surface as declines at the quoted price, so
        // sales + declines and total quoted value reconcile exactly.
        let pressured = shard_set(2).with_pending_cap(4);
        let oracle = shard_set(2);
        let n = 64usize;
        let mut quotes = Vec::new();
        for i in 0..n {
            let bundle: ItemSet = [i % 8, (i / 8) % 8].as_slice().into();
            let p = pressured.quote(&bundle);
            let o = oracle.quote(&bundle);
            assert_eq!(p.price.to_bits(), o.price.to_bits());
            assert_eq!(p.quote_id, o.quote_id);
            quotes.push((p.quote_id, p.price));
        }
        // Settle everything; evicted ids report Expired on the pressured
        // set and settle normally on the oracle.
        let mut expired = 0usize;
        let mut forgone_expected = 0.0f64;
        for &(id, price) in &quotes {
            match pressured.settle(id, 1e9, 1) {
                SettleOutcome::Settled { sold, .. } => assert!(sold),
                SettleOutcome::Expired => {
                    expired += 1;
                    forgone_expected += price;
                }
                SettleOutcome::Unknown => panic!("issued id must not be Unknown"),
            }
            assert!(matches!(
                oracle.settle(id, 1e9, 1),
                SettleOutcome::Settled { sold: true, .. }
            ));
        }
        assert_eq!(expired, n - 4, "all but the last cap-full were evicted");

        let p_stats = pressured.stats();
        let o_stats = oracle.stats();
        let (mut p_sales, mut p_declines, mut p_evictions) = (0u64, 0u64, 0u64);
        let (mut p_total, mut o_total) = (0.0f64, 0.0f64);
        for (p, o) in p_stats.iter().zip(&o_stats) {
            p_sales += p.sales;
            p_declines += p.declines;
            p_evictions += p.evictions;
            p_total += p.revenue;
            o_total += o.revenue;
            // Forgone revenue is per-shard attributable: every decline on
            // a shard came from one of its own evicted quotes.
            assert_eq!(p.declines, p.evictions);
        }
        assert_eq!(p_sales, 4);
        assert_eq!(p_declines as usize, expired);
        assert_eq!(p_evictions as usize, expired);
        assert_eq!(
            o_stats.iter().map(|s| s.sales).sum::<u64>(),
            n as u64,
            "the oracle sold everything"
        );
        // Ledger reconciliation: every quote the oracle sold shows up on
        // the pressured side as either realized revenue or an evicted
        // decline at the same quoted price — nothing vanished.
        // float-eq: partitioned sums differ only by association order.
        assert!((o_total - (p_total + forgone_expected)).abs() < 1e-9 * o_total.abs().max(1.0));
    }

    #[test]
    fn stored_set_recovers_bit_identically_after_a_crash() {
        use qp_store::MemStore;
        let store = Arc::new(MemStore::new());
        let live =
            ShardSet::new((0..2).map(|_| tiny_broker()).collect()).with_store(store.clone(), 2);
        // Interleave sales, declines, evictions, and repricings.
        live.apply_patch(&PricingPatch::SetUniformPrice(10.0));
        let mut ids = Vec::new();
        for i in 0..12usize {
            let bundle: ItemSet = [i % 5, i % 3 + 5].as_slice().into();
            ids.push(live.quote(&bundle).quote_id);
            if i == 5 {
                live.apply_patch(&PricingPatch::SetUniformPrice(12.5));
            }
            if i == 9 {
                live.apply_patch(&PricingPatch::Keep); // must not log
            }
        }
        for (i, &id) in ids.iter().enumerate() {
            let budget = if i % 4 == 3 { 0.0 } else { 1e9 };
            assert!(matches!(
                live.settle(id, budget, i as u64),
                SettleOutcome::Settled { .. }
            ));
        }
        let live_stats = live.stats();
        drop(live); // the crash

        let (recovered, state) = ShardSet::restore(
            (0..2).map(|_| tiny_broker()).collect(),
            DEFAULT_CACHE_CAPACITY,
            store,
            2,
        )
        .expect("recovery succeeds");
        let rec_stats = recovered.stats();
        assert_eq!(rec_stats.len(), live_stats.len());
        for (r, l) in rec_stats.iter().zip(&live_stats) {
            assert_eq!(r.epoch, l.epoch);
            assert_eq!(r.sales, l.sales);
            assert_eq!(r.declines, l.declines);
            assert_eq!(r.revenue.to_bits(), l.revenue.to_bits(), "bit-identical");
        }
        let rec_total: f64 = rec_stats.iter().map(|s| s.revenue).sum();
        let live_total: f64 = live_stats.iter().map(|s| s.revenue).sum();
        assert_eq!(rec_total.to_bits(), live_total.to_bits());
        assert_eq!(state.revenue().to_bits(), live_total.to_bits());

        // Fresh quote ids continue past the crashed run's — no id reuse.
        let bundle: ItemSet = [1usize].as_slice().into();
        let q = recovered.quote(&bundle);
        assert!(q.quote_id > *ids.last().unwrap());
    }

    #[test]
    fn invalidation_counts_surface_in_stats_and_metrics() {
        let set = shard_set(1).with_telemetry(qp_telemetry::TelemetrySink::enabled());
        // Warm three distinct entries, then strand them with a repricing.
        for i in 0..3usize {
            let bundle: ItemSet = [i, i + 4].as_slice().into();
            set.quote(&bundle);
            set.quote(&bundle);
        }
        assert_eq!(set.stats()[0].invalidations, 0);
        let epoch_before = set.stats()[0].epoch;
        set.apply_patch(&PricingPatch::SetUniformPrice(9.0));
        let stats = set.stats();
        assert_eq!(stats[0].invalidations, 3, "three stranded cache entries");
        assert_eq!(stats[0].epoch, epoch_before + 1);
        // A Keep patch bumps no epoch and strands nothing.
        set.apply_patch(&PricingPatch::Keep);
        assert_eq!(set.stats()[0].invalidations, 3);

        // The telemetry registry counted the same events the STATS path
        // did, and the quote path fed its hit/miss counters and spans.
        let snap = set.telemetry_sink().snapshot();
        assert_eq!(snap.counter("cache.invalidated"), Some(3));
        assert_eq!(snap.counter("cache.hit"), Some(3));
        assert_eq!(snap.counter("cache.miss"), Some(3));
        let routed = snap.histogram("quote.route").expect("span histogram");
        assert_eq!(routed.count(), 6);
    }

    #[test]
    fn patches_broadcast_to_every_shard() {
        let set = shard_set(3);
        let before: Vec<u64> = (0..3).map(|i| set.broker(i).pricing_epoch()).collect();
        let epochs = set.apply_patch(&PricingPatch::Replace(Pricing::UniformBundle {
            price: 7.0,
        }));
        assert_eq!(epochs.len(), 3);
        for (i, e) in epochs.iter().enumerate() {
            assert_eq!(*e, before[i] + 1);
            let bundle: ItemSet = [i].as_slice().into();
            let (price, _) = set.broker(i).versioned_price(&bundle);
            assert_eq!(price, 7.0);
        }
    }
}
