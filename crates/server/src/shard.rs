//! The sharded quote engine: [`Broker`] replicas behind an epoch-validated
//! quote cache.
//!
//! A [`ShardSet`] owns `k` broker replicas (identically built, identically
//! priced — repricing patches are broadcast to all of them). Every bundle
//! is routed to the shard `stable_hash(bundle) mod k`, which spreads load
//! and gives each bundle **cache affinity**: repeated quotes for the same
//! bundle hit the same shard's cache and never touch the pricing lock.
//!
//! # Cache correctness
//!
//! Each cache entry is a `(price, epoch)` pair filled from
//! [`Broker::versioned_price`], which is atomically consistent (the epoch
//! is read under the pricing read lock; writers bump it under the write
//! lock — see the `qp_market::broker` module docs). A hit is served only
//! when the entry's epoch equals the broker's *current* epoch; since every
//! observable repricing strictly increases the epoch, a stale entry can
//! never satisfy that check. The pair served to the client is therefore
//! always self-consistent: the price is exactly what the pricing at the
//! claimed epoch assigns the bundle. (The concurrent proof of this lives
//! in `tests/epoch_races.rs`.)
//!
//! Quotes are **one-shot contracts**: [`ShardSet::quote`] registers the
//! quoted price under a fresh id, and [`ShardSet::settle`] consumes the id
//! and settles at that price — honored even if the epoch has moved on,
//! matching `Broker::settle`'s guarantee (and its budget tolerance).

use parking_lot::atomic::{AtomicU64, Ordering};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use qp_core::ItemSet;
use qp_market::{Broker, RevenueLedger};
use qp_pricing::algorithms::PricingPatch;
use qp_telemetry::{Counter, SpanHandle, TelemetrySink};

use crate::protocol::ShardStats;

/// Default per-shard cache capacity (entries). When full, the cache is
/// flushed wholesale rather than evicted piecemeal — bundles follow a
/// workload's query pool, so the working set either fits or churns.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Budget slack used when settling, mirroring [`Broker::settle`] so the
/// network path and the in-process path make identical sold/declined calls.
const BUDGET_EPSILON: f64 = 1e-9;

/// Cap on outstanding (quoted, unsettled) quotes. Quote ids are issued in
/// increasing order, so when the table is full the **oldest** pending quote
/// is expired to make room — a peer that quotes without ever purchasing
/// (a crashed client, or a hostile one) cannot grow server memory without
/// bound, the same posture `protocol::MAX_FRAME` takes against oversized
/// frames. Settling an expired id reports `UnknownQuote`.
pub const MAX_PENDING_QUOTES: usize = 1 << 16;

struct CacheEntry {
    epoch: u64,
    price: f64,
}

struct Shard {
    broker: Arc<Broker>,
    cache: Mutex<HashMap<ItemSet, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Cache entries dropped because a repricing bumped the shard's epoch
    /// (each broadcast counts the entries it stranded). A `REPRICE` storm
    /// is visible here long before hit rates decay.
    invalidations: AtomicU64,
    /// Server-side sales record. Separate from the broker's own ledger:
    /// wire purchases settle bundles, not queries, so nothing is evaluated
    /// on the database here.
    ledger: Mutex<RevenueLedger>,
}

/// A served quote: the one-shot id plus everything the wire reply carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardQuote {
    /// One-shot settlement id.
    pub quote_id: u64,
    /// The shard that served (and will settle) the quote.
    pub shard: usize,
    /// The quoted price.
    pub price: f64,
    /// The pricing epoch the price belongs to.
    pub epoch: u64,
    /// Whether the cache answered without touching the pricing lock.
    pub cache_hit: bool,
}

struct PendingQuote {
    shard: usize,
    price: f64,
    bundle_len: usize,
}

/// `k` broker replicas, a router, per-shard epoch-validated caches, and
/// the outstanding-quote table. The transport-independent core of the
/// server: the TCP layer only decodes frames into these calls.
pub struct ShardSet {
    shards: Vec<Shard>,
    cache_capacity: usize,
    next_quote_id: AtomicU64,
    /// Outstanding quotes by id. A `BTreeMap` because ids are issued in
    /// increasing order, which makes "expire the oldest" when
    /// [`MAX_PENDING_QUOTES`] is reached an O(log n) `pop_first`.
    pending: Mutex<BTreeMap<u64, PendingQuote>>,
    /// Pre-registered observability handles (inert on a disabled sink).
    telemetry: ShardSetTelemetry,
}

/// The shard set's pre-registered telemetry: one span handle per stage of
/// the server-side quote path plus the cache outcome counters. All handles
/// resolve their registry entries once here, so the quote hot path records
/// without touching a registration lock; with `TelemetrySink::Disabled`
/// every operation is a branch on `None`.
#[derive(Debug, Clone, Default)]
struct ShardSetTelemetry {
    sink: TelemetrySink,
    /// `quote.route` — bundle → shard routing.
    route: SpanHandle,
    /// `quote.cache` — epoch-validated cache lookup.
    cache: SpanHandle,
    /// `quote.price` — pricing read on a cache miss.
    price: SpanHandle,
    /// `settle.ledger` — settling a pending quote into the shard ledger.
    settle: SpanHandle,
    /// `reprice.broadcast` — patching every shard replica.
    broadcast: SpanHandle,
    /// `cache.hit` / `cache.miss` / `cache.invalidated` totals.
    cache_hits: Counter,
    cache_misses: Counter,
    cache_invalidations: Counter,
}

impl ShardSetTelemetry {
    fn new(sink: TelemetrySink) -> ShardSetTelemetry {
        ShardSetTelemetry {
            route: sink.span_handle("quote.route"),
            cache: sink.span_handle("quote.cache"),
            price: sink.span_handle("quote.price"),
            settle: sink.span_handle("settle.ledger"),
            broadcast: sink.span_handle("reprice.broadcast"),
            cache_hits: sink.counter("cache.hit"),
            cache_misses: sink.counter("cache.miss"),
            cache_invalidations: sink.counter("cache.invalidated"),
            sink,
        }
    }
}

impl ShardSet {
    /// Builds a shard set over broker replicas with the default cache
    /// capacity. The brokers should be identically built and priced;
    /// repricing broadcasts keep them in lockstep afterwards.
    ///
    /// # Panics
    ///
    /// Panics on an empty replica list.
    pub fn new(brokers: Vec<Arc<Broker>>) -> ShardSet {
        ShardSet::with_cache_capacity(brokers, DEFAULT_CACHE_CAPACITY)
    }

    /// [`ShardSet::new`] with an explicit per-shard cache capacity
    /// (0 disables caching: every quote reads the pricing).
    pub fn with_cache_capacity(brokers: Vec<Arc<Broker>>, cache_capacity: usize) -> ShardSet {
        assert!(!brokers.is_empty(), "a shard set needs at least one broker");
        ShardSet {
            shards: brokers
                .into_iter()
                .map(|broker| Shard {
                    broker,
                    cache: Mutex::new(HashMap::new()),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                    invalidations: AtomicU64::new(0),
                    ledger: Mutex::new(RevenueLedger::default()),
                })
                .collect(),
            cache_capacity,
            next_quote_id: AtomicU64::new(0),
            pending: Mutex::new(BTreeMap::new()),
            telemetry: ShardSetTelemetry::default(),
        }
    }

    /// Attaches a telemetry sink: the quote path records per-stage spans
    /// (`quote.route` → `quote.cache` → `quote.price`), cache outcomes
    /// count into `cache.hit`/`cache.miss`/`cache.invalidated`, and
    /// repricing broadcasts time into `reprice.broadcast`. Telemetry is
    /// strictly out-of-band: prices, epochs, and ledgers are identical
    /// with it on or off.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> ShardSet {
        self.telemetry = ShardSetTelemetry::new(sink);
        self
    }

    /// The telemetry sink this shard set records into (`Disabled` unless
    /// one was attached). The server's `METRICS` frame snapshots it.
    pub fn telemetry_sink(&self) -> &TelemetrySink {
        &self.telemetry.sink
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a bundle routes to: `stable_hash(bundle) mod k`, so the
    /// same bundle lands on the same shard across connections, runs, and
    /// processes.
    pub fn route(&self, bundle: &ItemSet) -> usize {
        (bundle.stable_hash() % self.shards.len() as u64) as usize
    }

    /// The broker replica behind a shard (tests and embedders).
    pub fn broker(&self, shard: usize) -> &Arc<Broker> {
        &self.shards[shard].broker
    }

    /// Quotes a bundle: routes, serves from the epoch-validated cache when
    /// possible, and registers a one-shot pending quote at the served
    /// price.
    pub fn quote(&self, bundle: &ItemSet) -> ShardQuote {
        let idx = {
            let _span = self.telemetry.route.enter();
            self.route(bundle)
        };
        let shard = &self.shards[idx];

        let current_epoch = shard.broker.pricing_epoch();
        let cached = {
            let _span = self.telemetry.cache.enter();
            shard
                .cache
                .lock()
                .get(bundle)
                .filter(|e| e.epoch == current_epoch)
                .map(|e| (e.price, e.epoch))
        };

        let (price, epoch, cache_hit) = match cached {
            Some((price, epoch)) => {
                // ordering: Relaxed — hits is a statistics counter; no
                // other memory depends on its value.
                shard.hits.fetch_add(1, Ordering::Relaxed);
                self.telemetry.cache_hits.inc();
                (price, epoch, true)
            }
            None => {
                // ordering: Relaxed — statistics counter, as above.
                shard.misses.fetch_add(1, Ordering::Relaxed);
                self.telemetry.cache_misses.inc();
                let _span = self.telemetry.price.enter();
                // The only way a (price, epoch) pair enters the system:
                // atomically consistent by the broker's contract.
                let (price, epoch) = shard.broker.versioned_price(bundle);
                if self.cache_capacity > 0 {
                    let mut cache = shard.cache.lock();
                    if cache.len() >= self.cache_capacity && !cache.contains_key(bundle) {
                        cache.clear();
                    }
                    match cache.entry(bundle.clone()) {
                        Entry::Occupied(mut slot) => {
                            // Concurrent fills race benignly; keep the
                            // newest epoch so progress is monotone.
                            if slot.get().epoch < epoch {
                                slot.insert(CacheEntry { epoch, price });
                            }
                        }
                        Entry::Vacant(slot) => {
                            slot.insert(CacheEntry { epoch, price });
                        }
                    }
                }
                (price, epoch, false)
            }
        };

        // ordering: Relaxed — the counter only needs uniqueness; the id is
        // published to other threads via the pending-table mutex below.
        let quote_id = self.next_quote_id.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut pending = self.pending.lock();
            while pending.len() >= MAX_PENDING_QUOTES {
                pending.pop_first(); // expire the oldest unsettled quote
            }
            pending.insert(
                quote_id,
                PendingQuote {
                    shard: idx,
                    price,
                    bundle_len: bundle.len(),
                },
            );
        }
        ShardQuote {
            quote_id,
            shard: idx,
            price,
            epoch,
            cache_hit,
        }
    }

    /// Settles a pending quote at its quoted price: sold if the budget
    /// covers it, declined otherwise, recorded in the serving shard's
    /// ledger at `tick`. Returns `None` for an id the set does not hold
    /// (never issued, or already settled — ids are one-shot).
    pub fn settle(&self, quote_id: u64, budget: f64, tick: u64) -> Option<(bool, f64)> {
        let _span = self.telemetry.settle.enter();
        let pending = self.pending.lock().remove(&quote_id)?;
        let shard = &self.shards[pending.shard];
        let sold = pending.price <= budget + BUDGET_EPSILON;
        let mut ledger = shard.ledger.lock();
        if sold {
            ledger.record_at(pending.bundle_len, pending.price, tick);
        } else {
            ledger.record_decline(pending.price);
        }
        Some((sold, pending.price))
    }

    /// Broadcasts a pricing patch to every shard and returns the post-patch
    /// epochs in shard order. Each non-`Keep` patch bumps the shard's epoch
    /// under its pricing write lock, instantly invalidating that shard's
    /// whole cache (entries carry the old epoch); the stranded entries are
    /// counted per shard and dropped eagerly so memory follows the live
    /// epoch.
    pub fn apply_patch(&self, patch: &PricingPatch) -> Vec<u64> {
        let _span = self.telemetry.broadcast.enter();
        self.shards
            .iter()
            .map(|s| {
                let before = s.broker.pricing_epoch();
                s.broker.apply_delta(patch);
                let after = s.broker.pricing_epoch();
                if after != before {
                    // Every cached entry carries an epoch < after and can
                    // never be served again: count and drop them now.
                    let stranded = {
                        let mut cache = s.cache.lock();
                        let n = cache.len();
                        cache.clear();
                        n as u64
                    };
                    if stranded > 0 {
                        // ordering: Relaxed — statistics counter.
                        s.invalidations.fetch_add(stranded, Ordering::Relaxed);
                        self.telemetry.cache_invalidations.add(stranded);
                    }
                }
                after
            })
            .collect()
    }

    /// Per-shard serving statistics, in shard order.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let ledger = s.ledger.lock();
                // Load each counter exactly once: deriving `quotes` from
                // two loads of `hits` could report cache_hits > quotes
                // under concurrent quoting.
                // ordering: Relaxed — monotone counters read for reporting;
                // a momentarily stale value is acceptable.
                let hits = s.hits.load(Ordering::Relaxed);
                // ordering: Relaxed — as above.
                let misses = s.misses.load(Ordering::Relaxed);
                // ordering: Relaxed — as above.
                let invalidations = s.invalidations.load(Ordering::Relaxed);
                ShardStats {
                    epoch: s.broker.pricing_epoch(),
                    quotes: hits + misses,
                    cache_hits: hits,
                    invalidations,
                    sales: ledger.len() as u64,
                    declines: ledger.declined_count() as u64,
                    revenue: ledger.total(),
                }
            })
            .collect()
    }

    /// Quotes issued but not yet settled.
    pub fn pending_quotes(&self) -> usize {
        self.pending.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_market::SupportConfig;
    use qp_pricing::Pricing;
    use qp_qdb::{ColumnType, Database, Query, Relation, Schema, Value};

    fn tiny_broker() -> Arc<Broker> {
        let mut rel = Relation::new(Schema::new(vec![
            ("name", ColumnType::Str),
            ("size", ColumnType::Int),
        ]));
        for i in 0..10 {
            rel.push(vec![format!("row{i}").into(), Value::Int(i)])
                .unwrap();
        }
        let mut db = Database::new();
        db.add_table("T", rel);
        Arc::new(
            Broker::builder(db)
                .support_config(SupportConfig::with_size(40))
                .algorithm("UBP")
                .anticipate(Query::scan("T"), 30.0)
                .build()
                .expect("UBP is registered"),
        )
    }

    fn shard_set(shards: usize) -> ShardSet {
        ShardSet::new((0..shards).map(|_| tiny_broker()).collect())
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let set = shard_set(3);
        for i in 0..50usize {
            let bundle: ItemSet = [i, i + 3].as_slice().into();
            let shard = set.route(&bundle);
            assert!(shard < 3);
            assert_eq!(shard, set.route(&bundle.clone()));
        }
    }

    #[test]
    fn cache_hits_after_first_quote_and_invalidates_on_epoch_bump() {
        let set = shard_set(2);
        let bundle: ItemSet = [1usize, 4].as_slice().into();
        let first = set.quote(&bundle);
        assert!(!first.cache_hit, "cold cache must miss");
        let second = set.quote(&bundle);
        assert!(second.cache_hit, "warm cache must hit");
        assert_eq!(second.price.to_bits(), first.price.to_bits());
        assert_eq!(second.epoch, first.epoch);

        // An epoch bump invalidates every cached entry on the patched
        // shards...
        set.apply_patch(&PricingPatch::SetUniformPrice(123.0));
        let after = set.quote(&bundle);
        assert!(!after.cache_hit, "stale entry must not be served");
        assert_eq!(after.price, 123.0);
        assert_eq!(after.epoch, first.epoch + 1);
        // ...but a Keep patch bumps nothing and the refill keeps serving.
        set.apply_patch(&PricingPatch::Keep);
        assert!(set.quote(&bundle).cache_hit);
    }

    #[test]
    fn quotes_are_one_shot_and_settle_at_the_quoted_price() {
        let set = shard_set(1);
        set.apply_patch(&PricingPatch::SetUniformPrice(10.0));
        let bundle: ItemSet = [0usize, 2].as_slice().into();
        let q = set.quote(&bundle);
        assert_eq!(set.pending_quotes(), 1);

        // Reprice between quote and purchase: the quote is honored.
        set.apply_patch(&PricingPatch::SetUniformPrice(99.0));
        let (sold, price) = set.settle(q.quote_id, 10.0, 5).expect("pending");
        assert!(sold, "budget exactly covers the quoted price");
        assert_eq!(price, 10.0);
        assert_eq!(set.pending_quotes(), 0);
        // The id is consumed.
        assert_eq!(set.settle(q.quote_id, 100.0, 5), None);

        // A decline records forgone revenue, not a sale.
        let q2 = set.quote(&bundle);
        let (sold2, price2) = set.settle(q2.quote_id, 1.0, 6).expect("pending");
        assert!(!sold2);
        assert_eq!(price2, 99.0);

        let stats = set.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].sales, 1);
        assert_eq!(stats[0].declines, 1);
        assert_eq!(stats[0].quotes, 2);
        assert!((stats[0].revenue - 10.0).abs() < 1e-12);
    }

    #[test]
    fn full_caches_flush_and_keep_serving_correctly() {
        let brokers = vec![tiny_broker()];
        let set = ShardSet::with_cache_capacity(brokers, 4);
        // More distinct bundles than capacity: the cache flushes but every
        // quote still matches the direct pricing read.
        for round in 0..3 {
            for i in 0..10usize {
                let bundle: ItemSet = [i].as_slice().into();
                let q = set.quote(&bundle);
                let (expect, _) = set.broker(0).versioned_price(&bundle);
                assert_eq!(
                    q.price.to_bits(),
                    expect.to_bits(),
                    "round {round} bundle {i}"
                );
            }
        }
        // Capacity 0 disables caching entirely.
        let uncached = ShardSet::with_cache_capacity(vec![tiny_broker()], 0);
        let b: ItemSet = [1usize].as_slice().into();
        uncached.quote(&b);
        assert!(!uncached.quote(&b).cache_hit);
    }

    #[test]
    fn pending_quotes_are_bounded_by_expiring_the_oldest() {
        let set = shard_set(1);
        let bundle: ItemSet = [0usize, 2].as_slice().into();
        let first = set.quote(&bundle);
        // Fill the table past the cap: the earliest quote is expired.
        let mut last = first;
        for _ in 0..MAX_PENDING_QUOTES {
            last = set.quote(&bundle);
        }
        assert_eq!(set.pending_quotes(), MAX_PENDING_QUOTES);
        assert_eq!(
            set.settle(first.quote_id, 1e9, 0),
            None,
            "the oldest quote must have been expired"
        );
        assert!(
            set.settle(last.quote_id, 1e9, 0).is_some(),
            "recent quotes survive"
        );
    }

    #[test]
    fn invalidation_counts_surface_in_stats_and_metrics() {
        let set = shard_set(1).with_telemetry(qp_telemetry::TelemetrySink::enabled());
        // Warm three distinct entries, then strand them with a repricing.
        for i in 0..3usize {
            let bundle: ItemSet = [i, i + 4].as_slice().into();
            set.quote(&bundle);
            set.quote(&bundle);
        }
        assert_eq!(set.stats()[0].invalidations, 0);
        let epoch_before = set.stats()[0].epoch;
        set.apply_patch(&PricingPatch::SetUniformPrice(9.0));
        let stats = set.stats();
        assert_eq!(stats[0].invalidations, 3, "three stranded cache entries");
        assert_eq!(stats[0].epoch, epoch_before + 1);
        // A Keep patch bumps no epoch and strands nothing.
        set.apply_patch(&PricingPatch::Keep);
        assert_eq!(set.stats()[0].invalidations, 3);

        // The telemetry registry counted the same events the STATS path
        // did, and the quote path fed its hit/miss counters and spans.
        let snap = set.telemetry_sink().snapshot();
        assert_eq!(snap.counter("cache.invalidated"), Some(3));
        assert_eq!(snap.counter("cache.hit"), Some(3));
        assert_eq!(snap.counter("cache.miss"), Some(3));
        let routed = snap.histogram("quote.route").expect("span histogram");
        assert_eq!(routed.count(), 6);
    }

    #[test]
    fn patches_broadcast_to_every_shard() {
        let set = shard_set(3);
        let before: Vec<u64> = (0..3).map(|i| set.broker(i).pricing_epoch()).collect();
        let epochs = set.apply_patch(&PricingPatch::Replace(Pricing::UniformBundle {
            price: 7.0,
        }));
        assert_eq!(epochs.len(), 3);
        for (i, e) in epochs.iter().enumerate() {
            assert_eq!(*e, before[i] + 1);
            let bundle: ItemSet = [i].as_slice().into();
            let (price, _) = set.broker(i).versioned_price(&bundle);
            assert_eq!(price, 7.0);
        }
    }
}
