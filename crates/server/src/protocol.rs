//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Dependency-free by design (std only): every message is one **frame** —
//! a big-endian `u32` payload length followed by the payload, whose first
//! byte is the opcode. Integers are big-endian; floats travel as their
//! IEEE-754 bit patterns (`f64::to_bits`), so prices survive the wire
//! **bit-exactly** — the revenue-determinism self-check depends on that.
//! Bundles travel as their canonical bitset blocks
//! ([`ItemSet::as_blocks`]), least-significant block first.
//!
//! The full frame catalogue, byte layouts, and error codes are specified in
//! `PROTOCOL.md` at the workspace root; this module is the executable form
//! of that document. Requests and responses are symmetric enums with
//! `encode`/`decode` pairs, and the round-trip property is pinned by the
//! tests below.

use std::fmt;
use std::io::{self, Read, Write};

use qp_core::ItemSet;
use qp_pricing::algorithms::PricingPatch;
use qp_pricing::Pricing;
use qp_telemetry::{Exemplar, HistogramSnapshot, MetricsSnapshot, SpanRecord, NUM_BUCKETS};

/// Upper bound on a frame payload (16 MiB). A peer announcing more is
/// answered with [`ErrorCode::Malformed`] and disconnected — it is either
/// broken or hostile, and `Vec::with_capacity` on its say-so would be a
/// memory-exhaustion gift.
pub const MAX_FRAME: usize = 1 << 24;

// Request opcodes.
const OP_QUOTE: u8 = 0x01;
const OP_PURCHASE: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_REPRICE: u8 = 0x04;
const OP_SHUTDOWN: u8 = 0x05;
const OP_METRICS: u8 = 0x06;
const OP_TRACE: u8 = 0x07;
/// Trace-context envelope: `[0x10][u64 trace id][inner request frame]`.
/// A new opcode rather than trailing bytes on existing bodies, so every
/// pre-trace frame still parses byte-identically and an old server
/// rejects the envelope with a clean `UNKNOWN_OPCODE` instead of
/// misreading it.
const OP_TRACED: u8 = 0x10;
// Response opcodes (request opcode | 0x80).
const OP_QUOTED: u8 = 0x81;
const OP_PURCHASED: u8 = 0x82;
const OP_STATS_REPLY: u8 = 0x83;
const OP_REPRICED: u8 = 0x84;
const OP_SHUTDOWN_ACK: u8 = 0x85;
const OP_METRICS_REPLY: u8 = 0x86;
const OP_TRACE_REPLY: u8 = 0x87;
const OP_ERROR: u8 = 0xFF;

/// Why a peer's bytes could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the announced structure did.
    Truncated,
    /// The payload continued past the announced structure.
    TrailingBytes(usize),
    /// The leading opcode byte is not in the catalogue.
    UnknownOpcode(u8),
    /// A tag byte inside the payload (pricing class, patch kind, error
    /// code) is not in the catalogue.
    UnknownTag(u8),
    /// A declared length would exceed [`MAX_FRAME`].
    Oversized(usize),
    /// A string field is not UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the message"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::UnknownTag(t) => write!(f, "unknown tag 0x{t:02x}"),
            WireError::Oversized(n) => write!(f, "declared length {n} exceeds MAX_FRAME"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Error codes carried by [`Response::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request opcode is not in the catalogue.
    UnknownOpcode = 1,
    /// The request payload did not decode.
    Malformed = 2,
    /// `PURCHASE` named a quote id the server does not hold (never issued,
    /// or already settled — quotes are one-shot).
    UnknownQuote = 3,
    /// `PURCHASE` named a quote that was evicted under pending-table
    /// pressure before it was settled. Distinct from [`UnknownQuote`][u]
    /// so clients know the quote *was* real and the right response is to
    /// re-quote, not to treat the id as a bug.
    ///
    /// [u]: ErrorCode::UnknownQuote
    QuoteExpired = 4,
}

impl ErrorCode {
    fn from_byte(b: u8) -> Result<ErrorCode, WireError> {
        match b {
            1 => Ok(ErrorCode::UnknownOpcode),
            2 => Ok(ErrorCode::Malformed),
            3 => Ok(ErrorCode::UnknownQuote),
            4 => Ok(ErrorCode::QuoteExpired),
            other => Err(WireError::UnknownTag(other)),
        }
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Quote a bundle (a conflict set as bitset blocks). Answered with
    /// [`Response::Quoted`].
    Quote(ItemSet),
    /// Settle a previously issued quote against a budget. Quotes are
    /// honored at their quoted price even across repricings, and are
    /// one-shot: settling consumes the id.
    Purchase {
        /// The id returned by the matching `QUOTE`.
        quote_id: u64,
        /// The buyer's willingness to pay.
        budget: f64,
        /// Simulation tick stamped on the ledger entry (0 outside a
        /// simulation).
        tick: u64,
    },
    /// Fetch per-shard serving statistics.
    Stats,
    /// Apply a pricing patch to **every** shard (each bumps its pricing
    /// epoch unless the patch is `Keep`). This is the PR 4 incremental
    /// delta path arriving over the wire.
    Reprice(PricingPatch),
    /// Ask the server to stop accepting connections and wind down.
    Shutdown,
    /// Fetch the server's telemetry registry as a structured snapshot
    /// (counters, gauges, log-bucketed histograms, slow-request
    /// exemplars). The client renders it — Prometheus text, JSON, or
    /// direct quantile extraction — without the server committing to a
    /// text format on the wire.
    Metrics,
    /// Fetch the retained exemplars stamped with `trace_id` — the lookup
    /// half of distributed tracing: a client that minted a trace id asks
    /// the server for the span trees its request produced there.
    Trace {
        /// The wire-level trace id to look up.
        trace_id: u64,
    },
    /// Trace-context envelope: any other request wrapped with the 64-bit
    /// trace id the client minted for it. The server serves `request`
    /// exactly as if it had arrived bare, but stamps `trace_id` into the
    /// spans/exemplars the request produces, so client- and server-side
    /// span trees stitch. Envelopes do not nest.
    Traced {
        /// Client-minted trace id (0 is reserved for "untraced").
        trace_id: u64,
        /// The request being carried.
        request: Box<Request>,
    },
}

/// One shard's serving counters, as reported by `STATS`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// The shard's current pricing epoch.
    pub epoch: u64,
    /// Quotes served (cache hits + misses).
    pub quotes: u64,
    /// Quotes answered from the epoch-validated cache.
    pub cache_hits: u64,
    /// Cache entries invalidated by repricing epoch bumps — the counter
    /// that makes a `REPRICE` storm visible in `STATS`.
    pub invalidations: u64,
    /// Pending quotes this shard served that were expired under
    /// pending-table pressure (each is also counted in `declines`).
    pub evictions: u64,
    /// Purchases that closed.
    pub sales: u64,
    /// Purchases that were declined.
    pub declines: u64,
    /// Revenue realized on this shard.
    pub revenue: f64,
}

/// The fields of a successful quote reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuoteReply {
    /// One-shot id to settle the quote with.
    pub quote_id: u64,
    /// The quoted price.
    pub price: f64,
    /// The pricing epoch the price belongs to.
    pub epoch: u64,
    /// Which shard served it.
    pub shard: u32,
    /// Whether the epoch-validated cache answered it.
    pub cache_hit: bool,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to `QUOTE`.
    Quoted(QuoteReply),
    /// Answer to `PURCHASE`: whether it sold, at the honored quoted price.
    Purchased {
        /// Whether the budget covered the quoted price.
        sold: bool,
        /// The (quoted) price the settlement used.
        price: f64,
    },
    /// Answer to `STATS`, one entry per shard in shard order.
    Stats(Vec<ShardStats>),
    /// Answer to `REPRICE`: every shard's pricing epoch after the patch.
    Repriced {
        /// Post-patch epochs, in shard order.
        epochs: Vec<u64>,
    },
    /// Answer to `SHUTDOWN`.
    ShutdownAck,
    /// Answer to `METRICS`: the whole telemetry registry at once.
    Metrics(MetricsSnapshot),
    /// Answer to `TRACE`: every retained exemplar stamped with the
    /// requested trace id (possibly empty — exemplar retention is
    /// bounded and threshold-gated).
    Trace(Vec<Exemplar>),
    /// Any request the server could not honor.
    Error {
        /// The machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail (diagnostic only; not stable).
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Frame IO
// ---------------------------------------------------------------------------

/// Writes one frame: `u32` big-endian payload length, then the payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between messages); EOF mid-frame is an error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::Oversized(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Primitive encoders / the payload cursor
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// A bounds-checked reader over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Like [`Cursor::take`] but returns a fixed-size array, so multi-byte
    /// decoders need no fallible (or panicking) slice conversion.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let mut a = [0u8; N];
        a.copy_from_slice(self.take(N)?);
        Ok(a)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take_array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take_array()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A declared count of fixed-`width`-byte records, rejected before
    /// allocation if it could not possibly fit in a legal frame.
    fn checked_count(&mut self, width: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(width) > MAX_FRAME {
            return Err(WireError::Oversized(n));
        }
        Ok(n)
    }

    /// Consumes and returns every remaining byte (the `TRACED` envelope's
    /// inner frame, decoded recursively).
    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len() - self.pos))
        }
    }
}

// ---------------------------------------------------------------------------
// Composite codecs: bundles, pricings, patches
// ---------------------------------------------------------------------------

fn put_bundle(out: &mut Vec<u8>, bundle: &ItemSet) {
    let blocks = bundle.as_blocks();
    put_u32(out, blocks.len() as u32);
    for &b in blocks {
        put_u64(out, b);
    }
}

fn take_bundle(c: &mut Cursor<'_>) -> Result<ItemSet, WireError> {
    let n = c.checked_count(8)?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(c.u64()?);
    }
    // from_blocks re-normalizes, so even a peer that pads with zero blocks
    // yields the canonical set (hash/route/compare-safe).
    Ok(ItemSet::from_blocks(blocks))
}

const PRICING_UNIFORM_BUNDLE: u8 = 0;
const PRICING_ITEM: u8 = 1;
const PRICING_XOS: u8 = 2;

fn put_pricing(out: &mut Vec<u8>, pricing: &Pricing) {
    match pricing {
        Pricing::UniformBundle { price } => {
            out.push(PRICING_UNIFORM_BUNDLE);
            put_f64(out, *price);
        }
        Pricing::Item { weights } => {
            out.push(PRICING_ITEM);
            put_u32(out, weights.len() as u32);
            for &w in weights {
                put_f64(out, w);
            }
        }
        Pricing::Xos { components } => {
            out.push(PRICING_XOS);
            put_u32(out, components.len() as u32);
            for comp in components {
                put_u32(out, comp.len() as u32);
                for &w in comp {
                    put_f64(out, w);
                }
            }
        }
    }
}

fn take_pricing(c: &mut Cursor<'_>) -> Result<Pricing, WireError> {
    match c.u8()? {
        PRICING_UNIFORM_BUNDLE => Ok(Pricing::UniformBundle { price: c.f64()? }),
        PRICING_ITEM => {
            let n = c.checked_count(8)?;
            let mut weights = Vec::with_capacity(n);
            for _ in 0..n {
                weights.push(c.f64()?);
            }
            Ok(Pricing::Item { weights })
        }
        PRICING_XOS => {
            let ncomp = c.checked_count(4)?;
            let mut components = Vec::with_capacity(ncomp);
            for _ in 0..ncomp {
                let n = c.checked_count(8)?;
                let mut comp = Vec::with_capacity(n);
                for _ in 0..n {
                    comp.push(c.f64()?);
                }
                components.push(comp);
            }
            Ok(Pricing::Xos { components })
        }
        other => Err(WireError::UnknownTag(other)),
    }
}

const PATCH_KEEP: u8 = 0;
const PATCH_REPLACE: u8 = 1;
const PATCH_SET_UNIFORM_PRICE: u8 = 2;
const PATCH_SET_UNIFORM_WEIGHT: u8 = 3;

fn put_patch(out: &mut Vec<u8>, patch: &PricingPatch) {
    match patch {
        PricingPatch::Keep => out.push(PATCH_KEEP),
        PricingPatch::Replace(pricing) => {
            out.push(PATCH_REPLACE);
            put_pricing(out, pricing);
        }
        PricingPatch::SetUniformPrice(p) => {
            out.push(PATCH_SET_UNIFORM_PRICE);
            put_f64(out, *p);
        }
        PricingPatch::SetUniformWeight { weight, num_items } => {
            out.push(PATCH_SET_UNIFORM_WEIGHT);
            put_f64(out, *weight);
            put_u64(out, *num_items as u64);
        }
    }
}

fn take_patch(c: &mut Cursor<'_>) -> Result<PricingPatch, WireError> {
    match c.u8()? {
        PATCH_KEEP => Ok(PricingPatch::Keep),
        PATCH_REPLACE => Ok(PricingPatch::Replace(take_pricing(c)?)),
        PATCH_SET_UNIFORM_PRICE => Ok(PricingPatch::SetUniformPrice(c.f64()?)),
        PATCH_SET_UNIFORM_WEIGHT => Ok(PricingPatch::SetUniformWeight {
            weight: c.f64()?,
            num_items: c.u64()? as usize,
        }),
        other => Err(WireError::UnknownTag(other)),
    }
}

// ---------------------------------------------------------------------------
// Metrics snapshot codec
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn take_str(c: &mut Cursor<'_>) -> Result<String, WireError> {
    let len = c.checked_count(1)?;
    Ok(std::str::from_utf8(c.take(len)?)
        .map_err(|_| WireError::BadUtf8)?
        .to_string())
}

fn put_exemplar(out: &mut Vec<u8>, ex: &Exemplar) {
    put_u64(out, ex.trace_id);
    put_str(out, &ex.root);
    put_u64(out, ex.total_ns);
    put_u32(out, ex.events.len() as u32);
    for ev in &ex.events {
        put_str(out, &ev.name);
        put_u32(out, ev.depth);
        put_u32(out, ev.shard);
        put_u64(out, ev.start_ns);
        put_u64(out, ev.dur_ns);
    }
}

fn take_exemplar(c: &mut Cursor<'_>) -> Result<Exemplar, WireError> {
    let trace_id = c.u64()?;
    let root = take_str(c)?;
    let total_ns = c.u64()?;
    let n_events = c.checked_count(24)?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let name = take_str(c)?;
        events.push(SpanRecord {
            name,
            depth: c.u32()?,
            shard: c.u32()?,
            start_ns: c.u64()?,
            dur_ns: c.u64()?,
        });
    }
    Ok(Exemplar {
        trace_id,
        root,
        total_ns,
        events,
    })
}

fn put_metrics(out: &mut Vec<u8>, snap: &MetricsSnapshot) {
    put_u32(out, snap.counters.len() as u32);
    for (name, total) in &snap.counters {
        put_str(out, name);
        put_u64(out, *total);
    }
    put_u32(out, snap.gauges.len() as u32);
    for (name, value) in &snap.gauges {
        put_str(out, name);
        // Two's complement on the wire; the decode side casts back.
        put_u64(out, *value as u64);
    }
    put_u32(out, snap.histograms.len() as u32);
    for (name, hist) in &snap.histograms {
        put_str(out, name);
        put_u64(out, hist.sum);
        for &b in hist.buckets.iter() {
            put_u64(out, b);
        }
    }
    put_u32(out, snap.exemplars.len() as u32);
    for ex in &snap.exemplars {
        put_exemplar(out, ex);
    }
}

fn take_metrics(c: &mut Cursor<'_>) -> Result<MetricsSnapshot, WireError> {
    // Minimum record widths (empty name string counts its 4-byte length
    // prefix) keep declared counts honest before any allocation.
    let n_counters = c.checked_count(12)?;
    let mut counters = Vec::with_capacity(n_counters);
    for _ in 0..n_counters {
        let name = take_str(c)?;
        counters.push((name, c.u64()?));
    }
    let n_gauges = c.checked_count(12)?;
    let mut gauges = Vec::with_capacity(n_gauges);
    for _ in 0..n_gauges {
        let name = take_str(c)?;
        gauges.push((name, c.u64()? as i64));
    }
    let n_hists = c.checked_count(4 + 8 + 8 * NUM_BUCKETS)?;
    let mut histograms = Vec::with_capacity(n_hists);
    for _ in 0..n_hists {
        let name = take_str(c)?;
        let sum = c.u64()?;
        let mut buckets = [0u64; NUM_BUCKETS];
        for b in buckets.iter_mut() {
            *b = c.u64()?;
        }
        histograms.push((name, HistogramSnapshot { sum, buckets }));
    }
    let n_exemplars = c.checked_count(24)?;
    let mut exemplars = Vec::with_capacity(n_exemplars);
    for _ in 0..n_exemplars {
        exemplars.push(take_exemplar(c)?);
    }
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
        exemplars,
    })
}

// ---------------------------------------------------------------------------
// Request / Response codecs
// ---------------------------------------------------------------------------

impl Request {
    /// Serializes into a frame payload (opcode byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Quote(bundle) => {
                out.push(OP_QUOTE);
                put_bundle(&mut out, bundle);
            }
            Request::Purchase {
                quote_id,
                budget,
                tick,
            } => {
                out.push(OP_PURCHASE);
                put_u64(&mut out, *quote_id);
                put_f64(&mut out, *budget);
                put_u64(&mut out, *tick);
            }
            Request::Stats => out.push(OP_STATS),
            Request::Reprice(patch) => {
                out.push(OP_REPRICE);
                put_patch(&mut out, patch);
            }
            Request::Shutdown => out.push(OP_SHUTDOWN),
            Request::Metrics => out.push(OP_METRICS),
            Request::Trace { trace_id } => {
                out.push(OP_TRACE);
                put_u64(&mut out, *trace_id);
            }
            Request::Traced { trace_id, request } => {
                out.push(OP_TRACED);
                put_u64(&mut out, *trace_id);
                out.extend_from_slice(&request.encode());
            }
        }
        out
    }

    /// The opcode byte this request encodes with ([`Request::Traced`]
    /// reports the envelope opcode; the flight recorder unwraps it).
    pub fn wire_opcode(&self) -> u8 {
        match self {
            Request::Quote(_) => OP_QUOTE,
            Request::Purchase { .. } => OP_PURCHASE,
            Request::Stats => OP_STATS,
            Request::Reprice(_) => OP_REPRICE,
            Request::Shutdown => OP_SHUTDOWN,
            Request::Metrics => OP_METRICS,
            Request::Trace { .. } => OP_TRACE,
            Request::Traced { .. } => OP_TRACED,
        }
    }

    /// Parses a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        Request::decode_inner(payload, true)
    }

    fn decode_inner(payload: &[u8], allow_envelope: bool) -> Result<Request, WireError> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            OP_QUOTE => Request::Quote(take_bundle(&mut c)?),
            OP_PURCHASE => Request::Purchase {
                quote_id: c.u64()?,
                budget: c.f64()?,
                tick: c.u64()?,
            },
            OP_STATS => Request::Stats,
            OP_REPRICE => Request::Reprice(take_patch(&mut c)?),
            OP_SHUTDOWN => Request::Shutdown,
            OP_METRICS => Request::Metrics,
            OP_TRACE => Request::Trace { trace_id: c.u64()? },
            // Envelopes carry exactly one level: a Traced inside a Traced
            // is rejected as an unknown opcode at the inner position.
            OP_TRACED if allow_envelope => {
                let trace_id = c.u64()?;
                let request = Box::new(Request::decode_inner(c.rest(), false)?);
                Request::Traced { trace_id, request }
            }
            other => return Err(WireError::UnknownOpcode(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes into a frame payload (opcode byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Quoted(q) => {
                out.push(OP_QUOTED);
                put_u64(&mut out, q.quote_id);
                put_f64(&mut out, q.price);
                put_u64(&mut out, q.epoch);
                put_u32(&mut out, q.shard);
                out.push(u8::from(q.cache_hit));
            }
            Response::Purchased { sold, price } => {
                out.push(OP_PURCHASED);
                out.push(u8::from(*sold));
                put_f64(&mut out, *price);
            }
            Response::Stats(shards) => {
                out.push(OP_STATS_REPLY);
                put_u32(&mut out, shards.len() as u32);
                for s in shards {
                    put_u64(&mut out, s.epoch);
                    put_u64(&mut out, s.quotes);
                    put_u64(&mut out, s.cache_hits);
                    put_u64(&mut out, s.invalidations);
                    put_u64(&mut out, s.evictions);
                    put_u64(&mut out, s.sales);
                    put_u64(&mut out, s.declines);
                    put_f64(&mut out, s.revenue);
                }
            }
            Response::Repriced { epochs } => {
                out.push(OP_REPRICED);
                put_u32(&mut out, epochs.len() as u32);
                for &e in epochs {
                    put_u64(&mut out, e);
                }
            }
            Response::ShutdownAck => out.push(OP_SHUTDOWN_ACK),
            Response::Metrics(snap) => {
                out.push(OP_METRICS_REPLY);
                put_metrics(&mut out, snap);
            }
            Response::Trace(exemplars) => {
                out.push(OP_TRACE_REPLY);
                put_u32(&mut out, exemplars.len() as u32);
                for ex in exemplars {
                    put_exemplar(&mut out, ex);
                }
            }
            Response::Error { code, message } => {
                out.push(OP_ERROR);
                out.push(*code as u8);
                let bytes = message.as_bytes();
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
        }
        out
    }

    /// Parses a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            OP_QUOTED => Response::Quoted(QuoteReply {
                quote_id: c.u64()?,
                price: c.f64()?,
                epoch: c.u64()?,
                shard: c.u32()?,
                cache_hit: c.u8()? != 0,
            }),
            OP_PURCHASED => Response::Purchased {
                sold: c.u8()? != 0,
                price: c.f64()?,
            },
            OP_STATS_REPLY => {
                let n = c.checked_count(64)?;
                let mut shards = Vec::with_capacity(n);
                for _ in 0..n {
                    shards.push(ShardStats {
                        epoch: c.u64()?,
                        quotes: c.u64()?,
                        cache_hits: c.u64()?,
                        invalidations: c.u64()?,
                        evictions: c.u64()?,
                        sales: c.u64()?,
                        declines: c.u64()?,
                        revenue: c.f64()?,
                    });
                }
                Response::Stats(shards)
            }
            OP_REPRICED => {
                let n = c.checked_count(8)?;
                let mut epochs = Vec::with_capacity(n);
                for _ in 0..n {
                    epochs.push(c.u64()?);
                }
                Response::Repriced { epochs }
            }
            OP_SHUTDOWN_ACK => Response::ShutdownAck,
            OP_METRICS_REPLY => Response::Metrics(take_metrics(&mut c)?),
            OP_TRACE_REPLY => {
                let n = c.checked_count(24)?;
                let mut exemplars = Vec::with_capacity(n);
                for _ in 0..n {
                    exemplars.push(take_exemplar(&mut c)?);
                }
                Response::Trace(exemplars)
            }
            OP_ERROR => {
                let code = ErrorCode::from_byte(c.u8()?)?;
                let len = c.checked_count(1)?;
                let message = std::str::from_utf8(c.take(len)?)
                    .map_err(|_| WireError::BadUtf8)?
                    .to_string();
                Response::Error { code, message }
            }
            other => return Err(WireError::UnknownOpcode(other)),
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let decoded = Request::decode(&req.encode()).expect("decodes");
        assert_eq!(decoded, req);
    }

    fn roundtrip_response(resp: Response) {
        let decoded = Response::decode(&resp.encode()).expect("decodes");
        assert_eq!(decoded, resp);
    }

    #[test]
    fn requests_roundtrip_bit_exactly() {
        roundtrip_request(Request::Quote([0usize, 63, 64, 200].into_iter().collect()));
        roundtrip_request(Request::Quote(ItemSet::new()));
        roundtrip_request(Request::Purchase {
            quote_id: u64::MAX,
            budget: 0.1 + 0.2, // a value with a messy bit pattern
            tick: 77,
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Reprice(PricingPatch::Keep));
        roundtrip_request(Request::Reprice(PricingPatch::SetUniformPrice(3.25)));
        roundtrip_request(Request::Reprice(PricingPatch::SetUniformWeight {
            weight: 0.3333333333333333,
            num_items: 150,
        }));
        roundtrip_request(Request::Reprice(PricingPatch::Replace(Pricing::Xos {
            components: vec![vec![1.0, 0.0, 2.5], vec![0.1, 0.2, 0.3]],
        })));
        roundtrip_request(Request::Reprice(PricingPatch::Replace(Pricing::Item {
            weights: vec![],
        })));
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Metrics);
    }

    #[test]
    fn responses_roundtrip_bit_exactly() {
        roundtrip_response(Response::Quoted(QuoteReply {
            quote_id: 9,
            price: 12.7,
            epoch: 3,
            shard: 1,
            cache_hit: true,
        }));
        roundtrip_response(Response::Purchased {
            sold: false,
            price: f64::MAX,
        });
        roundtrip_response(Response::Stats(vec![
            ShardStats {
                epoch: 1,
                quotes: 100,
                cache_hits: 40,
                invalidations: 12,
                evictions: 7,
                sales: 30,
                declines: 25,
                revenue: 123.456,
            },
            ShardStats {
                epoch: 2,
                quotes: 0,
                cache_hits: 0,
                invalidations: 0,
                evictions: 0,
                sales: 0,
                declines: 0,
                revenue: 0.0,
            },
        ]));
        roundtrip_response(Response::Repriced {
            epochs: vec![4, 4, 5],
        });
        roundtrip_response(Response::ShutdownAck);
        roundtrip_response(Response::Error {
            code: ErrorCode::UnknownQuote,
            message: "quote 7 unknown".into(),
        });
        roundtrip_response(Response::Error {
            code: ErrorCode::QuoteExpired,
            message: "quote 3 expired under pressure; re-quote".into(),
        });
        roundtrip_response(Response::Metrics(MetricsSnapshot::default()));
        let mut latency = HistogramSnapshot::default();
        latency.record(900);
        latency.record(4_200);
        latency.record(1 << 40);
        roundtrip_response(Response::Metrics(MetricsSnapshot {
            counters: vec![("cache.hit".into(), 41), ("cache.miss".into(), 9)],
            gauges: vec![("inflight".into(), -3)],
            histograms: vec![("quote.route".into(), latency)],
            exemplars: vec![Exemplar {
                trace_id: 0xFEED_BEEF_u64,
                root: "req".into(),
                total_ns: 2_000_000,
                events: vec![
                    SpanRecord {
                        name: "req".into(),
                        depth: 0,
                        shard: 1,
                        start_ns: 0,
                        dur_ns: 2_000_000,
                    },
                    SpanRecord {
                        name: "req.price".into(),
                        depth: 1,
                        shard: qp_telemetry::NO_SHARD,
                        start_ns: 150,
                        dur_ns: 1_500_000,
                    },
                ],
            }],
        }));
        roundtrip_response(Response::Trace(vec![Exemplar {
            trace_id: 7,
            root: "server.request".into(),
            total_ns: 900,
            events: vec![SpanRecord {
                name: "server.request".into(),
                depth: 0,
                shard: 0,
                start_ns: 0,
                dur_ns: 900,
            }],
        }]));
        roundtrip_response(Response::Trace(Vec::new()));
    }

    #[test]
    fn traced_envelopes_roundtrip_and_reject_nesting() {
        for inner in [
            Request::Quote([3usize, 99].into_iter().collect()),
            Request::Purchase {
                quote_id: 12,
                budget: 7.5,
                tick: 3,
            },
            Request::Reprice(PricingPatch::SetUniformPrice(2.0)),
            Request::Metrics,
        ] {
            roundtrip_request(Request::Traced {
                trace_id: 0xDEAD_BEEF_CAFE_0001,
                request: Box::new(inner),
            });
        }
        roundtrip_request(Request::Trace { trace_id: u64::MAX });

        // An envelope inside an envelope is not a legal frame.
        let nested = Request::Traced {
            trace_id: 1,
            request: Box::new(Request::Traced {
                trace_id: 2,
                request: Box::new(Request::Stats),
            }),
        };
        assert_eq!(
            Request::decode(&nested.encode()),
            Err(WireError::UnknownOpcode(0x10))
        );
        // A truncated envelope (id but no inner frame) fails cleanly.
        let mut bare = vec![0x10u8];
        bare.extend_from_slice(&9u64.to_be_bytes());
        assert_eq!(Request::decode(&bare), Err(WireError::Truncated));
    }

    #[test]
    fn pre_trace_frames_are_byte_identical() {
        // The envelope is purely additive: wrapping never rewrites the
        // inner encoding, and no bare request ever begins with 0x10.
        let requests = [
            Request::Quote([0usize, 7].into_iter().collect()),
            Request::Purchase {
                quote_id: 3,
                budget: 1.5,
                tick: 9,
            },
            Request::Stats,
            Request::Reprice(PricingPatch::Keep),
            Request::Shutdown,
            Request::Metrics,
        ];
        for req in requests {
            let bare = req.encode();
            assert_ne!(bare[0], 0x10, "bare frame collides with TRACED");
            let wrapped = Request::Traced {
                trace_id: 42,
                request: Box::new(req.clone()),
            }
            .encode();
            assert_eq!(&wrapped[9..], &bare[..], "envelope rewrote the inner frame");
            assert_eq!(Request::decode(&bare).expect("old frame decodes"), req);
        }
    }

    #[test]
    fn decoded_bundles_are_canonical_even_when_padded() {
        let bundle: ItemSet = [5usize, 70].into_iter().collect();
        // Hand-build a QUOTE whose block vector carries trailing zeros.
        let mut payload = vec![0x01u8];
        let mut blocks = bundle.as_blocks().to_vec();
        blocks.extend([0u64, 0u64]);
        payload.extend_from_slice(&(blocks.len() as u32).to_be_bytes());
        for b in blocks {
            payload.extend_from_slice(&b.to_be_bytes());
        }
        match Request::decode(&payload).expect("decodes") {
            Request::Quote(decoded) => assert_eq!(decoded, bundle),
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_yield_typed_errors() {
        assert_eq!(Request::decode(&[]), Err(WireError::Truncated));
        assert_eq!(
            Request::decode(&[0x42]),
            Err(WireError::UnknownOpcode(0x42))
        );
        // A QUOTE that announces more blocks than it carries.
        let mut truncated = vec![0x01u8];
        truncated.extend_from_slice(&5u32.to_be_bytes());
        assert_eq!(Request::decode(&truncated), Err(WireError::Truncated));
        // A count that could never fit a legal frame is rejected before
        // any allocation happens.
        let mut oversized = vec![0x01u8];
        oversized.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            Request::decode(&oversized),
            Err(WireError::Oversized(_))
        ));
        // Trailing garbage after a well-formed message.
        let mut trailing = Request::Stats.encode();
        trailing.push(0);
        assert_eq!(Request::decode(&trailing), Err(WireError::TrailingBytes(1)));
        // An unknown patch kind.
        assert_eq!(
            Request::decode(&[0x04, 0x77]),
            Err(WireError::UnknownTag(0x77))
        );
    }

    #[test]
    fn frames_roundtrip_over_a_byte_stream() {
        let payloads: Vec<Vec<u8>> = vec![
            Request::Stats.encode(),
            Request::Quote([1usize, 2, 3].as_slice().into()).encode(),
            Vec::new(), // an empty payload is a legal frame
        ];
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut reader = &wire[..];
        for p in &payloads {
            assert_eq!(read_frame(&mut reader).unwrap().as_deref(), Some(&p[..]));
        }
        // Clean EOF at the frame boundary.
        assert_eq!(read_frame(&mut reader).unwrap(), None);
        // EOF inside a header is an error, not a clean end.
        let mut partial = &[0u8, 0][..];
        assert!(read_frame(&mut partial).is_err());
        // An oversized announced length is rejected without allocating.
        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        let mut reader = &huge[..];
        assert!(read_frame(&mut reader).is_err());
    }
}
