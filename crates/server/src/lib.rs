//! # qp-server — the sharded network quote-serving front-end
//!
//! Everything below this crate computes prices; this crate **serves** them.
//! The ROADMAP's north star is a system fronting heavy traffic from many
//! buyers, and the online-marketplace framing of *Pricing Queries
//! (Approximately) Optimally* (Syrgkanis & Gehrke) treats each served quote
//! as a priced query against a live pricing function — which means quoting
//! and repricing must race safely, at network speed.
//!
//! The layers, bottom to top:
//!
//! * [`protocol`] — a dependency-free (std::net only) length-prefixed
//!   binary protocol: `QUOTE` a bundle, `PURCHASE` a one-shot quote id,
//!   `STATS`, and `REPRICE` carrying a `PricingPatch` — the PR 4
//!   incremental-delta path arriving over the wire. Floats travel as bit
//!   patterns, so revenue survives the network bit-exactly. Specified
//!   byte-by-byte in `PROTOCOL.md`.
//! * [`shard`] — the [`ShardSet`]: `k` identically priced
//!   [`qp_market::Broker`] replicas, bundle routing by
//!   `ItemSet::stable_hash mod k`, and a per-shard quote cache whose
//!   entries are `(price, epoch)` pairs validated against the broker's
//!   pricing epoch — any repricing bumps the epoch, so a stale price can
//!   never be served (the contract documented in `qp_market::broker`).
//! * [`server`] / [`client`] — the TCP accept loop fanning connections
//!   across handler threads, and the blocking request/reply client.
//! * [`transport`] — the network implementation of `qp-sim`'s
//!   transport-agnostic settle driver: the simulator's seeded event loop
//!   drives the server over the wire, which is what makes the `loadgen`
//!   binary's revenue-determinism self-check (network run ≡ in-process run,
//!   bit for bit) possible.
//!
//! Binaries: `loadgen` (seeded open-loop traffic → `BENCH_server.json`
//! with throughput/latency per shard count, cache hit rate, and the
//! determinism check) and `serve` (a standalone server over a generated
//! workload).

pub mod client;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod top;
pub mod transport;

pub use client::QuoteClient;
pub use protocol::{ErrorCode, QuoteReply, Request, Response, ShardStats, WireError};
pub use server::{CrashSwitch, FlightRecorder, QuoteServer};
pub use shard::{
    SettleOutcome, ShardQuote, ShardSet, DEFAULT_CACHE_CAPACITY, DEFAULT_SNAPSHOT_EVERY,
    MAX_PENDING_QUOTES,
};
pub use transport::{BundleTable, Endpoint, NetTransport, NetWorker};
