//! A blocking client for the quote-server protocol: one TCP connection,
//! strictly request/reply.
//!
//! Each method sends one frame and blocks for the matching reply. A typed
//! [`Response::Error`] from the server surfaces as an
//! [`io::ErrorKind::Other`] error carrying the server's message; a reply of
//! the wrong kind (a protocol violation) surfaces as
//! [`io::ErrorKind::InvalidData`].

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use qp_core::ItemSet;
use qp_pricing::algorithms::PricingPatch;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, QuoteReply, Request, Response, ShardStats,
};
use crate::shard::SettleOutcome;

/// One client connection to a [`crate::QuoteServer`].
pub struct QuoteClient {
    stream: TcpStream,
    /// Trace id stamped onto outgoing requests via the `TRACED` envelope;
    /// 0 means untraced and frames go out in their pre-trace byte layout.
    trace_id: u64,
}

impl QuoteClient {
    /// Connects (with `TCP_NODELAY`, since the protocol is small
    /// request/reply frames on the quoting hot path).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<QuoteClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(QuoteClient {
            stream,
            trace_id: 0,
        })
    }

    /// Sets the trace id wrapped around subsequent requests (`0` turns
    /// tracing back off). The id travels in a `TRACED` envelope, so the
    /// server's span tree for each request carries it — join it against
    /// the client-side spans to stitch a cross-process trace.
    pub fn set_trace_id(&mut self, trace_id: u64) {
        self.trace_id = trace_id;
    }

    /// One request/reply exchange, typed errors included in the result.
    fn call_raw(&mut self, request: Request) -> io::Result<Response> {
        let request = if self.trace_id == 0 {
            request
        } else {
            Request::Traced {
                trace_id: self.trace_id,
                request: Box::new(request),
            }
        };
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    fn call(&mut self, request: Request) -> io::Result<Response> {
        let response = self.call_raw(request)?;
        if let Response::Error { code, message } = &response {
            return Err(io::Error::other(format!(
                "server error {code:?}: {message}"
            )));
        }
        Ok(response)
    }

    fn protocol_violation<T>(got: &Response) -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected reply {got:?}"),
        ))
    }

    /// Quotes a bundle.
    pub fn quote(&mut self, bundle: &ItemSet) -> io::Result<QuoteReply> {
        match self.call(Request::Quote(bundle.clone()))? {
            Response::Quoted(reply) => Ok(reply),
            other => Self::protocol_violation(&other),
        }
    }

    /// Settles a quote; returns `(sold, price)` with the price honored as
    /// quoted.
    pub fn purchase(&mut self, quote_id: u64, budget: f64, tick: u64) -> io::Result<(bool, f64)> {
        match self.call(Request::Purchase {
            quote_id,
            budget,
            tick,
        })? {
            Response::Purchased { sold, price } => Ok((sold, price)),
            other => Self::protocol_violation(&other),
        }
    }

    /// Settles a quote with eviction surfaced as a typed outcome instead
    /// of an opaque error: `Expired` means the quote was evicted under
    /// pending-table pressure and the right response is to **re-quote**,
    /// while `Unknown` means the id was never issued or already settled.
    /// Transport failures and other server errors still return `Err`.
    pub fn try_purchase(
        &mut self,
        quote_id: u64,
        budget: f64,
        tick: u64,
    ) -> io::Result<SettleOutcome> {
        match self.call_raw(Request::Purchase {
            quote_id,
            budget,
            tick,
        })? {
            Response::Purchased { sold, price } => Ok(SettleOutcome::Settled { sold, price }),
            Response::Error {
                code: ErrorCode::QuoteExpired,
                ..
            } => Ok(SettleOutcome::Expired),
            Response::Error {
                code: ErrorCode::UnknownQuote,
                ..
            } => Ok(SettleOutcome::Unknown),
            Response::Error { code, message } => Err(io::Error::other(format!(
                "server error {code:?}: {message}"
            ))),
            other => Self::protocol_violation(&other),
        }
    }

    /// Fetches per-shard serving statistics.
    pub fn stats(&mut self) -> io::Result<Vec<ShardStats>> {
        match self.call(Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Self::protocol_violation(&other),
        }
    }

    /// Applies a pricing patch on every shard; returns the post-patch
    /// epochs in shard order. When this returns, the new pricing is live:
    /// quotes issued afterwards are priced (and epoch-tagged) against it.
    pub fn reprice(&mut self, patch: &PricingPatch) -> io::Result<Vec<u64>> {
        match self.call(Request::Reprice(patch.clone()))? {
            Response::Repriced { epochs } => Ok(epochs),
            other => Self::protocol_violation(&other),
        }
    }

    /// Fetches the server's telemetry registry: counters, gauges,
    /// log-bucketed latency histograms, and slow-request exemplars. The
    /// snapshot is structured — render it with [`qp_telemetry::expose`]
    /// or read quantiles straight off the histograms.
    pub fn metrics(&mut self) -> io::Result<qp_telemetry::MetricsSnapshot> {
        match self.call(Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            other => Self::protocol_violation(&other),
        }
    }

    /// Looks up the server's recent exemplars for one trace id (`TRACE`
    /// frame): the server-side halves of a distributed trace, ready to
    /// stitch against the client-side span trees sharing the id.
    pub fn trace(&mut self, trace_id: u64) -> io::Result<Vec<qp_telemetry::Exemplar>> {
        match self.call(Request::Trace { trace_id })? {
            Response::Trace(exemplars) => Ok(exemplars),
            other => Self::protocol_violation(&other),
        }
    }

    /// Asks the server to shut down; returns once the server acknowledges.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.call(Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Self::protocol_violation(&other),
        }
    }
}
