//! Rendering for the `qp-top` live dashboard and `--postmortem` viewer.
//!
//! `qp-top` (see `src/bin/qp_top.rs`) polls the server's `METRICS` and
//! `STATS` frames on an interval, feeds each cumulative snapshot into a
//! [`RollingWindows`](qp_telemetry::RollingWindows), and renders the
//! **per-window deltas** — rates and
//! quantiles over the last few seconds, not since server start. All the
//! formatting lives here, pure string-in/string-out, so the dashboard's
//! layout is pinned by unit tests without a TTY.

use qp_telemetry::{FlightDump, MetricsSnapshot};

use crate::protocol::ShardStats;

/// One dashboard frame: header, throughput/latency block, cache and WAL
/// blocks, and the per-shard table — rendered from the latest window delta
/// (`window`, covering `interval_secs`) plus cumulative shard stats.
pub fn render_dashboard(
    window: &MetricsSnapshot,
    stats: &[ShardStats],
    interval_secs: f64,
) -> String {
    let secs = if interval_secs > 0.0 {
        interval_secs
    } else {
        1.0
    };
    let mut out = String::new();
    out.push_str("qp-top — query-pricing server (window deltas)\n");
    out.push_str(&"─".repeat(64));
    out.push('\n');

    // Throughput + request latency from the server.request span histogram.
    let requests = window.histogram("server.request").map_or(0, |h| h.count());
    out.push_str(&format!(
        "throughput   {:>10.1} req/s\n",
        requests as f64 / secs
    ));
    for (label, name) in [
        ("request", "server.request"),
        ("quote.price", "quote.price"),
        ("settle", "settle.ledger"),
    ] {
        if let Some(h) = window.histogram(name) {
            if h.count() > 0 {
                let (p50, p95, p99) = h.percentiles();
                out.push_str(&format!(
                    "{label:<12} p50 {:>9} ns   p95 {:>9} ns   p99 {:>9} ns\n",
                    p50, p95, p99
                ));
            }
        }
    }

    // Cache behaviour over the window.
    let hits = window.counter("cache.hit").unwrap_or(0);
    let misses = window.counter("cache.miss").unwrap_or(0);
    let invalidations = window.counter("cache.invalidated").unwrap_or(0);
    let lookups = hits + misses;
    let hit_rate = if lookups > 0 {
        100.0 * hits as f64 / lookups as f64
    } else {
        0.0
    };
    out.push_str(&format!(
        "cache        {hit_rate:>9.1} % hit   {:>8.1} inval/s\n",
        invalidations as f64 / secs
    ));

    // WAL: append rate, flush-queue depth (instantaneous gauge), fsync
    // latency quantiles over the window.
    let wal_records = window.counter("wal.records").unwrap_or(0);
    let queue_depth = window.gauge("wal.flush_queue_depth").unwrap_or(0);
    out.push_str(&format!(
        "wal          {:>9.1} rec/s   flush-queue {queue_depth}\n",
        wal_records as f64 / secs
    ));
    if let Some(h) = window.histogram("wal.fsync") {
        if h.count() > 0 {
            let (p50, _, p99) = h.percentiles();
            out.push_str(&format!(
                "fsync        p50 {:>9} ns   p99 {:>9} ns   ({:.1}/s)\n",
                p50,
                p99,
                h.count() as f64 / secs
            ));
        }
    }

    // Per-shard breakdown (cumulative — STATS has no windowed form).
    if !stats.is_empty() {
        out.push('\n');
        out.push_str("shard   epoch     quotes    hit%     sales  declines     revenue\n");
        for (i, s) in stats.iter().enumerate() {
            let hit_pct = if s.quotes > 0 {
                100.0 * s.cache_hits as f64 / s.quotes as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{i:>5} {:>7} {:>10} {:>6.1}% {:>9} {:>9} {:>11.2}\n",
                s.epoch, s.quotes, hit_pct, s.sales, s.declines, s.revenue
            ));
        }
    }
    out
}

/// Renders a crash flight dump for `qp-top --postmortem`: the death
/// metadata, the metric headlines at the instant of death, the last
/// protocol events, and the recent root span trees.
pub fn render_postmortem(dump: &FlightDump) -> String {
    let mut out = String::new();
    out.push_str("qp-top — post-mortem flight dump\n");
    out.push_str(&"─".repeat(64));
    out.push('\n');
    out.push_str(&format!("reason      {}\n", dump.reason));
    out.push_str(&format!("wal_seq     {}\n", dump.wal_seq));
    if dump.truncated {
        out.push_str("NOTE        dump tail torn — sections after the tear dropped\n");
    }

    out.push_str(&format!(
        "metrics     {} counters, {} gauges, {} histograms\n",
        dump.snapshot.counters.len(),
        dump.snapshot.gauges.len(),
        dump.snapshot.histograms.len()
    ));
    for name in ["wal.records", "cache.hit", "cache.miss"] {
        if let Some(v) = dump.snapshot.counter(name) {
            out.push_str(&format!("  {name:<24} {v}\n"));
        }
    }

    out.push_str(&format!(
        "\nlast {} protocol events (newest last):\n",
        dump.protocol_events.len()
    ));
    for e in &dump.protocol_events {
        out.push_str(&format!(
            "  op 0x{:02x}  trace {:#018x}  {} bytes\n",
            e.opcode, e.trace_id, e.frame_len
        ));
    }

    out.push_str(&format!("\n{} recent root spans:\n", dump.roots.len()));
    for root in &dump.roots {
        out.push_str(&format!(
            "  {} [{} ns] trace {:#018x}\n",
            root.root, root.total_ns, root.trace_id
        ));
        for e in &root.events {
            out.push_str(&format!(
                "    {}{} [{} ns]\n",
                "  ".repeat(e.depth as usize),
                e.name,
                e.dur_ns
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_telemetry::TelemetrySink;

    fn sample_window() -> MetricsSnapshot {
        let sink = TelemetrySink::enabled();
        sink.counter("cache.hit").add(90);
        sink.counter("cache.miss").add(10);
        sink.counter("cache.invalidated").add(4);
        sink.counter("wal.records").add(50);
        sink.gauge("wal.flush_queue_depth").set(7);
        let h = sink.histogram("server.request");
        for _ in 0..20 {
            h.record(10_000);
        }
        sink.histogram("wal.fsync").record(80_000);
        sink.snapshot()
    }

    #[test]
    fn dashboard_shows_rates_and_the_shard_table() {
        let stats = vec![ShardStats {
            epoch: 3,
            quotes: 100,
            cache_hits: 90,
            invalidations: 4,
            evictions: 0,
            sales: 60,
            declines: 40,
            revenue: 123.5,
        }];
        let text = render_dashboard(&sample_window(), &stats, 2.0);
        // 20 requests over a 2 s window.
        assert!(text.contains("10.0 req/s"), "{text}");
        assert!(text.contains("90.0 % hit"), "{text}");
        assert!(text.contains("flush-queue 7"), "{text}");
        assert!(text.contains("fsync"), "{text}");
        assert!(text.contains("shard   epoch"), "{text}");
        assert!(text.contains("123.50"), "{text}");
    }

    #[test]
    fn dashboard_survives_an_empty_window() {
        let empty = MetricsSnapshot::default();
        let text = render_dashboard(&empty, &[], 1.0);
        assert!(text.contains("0.0 req/s"), "{text}");
        assert!(!text.contains("shard   epoch"), "{text}");
    }

    #[test]
    fn postmortem_renders_every_section() {
        let sink = TelemetrySink::enabled();
        sink.counter("wal.records").add(41);
        let dump = FlightDump::capture(
            "crash-switch kill",
            41,
            sink.snapshot(),
            Vec::new(),
            vec![qp_telemetry::ProtocolEvent {
                opcode: 0x02,
                trace_id: 0xAB,
                frame_len: 25,
            }],
        );
        let text = render_postmortem(&dump);
        assert!(text.contains("crash-switch kill"), "{text}");
        assert!(text.contains("wal_seq     41"), "{text}");
        assert!(text.contains("op 0x02"), "{text}");
        assert!(text.contains("wal.records"), "{text}");
    }
}
