//! `qp-top` — a dependency-free live terminal dashboard for a running
//! quote server, plus a post-mortem viewer for crash flight dumps.
//!
//! Live mode polls the server's `METRICS` and `STATS` frames on an
//! interval, feeds each cumulative snapshot into a rolling window, and
//! redraws rates/quantiles **over the last window** (so a quiet server
//! shows zeros, not its lifetime averages):
//!
//! ```text
//! qp_top --addr 127.0.0.1:7171 --interval-ms 1000 --frames 0
//! ```
//!
//! `--frames N` stops after N redraws (0 = run until the server goes
//! away); CI smokes use `--frames 2 --no-clear` to capture a parseable
//! frame. Post-mortem mode never touches the network:
//!
//! ```text
//! qp_top --postmortem path/to/data-dir
//! ```

use std::net::SocketAddr;
use std::time::Duration;

use qp_server::client::QuoteClient;
use qp_server::top::{render_dashboard, render_postmortem};
use qp_telemetry::{FlightDump, RollingWindows};

struct Options {
    addr: SocketAddr,
    interval: Duration,
    frames: u64,
    no_clear: bool,
    postmortem: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        addr: "127.0.0.1:7171".parse().expect("static addr"),
        interval: Duration::from_millis(1000),
        frames: 0,
        no_clear: false,
        postmortem: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                let v = args.next().expect("--addr needs host:port");
                opts.addr = v.parse().expect("--addr must be host:port");
            }
            "--interval-ms" => {
                let v = args.next().expect("--interval-ms needs a number");
                opts.interval = Duration::from_millis(v.parse().expect("interval ms"));
            }
            "--frames" => {
                let v = args.next().expect("--frames needs a number");
                opts.frames = v.parse().expect("frame count");
            }
            "--no-clear" => opts.no_clear = true,
            "--postmortem" => {
                opts.postmortem = Some(args.next().expect("--postmortem needs a data dir"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: qp_top [--addr HOST:PORT] [--interval-ms N] [--frames N] \
                     [--no-clear] | --postmortem DATA_DIR"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_args();

    if let Some(dir) = &opts.postmortem {
        match FlightDump::read_from(dir.as_ref()) {
            Ok(Some(dump)) => print!("{}", render_postmortem(&dump)),
            Ok(None) => {
                eprintln!("no flight dump in {dir}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("reading flight dump in {dir}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut client = match QuoteClient::connect(opts.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("qp-top: connect {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    // Keep ~10 s of windows around; `merged()` would give p99-over-last-10s
    // if a future flag wants a longer horizon than one interval.
    let window_count = (Duration::from_secs(10).as_millis() / opts.interval.as_millis().max(1))
        .clamp(1, 60) as usize;
    let mut windows = RollingWindows::new(window_count);

    let mut drawn = 0u64;
    loop {
        let (snapshot, stats) = match (client.metrics(), client.stats()) {
            (Ok(m), Ok(s)) => (m, s),
            _ => {
                eprintln!("qp-top: server went away");
                std::process::exit(1);
            }
        };
        let window = windows.observe(snapshot).clone();
        let body = render_dashboard(&window, &stats, opts.interval.as_secs_f64());
        if opts.no_clear {
            print!("{body}");
        } else {
            // ANSI clear + home; no TTY library needed.
            print!("\x1b[2J\x1b[H{body}");
        }
        use std::io::Write;
        let _ = std::io::stdout().flush();
        drawn += 1;
        if opts.frames != 0 && drawn >= opts.frames {
            return;
        }
        std::thread::sleep(opts.interval);
    }
}
