//! Seeded open-loop traffic against the quote server → `BENCH_server.json`.
//!
//! For each requested shard count, the binary:
//!
//! 1. builds that many identically-priced [`Broker`] replicas over the
//!    world/skewed workload and starts a [`QuoteServer`] on a loopback
//!    port;
//! 2. drives it with `qp-sim`'s seeded event loop over the network
//!    transport — buyers arrive by `qp_workloads::arrivals`, quote and
//!    purchase over TCP from multiple worker connections, and the engine's
//!    live repricings travel as `REPRICE` frames (the incremental-delta
//!    path end-to-end from wire to patched pricing);
//! 3. re-runs the **same seed in-process** (`qp_sim::run` against one more
//!    identically built broker, telemetry off) and asserts the revenue
//!    totals are **bit-identical** — the transport must be
//!    revenue-invisible, and so must telemetry, which runs *enabled* on
//!    the server side of every network run;
//! 4. records throughput, client round-trip latency percentiles, and —
//!    via the `METRICS` frame — the server's own quote-latency
//!    p50/p95/p99 and cache hit/miss/invalidation counters, which land in
//!    each row's `server_metrics` object.
//!
//! ```bash
//! cargo run --release -p qp-server --bin loadgen              # full sizes
//! cargo run --release -p qp-server --bin loadgen -- --smoke   # CI-sized
//! cargo run --release -p qp-server --bin loadgen -- \
//!     --shards 1,2,4 --ticks 30 --seed 7 --out BENCH_server.json \
//!     --metrics-out METRICS_server.prom
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::atomic::{AtomicBool, Ordering};
use qp_market::{Broker, SupportConfig};
use qp_qdb::{Database, Query};
use qp_server::{
    BundleTable, CrashSwitch, Endpoint, FlightRecorder, NetTransport, QuoteClient, QuoteServer,
    ShardSet, DEFAULT_CACHE_CAPACITY, DEFAULT_SNAPSHOT_EVERY,
};
use qp_sim::{
    run, run_with, BudgetModel, BuyerSegment, EveryNTicks, Population, RepricingMode, SimConfig,
    SimReport,
};
use qp_store::{FileStore, SharedStore, Store};
use qp_telemetry::{MetricsSnapshot, TelemetrySink};
use qp_workloads::arrivals::ArrivalProcess;
use qp_workloads::queries::skewed;
use qp_workloads::world::{self, WorldConfig};
use qp_workloads::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Sizing {
    support: usize,
    pool: usize,
    ticks: u64,
    rate: f64,
    workers: usize,
    shard_counts: Vec<usize>,
}

struct RunResult {
    shards: usize,
    report: SimReport,
    baseline: SimReport,
    latencies_us: Vec<u64>,
    cache_hits: u64,
    cache_misses: u64,
    cache_invalidations: u64,
    final_epochs: Vec<u64>,
    /// The server's own telemetry registry, fetched over the `METRICS`
    /// frame after the run.
    server_metrics: MetricsSnapshot,
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    for i in 0..args.len() {
        if args[i] == flag {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = args[i].strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

/// A deterministically-priced broker replica — every call with the same
/// inputs builds the same support, hypergraph, and pricing, which is what
/// makes shard replicas interchangeable and the determinism check exact.
fn build_broker(
    db: &Database,
    pool: &[Query],
    support: usize,
    algorithm: &str,
    seed: u64,
    telemetry: TelemetrySink,
) -> Broker {
    let mut rng = StdRng::seed_from_u64(seed);
    Broker::builder(db.clone())
        .support_config(SupportConfig::with_size(support))
        .algorithm(algorithm)
        .anticipate_all(pool.iter().map(|q| (q.clone(), rng.gen_range(1.0..=50.0))))
        .telemetry(telemetry)
        .build()
        .unwrap_or_else(|e| panic!("broker build failed: {e}"))
}

/// A two-phase buyer schedule: a broad mix up front, a long-tail shift at
/// the midpoint — enough phase structure to exercise the bundle table's
/// phase indexing and the repricer's reaction to changing demand.
fn schedule(pool: &[Query], ticks: u64) -> Vec<(u64, Population)> {
    let phase0 = Population::new(vec![
        BuyerSegment::new(
            "regulars",
            pool.to_vec(),
            BudgetModel::Uniform { lo: 2.0, hi: 35.0 },
        ),
        BuyerSegment::new(
            "premium",
            pool.to_vec(),
            BudgetModel::Normal {
                mean: 60.0,
                variance: 100.0,
            },
        )
        .weight(0.35)
        .skew(1.2),
    ]);
    let phase1 = Population::new(vec![BuyerSegment::new(
        "long-tail",
        pool.to_vec(),
        BudgetModel::Exponential { mean: 10.0 },
    )
    .skew(1.4)]);
    vec![(0, phase0), ((ticks / 2).max(1), phase1)]
}

fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx] as f64 / 1000.0
}

/// The per-row `server_metrics` JSON object: the server's own view of the
/// run, straight off the `METRICS` snapshot — quote-latency quantiles from
/// the `server.request` span histogram and the epoch-cache counters.
fn server_metrics_json(snap: &MetricsSnapshot) -> String {
    let latency = snap
        .histogram("server.request")
        .cloned()
        .unwrap_or_default();
    let (p50, p95, p99) = latency.percentiles();
    format!(
        "{{\"requests\": {}, \"latency_ms\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"cache_invalidations\": {}}}",
        latency.count(),
        json_f64(p50 as f64 / 1e6),
        json_f64(p95 as f64 / 1e6),
        json_f64(p99 as f64 / 1e6),
        snap.counter("cache.hit").unwrap_or(0),
        snap.counter("cache.miss").unwrap_or(0),
        snap.counter("cache.invalidated").unwrap_or(0)
    )
}

/// Renders a finite f64 exactly; NaN/∞ become 0 (JSON cannot carry them).
fn json_f64(x: f64) -> String {
    if !x.is_finite() {
        return "0.0".to_string();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    db: &Database,
    pool: &[Query],
    sizing: &Sizing,
    shards: usize,
    algorithm: &str,
    seed: u64,
    arrivals: &ArrivalProcess,
    cfg: &SimConfig,
    trace: bool,
) -> RunResult {
    let sched = schedule(pool, sizing.ticks);

    // The whole serving side runs with telemetry ENABLED — the determinism
    // assertion below is also the proof that measurement is out-of-band.
    let telemetry = TelemetrySink::enabled();
    if trace {
        // Capture every root span as an exemplar: the stitching assertion
        // below needs both halves of each trace, not just the slow ones.
        telemetry.set_slow_threshold(Duration::ZERO);
    }

    // The shard replicas, plus one reference Arc kept for the bundle table.
    let brokers: Vec<Arc<Broker>> = (0..shards)
        .map(|_| {
            Arc::new(build_broker(
                db,
                pool,
                sizing.support,
                algorithm,
                seed,
                telemetry.clone(),
            ))
        })
        .collect();
    let reference = Arc::clone(&brokers[0]);
    let shard_set = ShardSet::new(brokers).with_telemetry(telemetry.clone());
    let mut server = QuoteServer::bind("127.0.0.1:0", shard_set).expect("bind loopback");

    let bundles = BundleTable::for_schedule(&reference, &sched);
    let mut net = NetTransport::connect(server.local_addr(), bundles).expect("connect transport");
    // Distributed tracing: a separate client-side registry (threshold 0)
    // receives the `client.settle` root spans; the transport mints trace
    // ids and sends every request in a `TRACED` envelope.
    let client_sink = if trace {
        let sink = TelemetrySink::enabled();
        sink.set_slow_threshold(Duration::ZERO);
        net.enable_tracing(sink.clone());
        Some(sink)
    } else {
        None
    };
    let mut policy = EveryNTicks::new(4);
    let net_cfg = SimConfig {
        telemetry: telemetry.clone(),
        ..cfg.clone()
    };
    let report = run_with(&net, &sched, arrivals, &mut policy, &net_cfg);

    let mut latencies_us = net.take_latencies_us();
    latencies_us.sort_unstable();
    let stats = net.admin().stats().expect("server stats");
    let server_metrics = net.admin().metrics().expect("server metrics");
    let cache_hits: u64 = stats.iter().map(|s| s.cache_hits).sum();
    let cache_misses: u64 = stats.iter().map(|s| s.quotes - s.cache_hits).sum();
    let cache_invalidations: u64 = stats.iter().map(|s| s.invalidations).sum();
    let final_epochs: Vec<u64> = stats.iter().map(|s| s.epoch).collect();

    // STATS and METRICS count the same events on the same paths; a drift
    // between them is an instrumentation bug.
    assert_eq!(
        server_metrics.counter("cache.hit").unwrap_or(0),
        cache_hits,
        "METRICS cache.hit drifted from STATS"
    );
    assert_eq!(
        server_metrics.counter("cache.miss").unwrap_or(0),
        cache_misses,
        "METRICS cache.miss drifted from STATS"
    );
    assert_eq!(
        server_metrics.counter("cache.invalidated").unwrap_or(0),
        cache_invalidations,
        "METRICS cache.invalidated drifted from STATS"
    );

    // The server-side ledgers saw exactly the traffic the engine drove.
    let server_sales: u64 = stats.iter().map(|s| s.sales).sum();
    let server_declines: u64 = stats.iter().map(|s| s.declines).sum();
    assert_eq!(
        server_sales as usize,
        report.sales(),
        "ledger sales drifted"
    );
    assert_eq!(
        server_declines as usize,
        report.declines(),
        "ledger declines drifted"
    );

    // Tracing mode: prove the span trees stitch across the wire. The
    // client half (`client.settle` roots) and the server half
    // (`server.request` roots) must share trace ids, and the `TRACE`
    // lookup frame must return the server half for a stitched id.
    if let Some(client_sink) = &client_sink {
        let client_snap = client_sink.snapshot();
        let client_ids: std::collections::HashSet<u64> = client_snap
            .exemplars
            .iter()
            .filter(|e| e.root == "client.settle" && e.trace_id != 0)
            .map(|e| e.trace_id)
            .collect();
        // Newest-last on the server side; pick the freshest stitched id so
        // the follow-up TRACE lookup finds it still in the exemplar ring.
        let stitched: Vec<u64> = server_metrics
            .exemplars
            .iter()
            .filter(|e| e.root == "server.request" && client_ids.contains(&e.trace_id))
            .map(|e| e.trace_id)
            .collect();
        assert!(
            !stitched.is_empty(),
            "no cross-process stitched exemplar: {} client roots vs {} server roots \
             shared no trace id",
            client_ids.len(),
            server_metrics.exemplars.len()
        );
        assert!(
            server_metrics
                .exemplars
                .iter()
                .filter(|e| stitched.contains(&e.trace_id))
                .any(|e| e.events.iter().any(|ev| ev.shard != qp_telemetry::NO_SHARD)),
            "stitched server exemplars carry no shard tag"
        );
        let freshest = *stitched.last().expect("non-empty");
        let looked_up = net.admin().trace(freshest).expect("TRACE lookup frame");
        assert!(
            looked_up.iter().any(|e| e.root == "server.request"),
            "TRACE frame for {freshest:#x} returned no server.request exemplar"
        );
        println!(
            "  tracing: {} stitched cross-process exemplars, TRACE lookup OK",
            stitched.len()
        );
    }

    drop(net);
    server.shutdown();

    // The in-process baseline: one more identical broker, the same seed,
    // the same event loop — only the transport differs, and telemetry is
    // OFF, so the bit-identical assertion also covers the sink.
    let baseline_broker = build_broker(
        db,
        pool,
        sizing.support,
        algorithm,
        seed,
        TelemetrySink::default(),
    );
    let mut baseline_policy = EveryNTicks::new(4);
    let baseline = run(
        &baseline_broker,
        &sched,
        arrivals,
        &mut baseline_policy,
        cfg,
    );

    RunResult {
        shards,
        report,
        baseline,
        latencies_us,
        cache_hits,
        cache_misses,
        cache_invalidations,
        final_epochs,
        server_metrics,
    }
}

/// One crash-recovery run: a durable server is killed mid-run after
/// `kill_after` dispatched requests, a supervisor thread recovers it from
/// the data directory onto a fresh port, and the seeded engine (resilient
/// transport) rides through the outage. Asserts, bit-for-bit:
///
/// 1. the crash-run revenue equals an uninterrupted in-process run of the
///    same seed (recovery lost nothing, replayed nothing twice);
/// 2. an independent WAL replay (newest snapshot + suffix) reproduces the
///    recovered server's final per-shard ledgers exactly.
#[allow(clippy::too_many_arguments)]
fn run_crash_one(
    db: &Database,
    pool: &[Query],
    sizing: &Sizing,
    shards: usize,
    algorithm: &str,
    seed: u64,
    arrivals: &ArrivalProcess,
    cfg: &SimConfig,
    data_dir: &Path,
    kill_after: u64,
    snapshot_every: u64,
) -> (SimReport, SimReport) {
    let dir = data_dir.join(format!("s{shards}-k{kill_after}"));
    let _ = std::fs::remove_dir_all(&dir);
    let sched = schedule(pool, sizing.ticks);
    let telemetry = TelemetrySink::enabled();

    let brokers: Vec<Arc<Broker>> = (0..shards)
        .map(|_| {
            Arc::new(build_broker(
                db,
                pool,
                sizing.support,
                algorithm,
                seed,
                telemetry.clone(),
            ))
        })
        .collect();
    let reference = Arc::clone(&brokers[0]);
    let store: SharedStore = Arc::new(FileStore::open(&dir).expect("open data dir"));
    // The flight recorder rides along: the crash-switch fire freezes the
    // registry, the recent root spans, the last protocol events, and the
    // store's WAL sequence into `flight.dump` inside the data directory.
    let recorder = FlightRecorder::new(&dir, telemetry.clone(), Some(Arc::clone(&store)));
    let shard_set = ShardSet::new(brokers)
        .with_store(store, snapshot_every)
        .with_telemetry(telemetry.clone());
    let crash = CrashSwitch::after(kill_after);
    let server = QuoteServer::bind_with_options(
        "127.0.0.1:0",
        shard_set,
        Some(crash.clone()),
        Some(Arc::clone(&recorder)),
    )
    .expect("bind loopback");
    let endpoint = Endpoint::new(server.local_addr());
    let done = Arc::new(AtomicBool::new(false));
    // The WAL sequence the supervisor's recovery scan finds — the value
    // the flight dump's own wal_seq must match exactly.
    let recovered_seq = Arc::new(parking_lot::atomic::AtomicU64::new(u64::MAX));

    // The supervisor: the "operator" that notices the dead process,
    // recovers from the data directory, and republishes the endpoint.
    let supervisor = {
        let crash = crash.clone();
        let endpoint = Arc::clone(&endpoint);
        let done = Arc::clone(&done);
        let db = db.clone();
        let pool = pool.to_vec();
        let algorithm = algorithm.to_string();
        let telemetry = telemetry.clone();
        let dir = dir.clone();
        let support = sizing.support;
        let recovered_seq = Arc::clone(&recovered_seq);
        std::thread::spawn(move || {
            let mut server = server;
            let mut recoveries = 0u32;
            loop {
                if crash.crashed() && recoveries == 0 {
                    // Drain in-flight dispatches before touching the dir:
                    // after quiesce the dead server can never append again.
                    server.quiesce();
                    let brokers: Vec<Arc<Broker>> = (0..shards)
                        .map(|_| {
                            Arc::new(build_broker(
                                &db,
                                &pool,
                                support,
                                &algorithm,
                                seed,
                                telemetry.clone(),
                            ))
                        })
                        .collect();
                    let store: SharedStore =
                        Arc::new(FileStore::open(&dir).expect("reopen data dir"));
                    // ordering: SeqCst — published for the post-run flight
                    // dump assertion; exactness over speed off the hot path.
                    recovered_seq.store(store.wal_seq(), Ordering::SeqCst);
                    let (set, _state) =
                        ShardSet::restore(brokers, DEFAULT_CACHE_CAPACITY, store, snapshot_every)
                            .expect("crash recovery");
                    let set = set.with_telemetry(telemetry.clone());
                    server = QuoteServer::bind("127.0.0.1:0", set).expect("rebind after crash");
                    endpoint.update(server.local_addr());
                    recoveries += 1;
                }
                // ordering: Acquire pairs with the main thread's Release
                // store after the run completes.
                if done.load(Ordering::Acquire) {
                    server.shutdown();
                    return recoveries;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let bundles = BundleTable::for_schedule(&reference, &sched);
    let net = NetTransport::connect_endpoint(Arc::clone(&endpoint), bundles).expect("connect");
    let mut policy = EveryNTicks::new(4);
    let net_cfg = SimConfig {
        telemetry: telemetry.clone(),
        ..cfg.clone()
    };
    let report = run_with(&net, &sched, arrivals, &mut policy, &net_cfg);
    drop(net);

    assert!(
        crash.crashed(),
        "the kill offset ({kill_after} requests) never fired — this workload makes more \
         requests than that; pick a smaller --kill-after"
    );

    // Final per-shard stats from the *recovered* server, over a fresh
    // connection (the endpoint may point at the post-crash port).
    let stats = {
        let mut tries = 0u32;
        loop {
            let (addr, _) = endpoint.current();
            match QuoteClient::connect(addr).and_then(|mut c| c.stats()) {
                Ok(s) => break s,
                Err(e) => {
                    tries += 1;
                    assert!(tries < 1000, "final STATS unreachable: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    };
    // ordering: Release pairs with the supervisor's Acquire poll of `done`.
    done.store(true, Ordering::Release);
    let recoveries = supervisor.join().expect("supervisor thread");
    assert_eq!(recoveries, 1, "exactly one crash, exactly one recovery");

    // The crash must have left a parseable flight dump whose frozen WAL
    // sequence is exactly what the supervisor's recovery scan found — the
    // dump and the recovered store describe the same instant of death.
    let dump = qp_telemetry::FlightDump::read_from(&dir)
        .expect("read flight dump")
        .expect("the crash fire site writes flight.dump");
    assert_eq!(dump.reason, "crash-switch kill", "dump reason");
    assert!(!dump.truncated, "flight dump tail torn on a clean kill");
    assert_eq!(
        dump.wal_seq,
        recovered_seq.load(Ordering::SeqCst),
        "flight dump wal_seq diverged from the recovered WAL sequence"
    );
    assert!(
        !dump.protocol_events.is_empty(),
        "flight dump carries no protocol events despite {kill_after} dispatches"
    );
    assert!(
        !dump.roots.is_empty(),
        "flight dump carries no root spans despite telemetry enabled"
    );
    println!(
        "  flight dump: {} proto events, {} root spans, wal_seq {} == recovered",
        dump.protocol_events.len(),
        dump.roots.len(),
        dump.wal_seq
    );

    // Oracle 1: the ledgers the engine saw are the ledgers the server kept.
    let server_sales: u64 = stats.iter().map(|s| s.sales).sum();
    let server_declines: u64 = stats.iter().map(|s| s.declines).sum();
    assert_eq!(
        server_sales as usize,
        report.sales(),
        "ledger sales drifted"
    );
    assert_eq!(
        server_declines as usize,
        report.declines(),
        "ledger declines drifted"
    );

    // Oracle 2: an independent replay of the data directory — newest valid
    // snapshot plus WAL suffix — reproduces every shard ledger bit-exactly.
    let oracle_broker = build_broker(
        db,
        pool,
        sizing.support,
        algorithm,
        seed,
        TelemetrySink::default(),
    );
    let replay_store = FileStore::open(&dir).expect("reopen for replay");
    let recovery = replay_store.recover().expect("recover for replay");
    let (seed_pricing, seed_epoch) = oracle_broker.pricing_snapshot();
    let state = recovery.replay(seed_pricing, seed_epoch, shards);
    assert_eq!(state.shards.len(), stats.len(), "replay shard count");
    for (i, (ledger, s)) in state.shards.iter().zip(&stats).enumerate() {
        assert_eq!(
            ledger.total().to_bits(),
            s.revenue.to_bits(),
            "WAL replay revenue diverged from the live ledger on shard {i}"
        );
        assert_eq!(ledger.sales.len() as u64, s.sales, "shard {i} sales");
        assert_eq!(ledger.declined_count, s.declines, "shard {i} declines");
    }

    // Oracle 3: the uninterrupted same-seed in-process run.
    let mut baseline_policy = EveryNTicks::new(4);
    let baseline = run(&oracle_broker, &sched, arrivals, &mut baseline_policy, cfg);
    (report, baseline)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let trace = args.iter().any(|a| a == "--trace");
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let algorithm = arg_value(&args, "--algorithm").unwrap_or_else(|| "UBP".to_string());
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_server.json".to_string());
    let mut sizing = if smoke {
        Sizing {
            support: 60,
            pool: 40,
            ticks: 10,
            rate: 6.0,
            workers: 3,
            shard_counts: vec![1, 2],
        }
    } else {
        Sizing {
            support: 120,
            pool: 100,
            ticks: 30,
            rate: 12.0,
            workers: 4,
            shard_counts: vec![1, 2, 4],
        }
    };
    if let Some(t) = arg_value(&args, "--ticks").and_then(|s| s.parse().ok()) {
        sizing.ticks = t;
    }
    if let Some(w) = arg_value(&args, "--workers").and_then(|s| s.parse().ok()) {
        sizing.workers = w;
    }
    if let Some(list) = arg_value(&args, "--shards") {
        sizing.shard_counts = list
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&s| s > 0)
            .collect();
        assert!(
            !sizing.shard_counts.is_empty(),
            "--shards parsed to nothing"
        );
    }

    println!(
        "loadgen: workload skewed, seed {seed}, {} ticks, shard counts {:?}, {} workers{}{}",
        sizing.ticks,
        sizing.shard_counts,
        sizing.workers,
        if smoke { " (smoke)" } else { "" },
        if trace { " (traced)" } else { "" }
    );

    let world_cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&world_cfg);
    let mut pool = skewed::workload(&db, world_cfg.countries).queries;
    pool.truncate(sizing.pool);
    let arrivals = ArrivalProcess::Poisson { rate: sizing.rate };
    let cfg = SimConfig {
        ticks: sizing.ticks,
        seed,
        workers: sizing.workers,
        algorithm: algorithm.clone(),
        demand_window: 2048,
        repricing_mode: RepricingMode::Incremental,
        telemetry: TelemetrySink::default(),
    };

    // Crash-recovery harness: `--kill-after N[,N2,...]` kills the durable
    // server after N dispatched requests (per offset, per shard count),
    // recovers it from `--data-dir`, and demands bit-identical revenue
    // against the uninterrupted in-process run. No benchmark artifact —
    // this mode is a correctness gate.
    if let Some(kill_list) = arg_value(&args, "--kill-after") {
        let offsets: Vec<u64> = kill_list
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect();
        assert!(!offsets.is_empty(), "--kill-after parsed to nothing");
        let data_dir = arg_value(&args, "--data-dir")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("qp-crash-{}", std::process::id()))
            });
        let snapshot_every: u64 = arg_value(&args, "--snapshot-every")
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SNAPSHOT_EVERY);
        println!(
            "crash harness: kill offsets {:?}, data dir {}, snapshot every {snapshot_every}",
            offsets,
            data_dir.display()
        );
        let mut runs = 0usize;
        for &shards in &sizing.shard_counts {
            for &kill in &offsets {
                let (report, baseline) = run_crash_one(
                    &db,
                    &pool,
                    &sizing,
                    shards,
                    &algorithm,
                    seed,
                    &arrivals,
                    &cfg,
                    &data_dir,
                    kill,
                    snapshot_every,
                );
                let revenue = report.total_revenue();
                let baseline_revenue = baseline.total_revenue();
                let identical = revenue.to_bits() == baseline_revenue.to_bits()
                    && report.sales() == baseline.sales()
                    && report.declines() == baseline.declines();
                println!(
                    "  shards {:>2}  kill@{:>4}: revenue {:.2} ({} sales) vs uninterrupted \
                     {:.2} ({} sales) — {}",
                    shards,
                    kill,
                    revenue,
                    report.sales(),
                    baseline_revenue,
                    baseline.sales(),
                    if identical {
                        "BIT-IDENTICAL"
                    } else {
                        "MISMATCH"
                    }
                );
                assert!(
                    identical,
                    "crash recovery diverged at {shards} shards, kill@{kill}: \
                     {revenue:.17} vs {baseline_revenue:.17}"
                );
                runs += 1;
            }
        }
        println!("crash harness: {runs} kill/recover runs, every one bit-identical");
        return;
    }

    let mut rows: Vec<String> = Vec::new();
    let mut merged_metrics = MetricsSnapshot::default();
    for &shards in &sizing.shard_counts {
        let r = run_one(
            &db, &pool, &sizing, shards, &algorithm, seed, &arrivals, &cfg, trace,
        );
        let revenue = r.report.total_revenue();
        let baseline_revenue = r.baseline.total_revenue();
        let deterministic = revenue.to_bits() == baseline_revenue.to_bits()
            && r.report.sales() == r.baseline.sales()
            && r.report.declines() == r.baseline.declines();
        let hit_rate = if r.cache_hits + r.cache_misses == 0 {
            0.0
        } else {
            r.cache_hits as f64 / (r.cache_hits + r.cache_misses) as f64
        };
        println!(
            "  shards {:>2}: {:>5} quotes  {:>8.0} q/s  p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms  \
             cache {:>5.1}%  revenue {:.2}  determinism {}",
            r.shards,
            r.report.quotes(),
            r.report.quotes_per_sec(),
            percentile_ms(&r.latencies_us, 50.0),
            percentile_ms(&r.latencies_us, 95.0),
            percentile_ms(&r.latencies_us, 99.0),
            100.0 * hit_rate,
            revenue,
            if deterministic { "OK" } else { "MISMATCH" }
        );
        assert!(
            deterministic,
            "revenue determinism check FAILED at {} shards: network {:.17} ({} sales) vs \
             in-process {:.17} ({} sales)",
            r.shards,
            revenue,
            r.report.sales(),
            baseline_revenue,
            r.baseline.sales()
        );

        let epochs: Vec<String> = r.final_epochs.iter().map(u64::to_string).collect();
        rows.push(format!(
            "{{\n      \"shards\": {},\n      \"ticks\": {},\n      \"quotes\": {},\n      \
             \"sales\": {},\n      \"declines\": {},\n      \"repricings\": {},\n      \
             \"throughput_qps\": {},\n      \"latency_ms\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}},\n      \
             \"cache_hits\": {},\n      \"cache_misses\": {},\n      \"cache_invalidations\": {},\n      \
             \"cache_hit_rate\": {},\n      \
             \"server_metrics\": {},\n      \
             \"final_epochs\": [{}],\n      \"revenue\": {},\n      \"revenue_bits\": {},\n      \
             \"baseline_revenue\": {},\n      \"baseline_revenue_bits\": {},\n      \
             \"determinism_ok\": {}\n    }}",
            r.shards,
            sizing.ticks,
            r.report.quotes(),
            r.report.sales(),
            r.report.declines(),
            r.report.repricings.len(),
            json_f64(r.report.quotes_per_sec()),
            json_f64(percentile_ms(&r.latencies_us, 50.0)),
            json_f64(percentile_ms(&r.latencies_us, 95.0)),
            json_f64(percentile_ms(&r.latencies_us, 99.0)),
            r.cache_hits,
            r.cache_misses,
            r.cache_invalidations,
            json_f64(hit_rate),
            server_metrics_json(&r.server_metrics),
            epochs.join(", "),
            json_f64(revenue),
            revenue.to_bits(),
            json_f64(baseline_revenue),
            baseline_revenue.to_bits(),
            deterministic
        ));
        merged_metrics.merge(&r.server_metrics);
    }

    let json = format!(
        "{{\n  \"benchmark\": \"qp_server\",\n  \"workload\": \"skewed\",\n  \"seed\": {},\n  \
         \"algorithm\": {:?},\n  \"workers\": {},\n  \"runs\": [\n    {}\n  ]\n}}\n",
        seed,
        algorithm,
        sizing.workers,
        rows.join(",\n    ")
    );
    std::fs::write(&out_path, json).expect("writing the benchmark artifact");
    println!(
        "wrote {out_path}: {} shard counts, every determinism check bit-exact",
        sizing.shard_counts.len()
    );

    // Prometheus-style exposition of the merged server registries, for
    // eyeballing or scraping-pipeline smoke tests.
    if let Some(prom_path) = arg_value(&args, "--metrics-out") {
        let text = qp_telemetry::expose::prometheus_text(&merged_metrics);
        std::fs::write(&prom_path, text).expect("writing the metrics exposition");
        println!("wrote {prom_path}: merged server METRICS in Prometheus text form");
    }
}
