//! A standalone quote server over a generated workload.
//!
//! Builds `--shards` identically-priced broker replicas for the world/
//! skewed workload, binds `--addr`, and serves until a `SHUTDOWN` frame
//! arrives (e.g. `QuoteClient::shutdown_server`) or the process is killed:
//!
//! ```bash
//! cargo run --release -p qp-server --bin serve -- --addr 127.0.0.1:7979 --shards 2
//! ```
//!
//! With `--data-dir DIR` the server is **durable**: every settle and
//! repricing is WAL-logged to `DIR` before it is acknowledged, snapshots
//! are written every `--snapshot-every` repricings (default 8), and on
//! startup any existing state in `DIR` is recovered — newest valid
//! snapshot plus WAL suffix — before the listener binds. `--fsync`
//! selects the flush policy (`always`, `never`, `group:<N>`; default
//! `group:32`). Kill the process mid-run and restart with the same
//! `--data-dir` and flags: every acknowledged sale survives.
//!
//! Telemetry is always on: clients can pull the live registry with a
//! `METRICS` frame, and `--metrics-dump` additionally prints the final
//! registry as Prometheus text on shutdown.

use std::sync::Arc;

use qp_market::{Broker, SupportConfig};
use qp_server::{
    FlightRecorder, QuoteServer, ShardSet, DEFAULT_CACHE_CAPACITY, DEFAULT_SNAPSHOT_EVERY,
};
use qp_store::{FileStore, FsyncPolicy, SharedStore};
use qp_telemetry::{FlightDump, TelemetrySink};
use qp_workloads::queries::skewed;
use qp_workloads::world::{self, WorldConfig};
use qp_workloads::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    for i in 0..args.len() {
        if args[i] == flag {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = args[i].strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7979".to_string());
    let shards: usize = arg_value(&args, "--shards")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let support: usize = arg_value(&args, "--support")
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let pool_size: usize = arg_value(&args, "--pool")
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let algorithm = arg_value(&args, "--algorithm").unwrap_or_else(|| "UIP".to_string());
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let metrics_dump = args.iter().any(|a| a == "--metrics-dump");
    let data_dir = arg_value(&args, "--data-dir");
    let fsync = arg_value(&args, "--fsync")
        .map(|s| {
            FsyncPolicy::parse(&s)
                .unwrap_or_else(|| panic!("bad --fsync {s:?} (always | never | group:<N>)"))
        })
        .unwrap_or_default();
    let snapshot_every: u64 = arg_value(&args, "--snapshot-every")
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SNAPSHOT_EVERY);
    assert!(shards > 0, "--shards must be positive");

    let world_cfg = WorldConfig::at_scale(Scale::Test);
    let db = world::generate(&world_cfg);
    let mut pool = skewed::workload(&db, world_cfg.countries).queries;
    pool.truncate(pool_size);
    println!(
        "serve: building {shards} {algorithm} shard(s), support {support}, {} anticipated queries",
        pool.len()
    );

    let telemetry = TelemetrySink::enabled();
    let brokers: Vec<Arc<Broker>> = (0..shards)
        .map(|_| {
            let mut rng = StdRng::seed_from_u64(seed);
            Arc::new(
                Broker::builder(db.clone())
                    .support_config(SupportConfig::with_size(support))
                    .algorithm(&algorithm)
                    .anticipate_all(pool.iter().map(|q| (q.clone(), rng.gen_range(1.0..=50.0))))
                    .telemetry(telemetry.clone())
                    .build()
                    .unwrap_or_else(|e| panic!("broker build failed: {e}")),
            )
        })
        .collect();

    let (shard_set, recorder) = if let Some(dir) = &data_dir {
        // A previous crash leaves `flight.dump` in the data directory:
        // report its black-box summary (the dump stays on disk for
        // `qp_top --postmortem` until the next crash overwrites it).
        match FlightDump::read_from(dir.as_ref()) {
            Ok(Some(dump)) => println!(
                "previous crash: {} (wal_seq {}, {} proto events, {} root spans{})",
                dump.reason,
                dump.wal_seq,
                dump.protocol_events.len(),
                dump.roots.len(),
                if dump.truncated { ", tail torn" } else { "" }
            ),
            Ok(None) => {}
            Err(e) => println!("unreadable flight dump in {dir}: {e}"),
        }
        // Durable mode: recovery first (a fresh directory recovers to the
        // brokers' own initial state), then keep logging into the same
        // store. Recovery must finish before the listener binds so no
        // client ever sees pre-recovery state.
        let store: SharedStore = Arc::new(
            FileStore::open_with(dir, fsync, &telemetry)
                .unwrap_or_else(|e| panic!("opening data dir {dir}: {e}")),
        );
        let recorder =
            FlightRecorder::new(dir.clone(), telemetry.clone(), Some(Arc::clone(&store)));
        // Any panic from here on writes the flight dump before unwinding.
        FlightRecorder::install_panic_hook(&recorder);
        let (set, state) =
            ShardSet::restore(brokers, DEFAULT_CACHE_CAPACITY, store, snapshot_every)
                .unwrap_or_else(|e| panic!("recovering {dir}: {e}"));
        // `+ 0.0` only normalizes an empty ledger's -0.0 for display.
        println!(
            "recovered {dir}: epoch {}, {} sales / {} declines, revenue {:.2}",
            state.epoch,
            state.sales(),
            state.declines(),
            state.revenue() + 0.0
        );
        (set.with_telemetry(telemetry.clone()), Some(recorder))
    } else {
        (
            ShardSet::new(brokers).with_telemetry(telemetry.clone()),
            None,
        )
    };
    let mut server = QuoteServer::bind_with_options(addr.as_str(), shard_set, None, recorder)
        .unwrap_or_else(|e| panic!("binding {addr}: {e}"));
    println!(
        "serving on {} — send a SHUTDOWN frame to stop",
        server.local_addr()
    );
    server.wait();
    // Parting snapshot (no-op without a store): the next recovery replays
    // an empty WAL suffix instead of everything since the last cadence.
    server.shards().snapshot_now();
    if metrics_dump {
        print!(
            "{}",
            qp_telemetry::expose::prometheus_text(&telemetry.snapshot())
        );
    }
    println!("shut down");
}
