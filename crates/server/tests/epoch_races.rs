//! Cache-vs-repricing race tests.
//!
//! The serving layer's core safety claim: **no stale quote is ever
//! served**. Precisely — every served quote carries a `(price, epoch)`
//! pair, and the price must be exactly what the pricing installed at that
//! epoch assigns the bundle, no matter how quoting races with repricing.
//!
//! The tests encode the epoch *into* the price: the repricer's `k`-th patch
//! installs `UniformBundle { price: BASE + k }`, and every patch bumps the
//! epoch by exactly 1. A served quote `(price, epoch)` is then consistent
//! iff `price - BASE == epoch - epoch₀`. Any cache bug — serving an entry
//! after its epoch was bumped, or tagging a price with the wrong epoch —
//! breaks the equation.
//!
//! Run once against the in-process [`ShardSet`] (maximum race pressure, no
//! syscall pacing) and once over real TCP through the full server stack.
//! A third test covers the same invariant by **enumeration** instead of
//! sampling: a bounded `qp-verify` model of the shard-cache protocol,
//! checked over every explored thread interleaving (see
//! `no_stale_quote_holds_under_exhaustive_interleaving`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use qp_core::ItemSet;
use qp_market::{Broker, SupportConfig};
use qp_pricing::algorithms::PricingPatch;
use qp_qdb::{ColumnType, Database, Query, Relation, Schema, Value};
use qp_server::{QuoteClient, QuoteServer, SettleOutcome, ShardSet};

const BASE: f64 = 10_000.0;
const REPRICINGS: u64 = 300;

fn tiny_broker() -> Arc<Broker> {
    let mut rel = Relation::new(Schema::new(vec![
        ("name", ColumnType::Str),
        ("size", ColumnType::Int),
    ]));
    for i in 0..10 {
        rel.push(vec![format!("row{i}").into(), Value::Int(i)])
            .unwrap();
    }
    let mut db = Database::new();
    db.add_table("T", rel);
    Arc::new(
        Broker::builder(db)
            .support_config(SupportConfig::with_size(40))
            .algorithm("UBP")
            .anticipate(Query::scan("T"), 30.0)
            .build()
            .expect("UBP is registered"),
    )
}

/// A small pool of bundles so quoters revisit them and the cache actually
/// serves hits under the races.
fn bundle_pool() -> Vec<ItemSet> {
    (0..8usize)
        .map(|i| [i, i + 5, 2 * i + 11].as_slice().into())
        .collect()
}

/// `price == BASE + (epoch - epoch0)` — the consistency equation.
fn assert_consistent(price: f64, epoch: u64, epoch0: u64, context: &str) {
    let step = (epoch - epoch0) as f64;
    assert_eq!(
        price.to_bits(),
        (BASE + step).to_bits(),
        "{context}: price {price} does not match the pricing installed at epoch {epoch} \
         (epoch0 {epoch0}) — a stale or mistagged quote was served"
    );
}

#[test]
fn concurrent_quoters_never_see_a_stale_price_in_process() {
    let set = ShardSet::new(vec![tiny_broker(), tiny_broker()]);
    // Step 0 installs BASE on every shard; per-shard epochs now agree.
    set.apply_patch(&PricingPatch::SetUniformPrice(BASE));
    let epoch0 = set.broker(0).pricing_epoch();
    assert_eq!(epoch0, set.broker(1).pricing_epoch());

    let stop = AtomicBool::new(false);
    let progress = AtomicU64::new(0);
    let pool = bundle_pool();

    let mut repricings = 0u64;
    std::thread::scope(|scope| {
        let quoters: Vec<_> = (0..4)
            .map(|t| {
                let set = &set;
                let stop = &stop;
                let progress = &progress;
                let pool = &pool;
                scope.spawn(move || {
                    let mut quotes = 0u64;
                    let mut hits = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let bundle = &pool[(t + quotes as usize) % pool.len()];
                        let q = set.quote(bundle);
                        assert_consistent(q.price, q.epoch, epoch0, "in-process quoter");
                        // The settlement must honor the quoted price even
                        // though the repricer keeps moving the pricing.
                        let SettleOutcome::Settled { sold, price } =
                            set.settle(q.quote_id, q.price, 0)
                        else {
                            panic!("pending quote must settle");
                        };
                        assert!(sold, "budget == quoted price always sells");
                        assert_eq!(price.to_bits(), q.price.to_bits());
                        quotes += 1;
                        hits += u64::from(q.cache_hit);
                        progress.fetch_add(1, Ordering::Relaxed);
                    }
                    (quotes, hits)
                })
            })
            .collect();

        // Keep repricing until the quoters have raced us a meaningful
        // number of times — a fixed patch count could finish before the
        // quoter threads are even scheduled on a loaded single-core box.
        while repricings < REPRICINGS || progress.load(Ordering::Relaxed) < 50 {
            repricings += 1;
            set.apply_patch(&PricingPatch::SetUniformPrice(BASE + repricings as f64));
        }
        stop.store(true, Ordering::Relaxed);
        let (quotes, hits): (u64, u64) = quoters
            .into_iter()
            .map(|h| h.join().expect("quoter must not panic"))
            .fold((0, 0), |(q, h), (dq, dh)| (q + dq, h + dh));
        assert!(quotes >= 50, "quoters never ran");
        // Not asserting a hit *rate* (timing-dependent), but the machinery
        // must have exercised both paths across the run.
        assert!(hits < quotes, "every quote a hit is impossible from cold");
    });

    // Quiescent end state: epochs in lockstep, caches consistent again.
    for shard in 0..set.num_shards() {
        assert_eq!(set.broker(shard).pricing_epoch(), epoch0 + repricings);
    }
    for bundle in &pool {
        let q = set.quote(bundle);
        assert_consistent(q.price, q.epoch, epoch0, "quiescent");
        assert_eq!(q.epoch, epoch0 + repricings);
    }
}

#[test]
fn concurrent_quoters_never_see_a_stale_price_over_tcp() {
    let set = ShardSet::new(vec![tiny_broker(), tiny_broker()]);
    set.apply_patch(&PricingPatch::SetUniformPrice(BASE));
    let epoch0 = set.broker(0).pricing_epoch();
    let mut server = QuoteServer::bind("127.0.0.1:0", set).expect("bind loopback");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let progress = Arc::new(AtomicU64::new(0));
    let pool = bundle_pool();

    let quoters: Vec<_> = (0..3)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let progress = Arc::clone(&progress);
            let pool = pool.clone();
            std::thread::spawn(move || {
                let mut client = QuoteClient::connect(addr).expect("connect");
                let mut quotes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let bundle = &pool[(t + quotes as usize) % pool.len()];
                    let q = client.quote(bundle).expect("quote");
                    assert_consistent(q.price, q.epoch, epoch0, "tcp quoter");
                    let (sold, price) = client
                        .purchase(q.quote_id, q.price, quotes)
                        .expect("purchase");
                    assert!(sold);
                    assert_eq!(price.to_bits(), q.price.to_bits());
                    quotes += 1;
                    progress.fetch_add(1, Ordering::Relaxed);
                }
                quotes
            })
        })
        .collect();

    // The repricer is just another client racing the quoters over TCP,
    // repricing until the quoters have completed enough round trips that
    // the two traffic streams genuinely interleaved.
    let mut admin = QuoteClient::connect(addr).expect("admin connect");
    let mut repricings = 0u64;
    while repricings < 100 || progress.load(Ordering::Relaxed) < 30 {
        repricings += 1;
        let epochs = admin
            .reprice(&PricingPatch::SetUniformPrice(BASE + repricings as f64))
            .expect("reprice");
        assert_eq!(epochs, vec![epoch0 + repricings, epoch0 + repricings]);
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = quoters.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total >= 30, "quoters never completed a round trip");

    // Every settlement was at the quoted price with budget == price, so
    // the shard ledgers must account one sale per quote and the final
    // stats must reflect the last installed pricing.
    let stats = admin.stats().expect("stats");
    assert_eq!(stats.iter().map(|s| s.sales).sum::<u64>(), total);
    assert_eq!(stats.iter().map(|s| s.declines).sum::<u64>(), 0);
    for s in &stats {
        assert_eq!(s.epoch, epoch0 + repricings);
    }
    let mut probe = QuoteClient::connect(addr).expect("probe connect");
    let q = probe.quote(&pool[0]).expect("final quote");
    assert_consistent(q.price, q.epoch, epoch0, "final probe");

    drop((admin, probe));
    server.shutdown();
}

/// The in-process stress case above, ported to a bounded `qp-verify`
/// model: the same epoch-encoded-in-price trick, the same
/// quote-cache/repricer choreography as `ShardSet::quote` +
/// `Broker::apply_delta`, but with the scheduler *enumerating*
/// interleavings rather than sampling them. The stress test covers depth
/// (hundreds of repricings against the real stack); this covers breadth
/// (every schedule the budget reaches, ≥ 1,000 of them).
#[test]
fn no_stale_quote_holds_under_exhaustive_interleaving() {
    use qp_verify::sync::{
        AtomicU64 as ModelAtomicU64, Mutex as ModelMutex, RwLock as ModelRwLock,
    };
    use qp_verify::{explore, Config};

    const MODEL_BASE: u64 = 10_000;

    let report = explore(&Config::with_max_schedules(1_500), || {
        // Pricing state: the price encodes the epoch (price - BASE ==
        // epoch), mirroring the stress tests' consistency equation.
        let pricing = Arc::new(ModelRwLock::new(MODEL_BASE));
        let epoch = Arc::new(ModelAtomicU64::new(0));
        // One cache slot, like one ShardSet cache entry: (price, epoch).
        let cache = Arc::new(ModelMutex::new(None::<(u64, u64)>));

        let mut handles = Vec::new();
        {
            // The repricer: apply_delta's discipline — price moves and
            // epoch bump both inside the write-lock critical section.
            let pricing = Arc::clone(&pricing);
            let epoch = Arc::clone(&epoch);
            handles.push(qp_verify::thread::spawn(move || {
                for _ in 0..2 {
                    let mut p = pricing.write();
                    *p += 1;
                    epoch.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for _ in 0..2 {
            // Quoters: ShardSet::quote's discipline — serve a cached pair
            // only when its tag matches the epoch observed at request
            // start; fill misses from a versioned_price-style snapshot
            // (epoch read under the read lock), keeping the newest epoch.
            let pricing = Arc::clone(&pricing);
            let epoch = Arc::clone(&epoch);
            let cache = Arc::clone(&cache);
            handles.push(qp_verify::thread::spawn(move || {
                for _ in 0..2 {
                    let seen = epoch.load(Ordering::SeqCst);
                    let hit = match *cache.lock() {
                        Some((p, e)) if e == seen => Some((p, e)),
                        _ => None,
                    };
                    let (price, at) = match hit {
                        Some(pair) => pair,
                        None => {
                            let snap = {
                                let p = pricing.read();
                                (*p, epoch.load(Ordering::SeqCst))
                            };
                            let mut c = cache.lock();
                            if c.is_none_or(|(_, e)| e < snap.1) {
                                *c = Some(snap);
                            }
                            snap
                        }
                    };
                    assert!(
                        price == MODEL_BASE + at,
                        "stale quote: price {price} tagged epoch {at}"
                    );
                }
            }));
        }
        for h in handles {
            h.join().expect("model thread");
        }
    });

    assert!(
        report.failure.is_none(),
        "no-stale-quote violated: {}",
        report.failure.unwrap()
    );
    assert!(
        report.schedules >= 1_000,
        "only {} interleavings explored",
        report.schedules
    );
}
