//! Wire-level distributed tracing and crash flight recorder, end to end.
//!
//! Three layers under test over real TCP:
//!
//! 1. **Trace-context propagation** — a client-side `client.settle` root
//!    span and the server's `server.request` root span must end up as
//!    exemplars sharing the trace id the `TRACED` envelope carried, with
//!    the serving shard stamped into the server-side span events; the
//!    `TRACE` frame must return the server half by id.
//! 2. **Protocol compatibility** — a proptest pinning that pre-trace
//!    frames are byte-identical with tracing off, that the envelope is a
//!    pure 9-byte prefix over the inner frame, and that envelopes never
//!    nest.
//! 3. **Crash flight recorder** — killing a durable server via the crash
//!    switch must leave a parseable `flight.dump` whose WAL sequence
//!    matches the store's final (recoverable) sequence and whose protocol
//!    event ring saw the traffic.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use qp_core::ItemSet;
use qp_market::{Broker, SupportConfig};
use qp_qdb::{ColumnType, Database, Query, Relation, Schema, Value};
use qp_server::protocol::{Request, WireError};
use qp_server::server::FlightRecorder;
use qp_server::{CrashSwitch, QuoteClient, QuoteServer, ShardSet};
use qp_store::{FileStore, SharedStore};
use qp_telemetry::{FlightDump, TelemetrySink, NO_SHARD};

fn tiny_broker(telemetry: TelemetrySink) -> Arc<Broker> {
    let mut rel = Relation::new(Schema::new(vec![
        ("name", ColumnType::Str),
        ("size", ColumnType::Int),
    ]));
    for i in 0..10 {
        rel.push(vec![format!("row{i}").into(), Value::Int(i)])
            .unwrap();
    }
    let mut db = Database::new();
    db.add_table("T", rel);
    Arc::new(
        Broker::builder(db)
            .support_config(SupportConfig::with_size(40))
            .algorithm("UBP")
            .anticipate(Query::scan("T"), 30.0)
            .telemetry(telemetry)
            .build()
            .expect("UBP is registered"),
    )
}

#[test]
fn traced_settles_stitch_across_the_wire() {
    // Threshold 0: every root span becomes an exemplar on both sides.
    let server_sink = TelemetrySink::enabled();
    server_sink.set_slow_threshold(Duration::ZERO);
    let set = ShardSet::new(vec![
        tiny_broker(server_sink.clone()),
        tiny_broker(server_sink.clone()),
    ])
    .with_telemetry(server_sink.clone());
    let mut server = QuoteServer::bind("127.0.0.1:0", set).expect("bind loopback");
    let mut client = QuoteClient::connect(server.local_addr()).expect("connect");

    let client_sink = TelemetrySink::enabled();
    client_sink.set_slow_threshold(Duration::ZERO);
    let settle_span = client_sink.span_handle("client.settle");

    qp_telemetry::reset_thread_journal();
    let trace_id: u64 = 0x00AB_0000_0001;
    client.set_trace_id(trace_id);
    qp_telemetry::set_current_trace_id(trace_id);
    {
        let _root = settle_span.enter();
        let bundle: ItemSet = [0usize, 3].as_slice().into();
        let q = client.quote(&bundle).expect("quote");
        client.purchase(q.quote_id, 1e9, 1).expect("purchase");
    }

    // Client half: the settle root, stamped with the id.
    let client_exemplars = client_sink.snapshot().exemplars;
    assert!(
        client_exemplars
            .iter()
            .any(|e| e.root == "client.settle" && e.trace_id == trace_id),
        "client exemplars: {client_exemplars:?}"
    );

    // Server half over METRICS: one server.request root per frame (QUOTE
    // and PURCHASE), both under the same id, shard-tagged.
    client.set_trace_id(0);
    let server_exemplars = client.metrics().expect("metrics").exemplars;
    let stitched: Vec<_> = server_exemplars
        .iter()
        .filter(|e| e.root == "server.request" && e.trace_id == trace_id)
        .collect();
    assert!(
        stitched.len() >= 2,
        "server exemplars: {server_exemplars:?}"
    );
    assert!(
        stitched
            .iter()
            .all(|e| e.events.iter().any(|ev| ev.shard != NO_SHARD)),
        "stitched server spans lost the shard tag: {stitched:?}"
    );

    // The TRACE frame finds the same trees by id; an unknown id is empty.
    let looked_up = client.trace(trace_id).expect("TRACE frame");
    assert!(looked_up.iter().any(|e| e.root == "server.request"));
    assert!(looked_up.iter().all(|e| e.trace_id == trace_id));
    assert!(client.trace(0xDEAD_BEEF).expect("TRACE miss").is_empty());

    drop(client);
    server.shutdown();
}

#[test]
fn crash_switch_kill_writes_a_consistent_flight_dump() {
    let dir = std::env::temp_dir().join(format!("qp-flight-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let telemetry = TelemetrySink::enabled();
    let store: SharedStore = Arc::new(FileStore::open(&dir).expect("open data dir"));
    let recorder = FlightRecorder::new(&dir, telemetry.clone(), Some(Arc::clone(&store)));
    let set = ShardSet::new(vec![tiny_broker(telemetry.clone())])
        .with_store(Arc::clone(&store), 1_000_000)
        .with_telemetry(telemetry.clone());
    let crash = CrashSwitch::after(6);
    let mut server = QuoteServer::bind_with_options(
        "127.0.0.1:0",
        set,
        Some(crash.clone()),
        Some(Arc::clone(&recorder)),
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Drive settles (2 dispatches each) until the kill fires; every I/O
    // error is the crash surfacing as a dead connection.
    let bundle: ItemSet = [1usize, 4].as_slice().into();
    for tick in 0..50u64 {
        let Ok(mut client) = QuoteClient::connect(addr) else {
            break;
        };
        client.set_trace_id(0x7000 + tick);
        let settled = client
            .quote(&bundle)
            .and_then(|q| client.purchase(q.quote_id, 1e9, tick));
        if settled.is_err() && crash.crashed() {
            break;
        }
    }
    assert!(crash.crashed(), "the 6-dispatch budget never fired");
    server.quiesce();

    let dump = FlightDump::read_from(&dir)
        .expect("read flight dump")
        .expect("the crash fire site writes flight.dump");
    assert_eq!(dump.reason, "crash-switch kill");
    assert!(!dump.truncated, "clean kill, torn dump");
    // The dump froze the WAL at the instant of death; after quiesce the
    // store can never grow again, so the sequences must agree — this is
    // exactly the dump-vs-recovered-WAL consistency the harness asserts.
    assert_eq!(dump.wal_seq, store.wal_seq(), "dump wal_seq vs final WAL");
    assert!(
        !dump.protocol_events.is_empty(),
        "no protocol events despite 6 dispatches"
    );
    assert!(
        dump.protocol_events.iter().any(|e| e.trace_id >= 0x7000),
        "trace ids missing from the protocol event ring: {:?}",
        dump.protocol_events
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A generator over every untraced request shape the protocol ships.
fn arb_request() -> impl Strategy<Value = Request> {
    (
        0usize..6,
        proptest::collection::vec(0usize..512, 0..12),
        0u64..u64::MAX,
        -1e9f64..1e9,
        0u64..1_000_000,
    )
        .prop_map(|(shape, items, id, budget, tick)| match shape {
            0 => Request::Quote(items.as_slice().into()),
            1 => Request::Purchase {
                quote_id: id,
                budget,
                tick,
            },
            2 => Request::Stats,
            3 => Request::Shutdown,
            4 => Request::Metrics,
            _ => Request::Trace { trace_id: id },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The envelope is a pure 9-byte prefix: wrapping changes no inner
    /// byte, unwrapping recovers the request, and untraced frames never
    /// see the envelope opcode — old decoders keep working bit-for-bit.
    #[test]
    fn traced_envelope_is_a_transparent_prefix(
        request in arb_request(),
        trace_id in 1u64..u64::MAX,
    ) {
        let bare = request.encode();
        prop_assert_ne!(bare[0], 0x10, "untraced frames must not collide with TRACED");
        prop_assert_eq!(&Request::decode(&bare).unwrap(), &request);

        let wrapped = Request::Traced {
            trace_id,
            request: Box::new(request.clone()),
        };
        let bytes = wrapped.encode();
        prop_assert_eq!(bytes[0], 0x10);
        prop_assert_eq!(&bytes[1..9], &trace_id.to_be_bytes()[..]);
        prop_assert_eq!(&bytes[9..], &bare[..]);
        prop_assert_eq!(&Request::decode(&bytes).unwrap(), &wrapped);

        // One level only: a nested envelope is rejected, not recursed.
        let nested = Request::Traced {
            trace_id,
            request: Box::new(wrapped),
        };
        prop_assert_eq!(
            Request::decode(&nested.encode()),
            Err(WireError::UnknownOpcode(0x10))
        );
    }
}
