//! Log-bucketed latency histograms: power-of-two buckets, lock-free
//! recording, exact (bucketwise-additive, hence associative) merging, and
//! quantile estimation with error bounded by the width of the bucket the
//! true quantile falls in.
//!
//! Bucket layout: bucket 0 holds the value 0; bucket `i >= 1` holds the
//! values in `[2^(i-1), 2^i - 1]`. With 64-bit values that is
//! [`NUM_BUCKETS`] = 65 buckets total, so a full histogram is 65 `u64`
//! cells — small enough to snapshot, ship over the wire, and merge
//! bucketwise without approximation.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::atomic::{AtomicU64, Ordering};

/// Bucket count: one bucket for zero plus one per bit position of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// The bucket a value lands in: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` range of bucket `i`.
#[inline]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < NUM_BUCKETS);
    if i == 0 {
        (0, 0)
    } else if i == 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

/// The midpoint of bucket `i` — the value quantile estimates report.
#[inline]
pub fn bucket_midpoint(i: usize) -> u64 {
    let (lo, hi) = bucket_bounds(i);
    lo + (hi - lo) / 2
}

/// A plain (non-atomic) histogram: the snapshot read out of a live
/// [`Histogram`], the wire representation of the `METRICS` frame, and a
/// direct accumulator for single-threaded consumers (the simulator folds
/// per-tick latencies through one of these without touching an atomic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sum of all recorded values (saturating).
    pub sum: u64,
    /// Per-bucket observation counts.
    pub buckets: [u64; NUM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramSnapshot {
    /// An empty histogram.
    pub fn new() -> Self {
        HistogramSnapshot {
            sum: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&c| c == 0)
    }

    /// Bucketwise-additive merge. Exactly associative and commutative:
    /// merging shard snapshots in any grouping yields identical buckets.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
    }

    /// Bucketwise difference `self - earlier`: the observations recorded
    /// between the two snapshots of one cumulative histogram. Because
    /// every cell of a live histogram is monotone, the delta of a
    /// later-vs-earlier snapshot pair is itself a valid histogram, and
    /// deltas over adjacent snapshots merge back to the cumulative total —
    /// the identity the windowed-registry differential test checks.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::new();
        out.sum = self.sum.saturating_sub(earlier.sum);
        for (slot, (now, then)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(earlier.buckets.iter()))
        {
            *slot = now.saturating_sub(*then);
        }
        out
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), reported as the midpoint
    /// of the bucket holding the rank-`round(q * (count - 1))` value.
    ///
    /// The estimate is off from the exact order statistic by at most the
    /// width of that bucket — the bound the differential proptest checks.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (count - 1) as f64).round() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum > rank {
                return bucket_midpoint(i);
            }
        }
        bucket_midpoint(NUM_BUCKETS - 1)
    }

    /// The (p50, p95, p99) triple every exposition surface reports.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

/// The live, lock-free histogram core: one atomic cell per bucket plus a
/// saturation-free running sum. Recording is two relaxed `fetch_add`s;
/// reading is a bucket-by-bucket load into a [`HistogramSnapshot`].
#[derive(Debug)]
pub(crate) struct HistogramCore {
    sum: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    pub(crate) fn record(&self, value: u64) {
        // ordering: Relaxed — monotonic counters with no cross-cell
        // invariant; snapshots tolerate torn reads across buckets.
        self.sum.fetch_add(value, Ordering::Relaxed);
        // ordering: Relaxed — same monotonic-counter argument.
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::new();
        // ordering: Relaxed — the snapshot is a statistical read; each
        // cell is individually consistent and only ever increases.
        out.sum = self.sum.load(Ordering::Relaxed);
        for (cell, slot) in self.buckets.iter().zip(out.buckets.iter_mut()) {
            // ordering: Relaxed — see above.
            *slot = cell.load(Ordering::Relaxed);
        }
        out
    }
}

/// Handle to a registered histogram. `Disabled`-sink handles hold no core:
/// recording through them is a branch on `None` — no clock read, no
/// atomics, no allocation.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A no-op handle (what a `TelemetrySink::Disabled` hands out).
    pub fn disabled() -> Self {
        Histogram { core: None }
    }

    /// True when observations actually land somewhere.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Records one observation (no-op when disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.core {
            core.record(value);
        }
    }

    /// Starts a timer whose drop records the elapsed nanoseconds. On a
    /// disabled handle the guard is inert and the clock is never read.
    #[inline]
    pub fn start_timer(&self) -> HistogramTimer {
        HistogramTimer {
            inner: self
                .core
                .as_ref()
                .map(|core| (Arc::clone(core), Instant::now())),
        }
    }

    /// Reads the current contents (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.core {
            Some(core) => core.snapshot(),
            None => HistogramSnapshot::new(),
        }
    }
}

/// Drop guard recording elapsed wall time, in nanoseconds, into its
/// histogram.
#[derive(Debug)]
pub struct HistogramTimer {
    inner: Option<(Arc<HistogramCore>, Instant)>,
}

impl HistogramTimer {
    /// Records now instead of at scope exit.
    pub fn stop(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some((core, start)) = self.inner.take() {
            core.record(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    }
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64_without_gaps() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        let mut expected_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} starts at the wrong value");
            assert!(lo <= bucket_midpoint(i) && bucket_midpoint(i) <= hi);
            if i + 1 < NUM_BUCKETS {
                expected_lo = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn timer_records_into_its_core() {
        let core = Arc::new(HistogramCore::new());
        let h = Histogram {
            core: Some(Arc::clone(&core)),
        };
        h.start_timer().stop();
        drop(h.start_timer());
        assert_eq!(core.snapshot().count(), 2);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = Histogram::disabled();
        h.record(42);
        drop(h.start_timer());
        assert!(h.snapshot().is_empty());
        assert!(!h.is_enabled());
    }
}
