//! Rendering a [`MetricsSnapshot`] for humans and scrapers.
//!
//! Two surfaces, both deterministic (the snapshot is name-sorted):
//!
//! * [`prometheus_text`] — Prometheus exposition-format text: counters as
//!   `qp_<name>_total`, gauges as `qp_<name>`, histograms in the standard
//!   cumulative-`le` bucket form. Dotted metric names map to underscores
//!   (`cache.hit` → `qp_cache_hit_total`).
//! * [`json`] — a hand-rolled JSON object (this workspace carries no JSON
//!   dependency) with quantiles precomputed per histogram, ready to merge
//!   into the benchmark artifacts.

use crate::registry::MetricsSnapshot;

/// `cache.hit` → `qp_cache_hit`: the exposition name of a metric.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("qp_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the snapshot in Prometheus exposition format.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let prom = prom_name(name);
        out.push_str(&format!("# TYPE {prom}_total counter\n"));
        out.push_str(&format!("{prom}_total {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let prom = prom_name(name);
        out.push_str(&format!("# TYPE {prom} gauge\n"));
        out.push_str(&format!("{prom} {value}\n"));
    }
    for (name, hist) in &snapshot.histograms {
        let prom = prom_name(name);
        out.push_str(&format!("# TYPE {prom} histogram\n"));
        let mut cum = 0u64;
        let last_live = hist.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        for (i, &count) in hist.buckets.iter().enumerate().take(last_live + 1) {
            cum = cum.saturating_add(count);
            let (_, hi) = crate::histogram::bucket_bounds(i);
            out.push_str(&format!("{prom}_bucket{{le=\"{hi}\"}} {cum}\n"));
        }
        out.push_str(&format!("{prom}_bucket{{le=\"+Inf\"}} {}\n", hist.count()));
        out.push_str(&format!("{prom}_sum {}\n", hist.sum));
        out.push_str(&format!("{prom}_count {}\n", hist.count()));
        // Precomputed quantile estimates alongside the raw buckets, so a
        // scrape (or a human with grep) reads `wal.fsync` latency
        // quantiles without re-deriving them from the `le` series.
        let (p50, p95, p99) = hist.percentiles();
        out.push_str(&format!("# TYPE {prom}_p50 gauge\n{prom}_p50 {p50}\n"));
        out.push_str(&format!("# TYPE {prom}_p95 gauge\n{prom}_p95 {p95}\n"));
        out.push_str(&format!("# TYPE {prom}_p99 gauge\n{prom}_p99 {p99}\n"));
    }
    out
}

/// Minimal JSON string escaping (names are controlled identifiers, but
/// exemplar roots travel the wire — escape defensively).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the snapshot as a JSON object: counters and gauges as flat
/// maps, histograms with count/sum/mean and estimated p50/p95/p99,
/// exemplars as span-tree arrays.
pub fn json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{");

    out.push_str("\"counters\": {");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {value}", json_escape(name)));
    }
    out.push_str("}, \"gauges\": {");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {value}", json_escape(name)));
    }
    out.push_str("}, \"histograms\": {");
    for (i, (name, hist)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let (p50, p95, p99) = hist.percentiles();
        out.push_str(&format!(
            "\"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}}",
            json_escape(name),
            hist.count(),
            hist.sum,
            hist.mean(),
        ));
    }
    out.push_str("}, \"exemplars\": [");
    for (i, ex) in snapshot.exemplars.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"trace_id\": {}, \"root\": \"{}\", \"total_ns\": {}, \"events\": [",
            ex.trace_id,
            json_escape(&ex.root),
            ex.total_ns
        ));
        for (j, e) in ex.events.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            // NO_SHARD renders as -1 so joins against client logs can
            // filter on `shard >= 0`.
            let shard: i64 = if e.shard == crate::span::NO_SHARD {
                -1
            } else {
                i64::from(e.shard)
            };
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"depth\": {}, \"shard\": {shard}, \"start_ns\": {}, \"dur_ns\": {}}}",
                json_escape(&e.name),
                e.depth,
                e.start_ns,
                e.dur_ns
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetrySink;

    fn sample() -> MetricsSnapshot {
        let sink = TelemetrySink::enabled();
        sink.counter("cache.hit").add(7);
        sink.gauge("conn.open").set(-3);
        let h = sink.histogram("quote.ns");
        h.record(0);
        h.record(5);
        h.record(1000);
        sink.snapshot()
    }

    #[test]
    fn prometheus_text_has_the_standard_families() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE qp_cache_hit_total counter"));
        assert!(text.contains("qp_cache_hit_total 7"));
        assert!(text.contains("qp_conn_open -3"));
        assert!(text.contains("# TYPE qp_quote_ns histogram"));
        assert!(text.contains("qp_quote_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("qp_quote_ns_sum 1005"));
        assert!(text.contains("qp_quote_ns_count 3"));
        // Cumulative counts never decrease along the le series.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("qp_quote_ns_bucket")) {
            let v: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|s| s.parse().ok())
                .expect("bucket line ends in a count");
            assert!(v >= last, "non-cumulative bucket series: {line}");
            last = v;
        }
    }

    #[test]
    fn json_is_well_formed_enough_to_eyeball() {
        let j = json(&sample());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"cache.hit\": 7"));
        assert!(j.contains("\"conn.open\": -3"));
        assert!(j.contains("\"count\": 3"));
        assert!(j.contains("\"p99\":"));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces"
        );
    }

    #[test]
    fn names_are_sanitized_and_strings_escaped() {
        assert_eq!(prom_name("cache.hit"), "qp_cache_hit");
        assert_eq!(prom_name("a-b c"), "qp_a_b_c");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
