//! Rolling time-window aggregation over [`MetricsSnapshot`]s.
//!
//! The registry's counters and histograms are cumulative — great for
//! correctness (merges are exact, nothing is ever lost), useless for a
//! live dashboard, which wants *rates* and *p99 over the last ten
//! seconds*. This module derives windows from cumulative snapshots
//! instead of adding a second recording path: every cell of a live
//! registry is monotone, so the bucketwise/counter-wise difference of two
//! snapshots is exactly the set of observations recorded between them.
//!
//! [`snapshot_delta`] computes one such window; [`RollingWindows`] retains
//! the last `K` of them so `merged()` answers "what happened over the
//! last K polls" (e.g. 10 × 1s polls → p99-over-last-10s). The identity
//! `fold(merge, deltas) == cumulative` is tested differentially against
//! the live registry.
//!
//! Gauges are instantaneous, not cumulative: a window carries the
//! *current* gauge value, and merging windows keeps the newest.
//! Exemplars never enter windows.

use std::collections::VecDeque;

use crate::registry::MetricsSnapshot;

/// The observations recorded between `earlier` and `current` snapshots of
/// the *same* registry: counters subtract (saturating — a metric born
/// after `earlier` contributes its full total), histograms subtract
/// bucketwise, gauges carry `current`'s value, exemplars are dropped.
pub fn snapshot_delta(current: &MetricsSnapshot, earlier: &MetricsSnapshot) -> MetricsSnapshot {
    MetricsSnapshot {
        counters: current
            .counters
            .iter()
            .map(|(name, now)| {
                let then = earlier.counter(name).unwrap_or(0);
                (name.clone(), now.saturating_sub(then))
            })
            .collect(),
        gauges: current.gauges.clone(),
        histograms: current
            .histograms
            .iter()
            .map(|(name, now)| {
                let delta = match earlier.histogram(name) {
                    Some(then) => now.delta_since(then),
                    None => now.clone(),
                };
                (name.clone(), delta)
            })
            .collect(),
        exemplars: Vec::new(),
    }
}

/// A bounded deque of the most recent window deltas plus the snapshot
/// they are relative to. Feed it cumulative snapshots at a fixed poll
/// cadence; read back the latest window or the merge of all retained
/// windows.
#[derive(Debug, Clone)]
pub struct RollingWindows {
    /// Snapshot the next delta will be computed against.
    baseline: MetricsSnapshot,
    /// Retained windows, oldest first.
    windows: VecDeque<MetricsSnapshot>,
    /// How many windows to retain.
    capacity: usize,
}

impl RollingWindows {
    /// A tracker retaining the last `capacity` windows (at least 1).
    pub fn new(capacity: usize) -> Self {
        RollingWindows {
            baseline: MetricsSnapshot::default(),
            windows: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
        }
    }

    /// Ingests the next cumulative snapshot, appending (and returning a
    /// reference to) the window delta since the previous observation. The
    /// first observation's window is the whole cumulative history.
    pub fn observe(&mut self, current: MetricsSnapshot) -> &MetricsSnapshot {
        let delta = snapshot_delta(&current, &self.baseline);
        self.baseline = current;
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
        }
        self.windows.push_back(delta);
        self.windows.back().expect("just pushed")
    }

    /// The most recent window, if any observation has been made.
    pub fn latest(&self) -> Option<&MetricsSnapshot> {
        self.windows.back()
    }

    /// Number of windows currently retained.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True before the first observation.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Merge of every retained window — counters/histograms over the last
    /// `len()` polls (gauges keep the newest window's value, since a
    /// gauge window carries an instantaneous reading, not an increment).
    pub fn merged(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for window in &self.windows {
            out.merge(window);
        }
        // `merge` adds gauges; overwrite with the newest instantaneous
        // values instead.
        if let Some(latest) = self.windows.back() {
            out.gauges = latest.gauges.clone();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetrySink;

    #[test]
    fn delta_isolates_one_windows_traffic() {
        let sink = TelemetrySink::enabled();
        let c = sink.counter("w.req");
        let h = sink.histogram("w.lat");
        c.add(5);
        h.record(100);
        let first = sink.snapshot();
        c.add(3);
        h.record(7);
        h.record(9);
        let second = sink.snapshot();

        let delta = snapshot_delta(&second, &first);
        assert_eq!(delta.counter("w.req"), Some(3));
        let lat = delta.histogram("w.lat").expect("windowed histogram");
        assert_eq!(lat.count(), 2);
        assert_eq!(lat.sum, 16);
        assert!(delta.exemplars.is_empty());
    }

    #[test]
    fn windows_merge_back_to_the_cumulative_registry() {
        let sink = TelemetrySink::enabled();
        let c = sink.counter("w.req");
        let h = sink.histogram("w.lat");
        let mut rolling = RollingWindows::new(16);
        for round in 0..5u64 {
            c.add(round + 1);
            h.record(1 << round);
            rolling.observe(sink.snapshot());
        }
        let merged = rolling.merged();
        let cumulative = sink.snapshot();
        assert_eq!(merged.counter("w.req"), cumulative.counter("w.req"));
        assert_eq!(
            merged.histogram("w.lat").map(|h| h.buckets),
            cumulative.histogram("w.lat").map(|h| h.buckets)
        );
    }

    #[test]
    fn capacity_evicts_oldest_windows() {
        let sink = TelemetrySink::enabled();
        let c = sink.counter("w.req");
        let mut rolling = RollingWindows::new(2);
        for _ in 0..4 {
            c.add(10);
            rolling.observe(sink.snapshot());
        }
        assert_eq!(rolling.len(), 2);
        // Only the last two windows (10 each) remain.
        assert_eq!(rolling.merged().counter("w.req"), Some(20));
        assert_eq!(rolling.latest().and_then(|w| w.counter("w.req")), Some(10));
    }

    #[test]
    fn gauges_stay_instantaneous_through_merge() {
        let sink = TelemetrySink::enabled();
        let g = sink.gauge("w.depth");
        let mut rolling = RollingWindows::new(4);
        g.set(7);
        rolling.observe(sink.snapshot());
        g.set(3);
        rolling.observe(sink.snapshot());
        assert_eq!(rolling.merged().gauge("w.depth"), Some(3));
    }
}
