//! Crash flight recorder: a bounded dump of what the process was doing
//! when it died.
//!
//! The per-thread span journals, the registry, and the server's
//! last-N protocol events all evaporate in exactly the scenarios the
//! `--kill-after` crash harness exercises. A [`FlightDump`] freezes them
//! into one file (`flight.dump` in the server's `--data-dir`) written at
//! the kill site or from a panic hook, and read back by `serve` recovery
//! and `qp-top --postmortem`.
//!
//! ## On-disk format
//!
//! Little-endian, CRC-framed like the `qp-store` WAL (see `STORAGE.md`):
//!
//! ```text
//! [ 8B magic "QPFLT01\n" ]
//! [u32 len][u32 crc32][payload]      repeated; crc covers payload
//! ```
//!
//! Each payload starts with a one-byte section tag: `0x01` meta (reason
//! string + the WAL sequence number at dump time), `0x02` the full
//! [`MetricsSnapshot`], `0x03` the merged flight journal (recent root
//! span trees, decoded as [`Exemplar`]s), `0x04` the last-N protocol
//! events. A decoder stops at the first frame whose length, CRC, or body
//! fails — everything before it is still returned, so a torn tail or a
//! bit flip yields a *partial but parseable* dump, never a lost one.
//! Unknown section tags are skipped for forward compatibility.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use qp_core::codec::{crc32, put_u32, put_u64, ByteReader, CodecError};

use crate::histogram::{HistogramSnapshot, NUM_BUCKETS};
use crate::registry::MetricsSnapshot;
use crate::span::{Exemplar, FlightRoot, SpanRecord};

/// File name of the dump inside a data directory.
pub const FLIGHT_FILE_NAME: &str = "flight.dump";

/// Magic prefix of a flight dump file.
pub const FLIGHT_MAGIC: &[u8; 8] = b"QPFLT01\n";

/// Largest section frame a reader will accept (matches the store's
/// sanity bound philosophy: corrupt lengths become errors, not OOMs).
const MAX_SECTION: usize = 1 << 24;

const SECTION_META: u8 = 0x01;
const SECTION_SNAPSHOT: u8 = 0x02;
const SECTION_SPANS: u8 = 0x03;
const SECTION_PROTO: u8 = 0x04;

/// One protocol-level event as retained by the server's event ring:
/// which opcode arrived, the trace id it carried (0 = untraced), and the
/// frame's payload length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolEvent {
    /// Wire opcode of the request frame.
    pub opcode: u8,
    /// Trace id carried by the frame (0 when untraced).
    pub trace_id: u64,
    /// Payload length of the frame in bytes.
    pub frame_len: u32,
}

/// A decoded (or about-to-be-written) flight recorder dump.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightDump {
    /// Why the dump was written (`"crash-switch kill"`, `"panic: …"`).
    pub reason: String,
    /// WAL sequence number of the durable store at dump time (0 when the
    /// server ran without a store).
    pub wal_seq: u64,
    /// Full registry snapshot at dump time.
    pub snapshot: MetricsSnapshot,
    /// Recent completed root span trees from the flight journal, oldest
    /// first, owned (`Exemplar`-shaped) so they survive the process.
    pub roots: Vec<Exemplar>,
    /// Last-N protocol events, oldest first.
    pub protocol_events: Vec<ProtocolEvent>,
    /// Set by [`FlightDump::decode`] when the byte stream ended at a
    /// torn or corrupt frame: the sections before it are intact, the
    /// tail is lost.
    pub truncated: bool,
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn take_str(r: &mut ByteReader<'_>) -> Result<String, CodecError> {
    let len = r.u32()? as usize;
    if len > MAX_SECTION {
        return Err(CodecError::BadLength(len as u64));
    }
    let bytes = r.take(len)?;
    // A diagnostic dump should surface mojibake, not refuse to parse.
    Ok(String::from_utf8_lossy(bytes).into_owned())
}

fn put_span_record(
    buf: &mut Vec<u8>,
    name: &str,
    depth: u32,
    shard: u32,
    start_ns: u64,
    dur_ns: u64,
) {
    put_str(buf, name);
    put_u32(buf, depth);
    put_u32(buf, shard);
    put_u64(buf, start_ns);
    put_u64(buf, dur_ns);
}

fn take_span_record(r: &mut ByteReader<'_>) -> Result<SpanRecord, CodecError> {
    Ok(SpanRecord {
        name: take_str(r)?,
        depth: r.u32()?,
        shard: r.u32()?,
        start_ns: r.u64()?,
        dur_ns: r.u64()?,
    })
}

/// Minimum encoded footprint of one span record (empty name).
const MIN_SPAN_BYTES: usize = 4 + 4 + 4 + 8 + 8;

fn put_tree(buf: &mut Vec<u8>, trace_id: u64, root: &str, total_ns: u64, events_len: usize) {
    put_u64(buf, trace_id);
    put_str(buf, root);
    put_u64(buf, total_ns);
    put_u64(buf, events_len as u64);
}

fn take_tree(r: &mut ByteReader<'_>) -> Result<Exemplar, CodecError> {
    let trace_id = r.u64()?;
    let root = take_str(r)?;
    let total_ns = r.u64()?;
    let nevents = r.checked_count(MIN_SPAN_BYTES)?;
    let mut events = Vec::with_capacity(nevents);
    for _ in 0..nevents {
        events.push(take_span_record(r)?);
    }
    Ok(Exemplar {
        trace_id,
        root,
        total_ns,
        events,
    })
}

fn encode_snapshot(snapshot: &MetricsSnapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, snapshot.counters.len() as u64);
    for (name, value) in &snapshot.counters {
        put_str(&mut buf, name);
        put_u64(&mut buf, *value);
    }
    put_u64(&mut buf, snapshot.gauges.len() as u64);
    for (name, value) in &snapshot.gauges {
        put_str(&mut buf, name);
        put_u64(&mut buf, *value as u64);
    }
    put_u64(&mut buf, snapshot.histograms.len() as u64);
    for (name, hist) in &snapshot.histograms {
        put_str(&mut buf, name);
        put_u64(&mut buf, hist.sum);
        for bucket in hist.buckets.iter() {
            put_u64(&mut buf, *bucket);
        }
    }
    put_u64(&mut buf, snapshot.exemplars.len() as u64);
    for ex in &snapshot.exemplars {
        put_tree(
            &mut buf,
            ex.trace_id,
            &ex.root,
            ex.total_ns,
            ex.events.len(),
        );
        for e in &ex.events {
            put_span_record(&mut buf, &e.name, e.depth, e.shard, e.start_ns, e.dur_ns);
        }
    }
    buf
}

fn decode_snapshot(r: &mut ByteReader<'_>) -> Result<MetricsSnapshot, CodecError> {
    let mut snapshot = MetricsSnapshot::default();
    let ncounters = r.checked_count(12)?;
    for _ in 0..ncounters {
        let name = take_str(r)?;
        snapshot.counters.push((name, r.u64()?));
    }
    let ngauges = r.checked_count(12)?;
    for _ in 0..ngauges {
        let name = take_str(r)?;
        snapshot.gauges.push((name, r.u64()? as i64));
    }
    let nhists = r.checked_count(4 + 8 + 8 * NUM_BUCKETS)?;
    for _ in 0..nhists {
        let name = take_str(r)?;
        let mut hist = HistogramSnapshot::new();
        hist.sum = r.u64()?;
        for bucket in hist.buckets.iter_mut() {
            *bucket = r.u64()?;
        }
        snapshot.histograms.push((name, hist));
    }
    let nexemplars = r.checked_count(8 + 4 + 8 + 8)?;
    for _ in 0..nexemplars {
        snapshot.exemplars.push(take_tree(r)?);
    }
    Ok(snapshot)
}

fn frame(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

impl FlightDump {
    /// Assembles a dump from live state: the registry snapshot, the
    /// flight journal, and the server's protocol-event ring.
    pub fn capture(
        reason: &str,
        wal_seq: u64,
        snapshot: MetricsSnapshot,
        roots: Vec<FlightRoot>,
        protocol_events: Vec<ProtocolEvent>,
    ) -> Self {
        FlightDump {
            reason: reason.to_string(),
            wal_seq,
            snapshot,
            roots: roots
                .into_iter()
                .map(|root| Exemplar {
                    trace_id: root.trace_id,
                    root: root.root.to_string(),
                    total_ns: root.total_ns,
                    events: root
                        .events
                        .iter()
                        .map(|e| SpanRecord {
                            name: e.name.to_string(),
                            depth: u32::from(e.depth),
                            shard: e.shard,
                            start_ns: e.start_ns,
                            dur_ns: e.dur_ns,
                        })
                        .collect(),
                })
                .collect(),
            protocol_events,
            truncated: false,
        }
    }

    /// Encodes the dump: magic followed by one CRC frame per section.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(FLIGHT_MAGIC);

        let mut meta = vec![SECTION_META];
        put_str(&mut meta, &self.reason);
        put_u64(&mut meta, self.wal_seq);
        frame(&mut out, &meta);

        let mut snap = vec![SECTION_SNAPSHOT];
        snap.extend_from_slice(&encode_snapshot(&self.snapshot));
        frame(&mut out, &snap);

        let mut spans = vec![SECTION_SPANS];
        put_u64(&mut spans, self.roots.len() as u64);
        for root in &self.roots {
            put_tree(
                &mut spans,
                root.trace_id,
                &root.root,
                root.total_ns,
                root.events.len(),
            );
            for e in &root.events {
                put_span_record(&mut spans, &e.name, e.depth, e.shard, e.start_ns, e.dur_ns);
            }
        }
        frame(&mut out, &spans);

        let mut proto = vec![SECTION_PROTO];
        put_u64(&mut proto, self.protocol_events.len() as u64);
        for event in &self.protocol_events {
            proto.push(event.opcode);
            put_u64(&mut proto, event.trace_id);
            put_u32(&mut proto, event.frame_len);
        }
        frame(&mut out, &proto);
        out
    }

    /// Decodes a dump. Fails only when the magic is wrong — a corrupt or
    /// torn section stops the scan and sets [`truncated`](Self::truncated),
    /// returning every section that survived intact.
    pub fn decode(bytes: &[u8]) -> Result<FlightDump, CodecError> {
        if bytes.len() < FLIGHT_MAGIC.len() || &bytes[..FLIGHT_MAGIC.len()] != FLIGHT_MAGIC {
            return Err(CodecError::BadTag(*bytes.first().unwrap_or(&0)));
        }
        let mut dump = FlightDump::default();
        let mut pos = FLIGHT_MAGIC.len();
        loop {
            let rest = &bytes[pos..];
            if rest.is_empty() {
                break;
            }
            if rest.len() < 8 {
                dump.truncated = true;
                break;
            }
            let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
            if len > MAX_SECTION || rest.len() < 8 + len {
                dump.truncated = true;
                break;
            }
            let payload = &rest[8..8 + len];
            if crc32(payload) != crc || payload.is_empty() {
                dump.truncated = true;
                break;
            }
            let mut r = ByteReader::new(&payload[1..]);
            let parsed = match payload[0] {
                SECTION_META => (|| {
                    dump.reason = take_str(&mut r)?;
                    dump.wal_seq = r.u64()?;
                    r.finish()
                })(),
                SECTION_SNAPSHOT => (|| {
                    dump.snapshot = decode_snapshot(&mut r)?;
                    r.finish()
                })(),
                SECTION_SPANS => (|| {
                    let nroots = r.checked_count(8 + 4 + 8 + 8)?;
                    for _ in 0..nroots {
                        dump.roots.push(take_tree(&mut r)?);
                    }
                    r.finish()
                })(),
                SECTION_PROTO => (|| {
                    let nevents = r.checked_count(1 + 8 + 4)?;
                    for _ in 0..nevents {
                        dump.protocol_events.push(ProtocolEvent {
                            opcode: r.u8()?,
                            trace_id: r.u64()?,
                            frame_len: r.u32()?,
                        });
                    }
                    r.finish()
                })(),
                // Unknown section: skip it (forward compatibility).
                _ => Ok(()),
            };
            if parsed.is_err() {
                dump.truncated = true;
                break;
            }
            pos += 8 + len;
        }
        Ok(dump)
    }

    /// Writes the encoded dump to `dir/flight.dump`, synced, overwriting
    /// any previous dump. Called from crash paths — must not panic.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(FLIGHT_FILE_NAME);
        let mut file = std::fs::File::create(&path)?;
        file.write_all(&self.encode())?;
        file.sync_data()?;
        Ok(path)
    }

    /// Reads `dir/flight.dump`; `Ok(None)` when no dump exists.
    pub fn read_from(dir: &Path) -> io::Result<Option<FlightDump>> {
        let path = dir.join(FLIGHT_FILE_NAME);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        FlightDump::decode(&bytes)
            .map(Some)
            .map_err(|e| io::Error::other(format!("corrupt flight dump {path:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::NO_SHARD;
    use crate::TelemetrySink;

    fn sample_dump() -> FlightDump {
        let sink = TelemetrySink::enabled();
        sink.counter("f.requests").add(41);
        sink.gauge("f.depth").set(-2);
        sink.histogram("f.lat").record(1000);
        crate::span::set_current_trace_id(0xABCD);
        drop(sink.span("f.request"));
        let roots = sink.flight_roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].trace_id, 0xABCD);
        FlightDump::capture(
            "unit test",
            17,
            sink.snapshot(),
            roots,
            vec![
                ProtocolEvent {
                    opcode: 0x01,
                    trace_id: 0xABCD,
                    frame_len: 32,
                },
                ProtocolEvent {
                    opcode: 0x02,
                    trace_id: 0,
                    frame_len: 16,
                },
            ],
        )
    }

    #[test]
    fn dump_round_trips_bit_exactly() {
        let dump = sample_dump();
        let decoded = FlightDump::decode(&dump.encode()).expect("valid dump decodes");
        assert_eq!(decoded, dump);
        assert!(!decoded.truncated);
        assert_eq!(decoded.wal_seq, 17);
        assert_eq!(decoded.reason, "unit test");
        assert_eq!(decoded.roots[0].root, "f.request");
        assert_eq!(decoded.roots[0].events[0].shard, NO_SHARD);
        assert_eq!(decoded.snapshot.counter("f.requests"), Some(41));
        assert_eq!(decoded.protocol_events.len(), 2);
    }

    #[test]
    fn torn_tail_yields_a_partial_dump() {
        let bytes = sample_dump().encode();
        // Chop mid-way through the final (protocol events) section.
        let decoded = FlightDump::decode(&bytes[..bytes.len() - 5]).expect("magic intact");
        assert!(decoded.truncated);
        assert_eq!(decoded.reason, "unit test");
        assert_eq!(decoded.wal_seq, 17);
        assert!(!decoded.roots.is_empty());
        assert!(decoded.protocol_events.is_empty(), "torn section dropped");
    }

    #[test]
    fn bit_flip_stops_the_scan_at_the_bad_frame() {
        let dump = sample_dump();
        let clean = dump.encode();
        // Flip one bit inside the snapshot section's payload (section 2 —
        // after magic + meta frame).
        let meta_len = u32::from_le_bytes([clean[8], clean[9], clean[10], clean[11]]) as usize;
        let flip_at = 8 + 8 + meta_len + 8 + 4;
        let mut corrupt = clean.clone();
        corrupt[flip_at] ^= 0x10;
        let decoded = FlightDump::decode(&corrupt).expect("magic intact");
        assert!(decoded.truncated);
        // Meta survived; the snapshot and everything after is gone.
        assert_eq!(decoded.reason, "unit test");
        assert!(decoded.snapshot.counters.is_empty());
        assert!(decoded.roots.is_empty());
    }

    #[test]
    fn wrong_magic_is_an_error() {
        assert!(FlightDump::decode(b"NOTADUMP").is_err());
        assert!(FlightDump::decode(b"").is_err());
    }

    #[test]
    fn write_read_round_trips_through_a_directory() {
        let dir = std::env::temp_dir().join(format!(
            "qp-flight-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let dump = sample_dump();
        dump.write_to(&dir).expect("write dump");
        let read = FlightDump::read_from(&dir)
            .expect("read dump")
            .expect("present");
        assert_eq!(read, dump);
        std::fs::remove_dir_all(&dir).ok();
        assert!(FlightDump::read_from(Path::new("/nonexistent-qp"))
            .expect("absent dir reads as none")
            .is_none());
    }
}
