//! The metrics registry and the [`TelemetrySink`] handed through the
//! stack.
//!
//! Registration (name → core) takes a short mutex on a `BTreeMap` — it
//! happens once per metric at startup, and the `BTreeMap` keeps every
//! exposition surface in deterministic name order. The *hot* paths never
//! touch that lock: counter and histogram handles hold `Arc`s to their
//! cores and record with relaxed `fetch_add`s. Counters are additionally
//! sharded across cache-line-padded slots indexed by a per-thread tag, so
//! concurrent workers don't serialize on one cell.
//!
//! Everything atomic goes through the `parking_lot::atomic` facade, so the
//! `--cfg qp_verify` instrumented build swaps in the model-checker shims.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::atomic::{AtomicU64, AtomicUsize, Ordering};
use parking_lot::Mutex;

use qp_core::RingBuffer;

use crate::histogram::{Histogram, HistogramCore, HistogramSnapshot};
use crate::span::{Exemplar, FlightRoot, Span};

/// Counter shard count. Eight padded slots cover the worker counts this
/// stack runs (≤ 8 shard threads) without false sharing; `get` sums them.
const COUNTER_SHARDS: usize = 8;

/// How many slow-request exemplars the registry retains (newest win).
const EXEMPLAR_CAPACITY: usize = 16;

/// How many completed root span trees the flight journal retains for the
/// crash recorder (newest win). Bounded: a dump is at most this many
/// trees of at most `MAX_TREE_EVENTS` spans each.
pub const FLIGHT_JOURNAL_CAPACITY: usize = 64;

/// Monotonic thread tag source for counter-shard selection.
static NEXT_THREAD_TAG: AtomicUsize = AtomicUsize::new(0);

/// This thread's counter-shard slot, assigned once on first use.
#[inline]
fn thread_slot() -> usize {
    thread_local! {
        static SLOT: usize =
            // ordering: Relaxed — a unique-tag ticket; no other memory
            // depends on its order.
            NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SLOT.with(|s| *s)
}

/// One cache-line-padded counter cell.
#[derive(Debug)]
#[repr(align(64))]
struct PaddedCell(AtomicU64);

/// Sharded monotonic counter core.
#[derive(Debug)]
pub(crate) struct CounterCore {
    slots: [PaddedCell; COUNTER_SHARDS],
}

impl CounterCore {
    fn new() -> Self {
        CounterCore {
            slots: std::array::from_fn(|_| PaddedCell(AtomicU64::new(0))),
        }
    }

    #[inline]
    fn add(&self, delta: u64) {
        let cell = &self.slots[thread_slot()].0;
        // ordering: Relaxed — monotonic counter; readers only need eventual totals.
        cell.fetch_add(delta, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.slots
            .iter()
            // ordering: Relaxed — statistical read of monotonic cells.
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }
}

/// Signed gauge core: an `AtomicU64` holding an `i64` in two's complement
/// (wrapping `fetch_add` implements signed addition exactly).
#[derive(Debug)]
pub(crate) struct GaugeCore {
    value: AtomicU64,
}

impl GaugeCore {
    fn new() -> Self {
        GaugeCore {
            value: AtomicU64::new(0),
        }
    }

    #[inline]
    fn add(&self, delta: i64) {
        // ordering: Relaxed — independent scalar, readers want any recent
        // value, not an ordering guarantee.
        self.value.fetch_add(delta as u64, Ordering::Relaxed);
    }

    #[inline]
    fn set(&self, value: i64) {
        // ordering: Relaxed — see `add`.
        self.value.store(value as u64, Ordering::Relaxed);
    }

    fn get(&self) -> i64 {
        // ordering: Relaxed — see `add`.
        self.value.load(Ordering::Relaxed) as i64
    }
}

/// Handle to a registered counter; inert (`None`) from a disabled sink.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    core: Option<Arc<CounterCore>>,
}

impl Counter {
    /// A no-op handle.
    pub fn disabled() -> Self {
        Counter { core: None }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta` (no-op when disabled).
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(core) = &self.core {
            core.add(delta);
        }
    }

    /// Current total across all shards (0 when disabled).
    pub fn get(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.get())
    }
}

/// Handle to a registered gauge; inert (`None`) from a disabled sink.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    core: Option<Arc<GaugeCore>>,
}

impl Gauge {
    /// A no-op handle.
    pub fn disabled() -> Self {
        Gauge { core: None }
    }

    /// Adds `delta` (may be negative; no-op when disabled).
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(core) = &self.core {
            core.add(delta);
        }
    }

    /// Sets the gauge (no-op when disabled).
    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(core) = &self.core {
            core.set(value);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.core.as_ref().map_or(0, |c| c.get())
    }
}

/// The registry behind an enabled sink: three name-keyed core maps, the
/// slow-request exemplar store, and the capture threshold.
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<CounterCore>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<GaugeCore>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<HistogramCore>>>,
    exemplars: Mutex<RingBuffer<Exemplar>>,
    flight: Mutex<RingBuffer<FlightRoot>>,
    slow_threshold_ns: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with exemplar capture off (`u64::MAX` threshold).
    pub fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            exemplars: Mutex::new(RingBuffer::new(EXEMPLAR_CAPACITY)),
            flight: Mutex::new(RingBuffer::new(FLIGHT_JOURNAL_CAPACITY)),
            slow_threshold_ns: AtomicU64::new(u64::MAX),
        }
    }

    pub(crate) fn counter_core(&self, name: &'static str) -> Arc<CounterCore> {
        Arc::clone(
            self.counters
                .lock()
                .entry(name)
                .or_insert_with(|| Arc::new(CounterCore::new())),
        )
    }

    pub(crate) fn gauge_core(&self, name: &'static str) -> Arc<GaugeCore> {
        Arc::clone(
            self.gauges
                .lock()
                .entry(name)
                .or_insert_with(|| Arc::new(GaugeCore::new())),
        )
    }

    pub(crate) fn histogram_core(&self, name: &'static str) -> Arc<HistogramCore> {
        Arc::clone(
            self.histograms
                .lock()
                .entry(name)
                .or_insert_with(|| Arc::new(HistogramCore::new())),
        )
    }

    /// The root-span duration at or above which the full span tree is
    /// retained as an [`Exemplar`].
    pub(crate) fn slow_threshold_ns(&self) -> u64 {
        // ordering: Relaxed — a tuning knob read racily by design.
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    pub(crate) fn set_slow_threshold_ns(&self, threshold: u64) {
        // ordering: Relaxed — see `slow_threshold_ns`.
        self.slow_threshold_ns.store(threshold, Ordering::Relaxed);
    }

    pub(crate) fn capture_exemplar(&self, exemplar: Exemplar) {
        self.exemplars.lock().push(exemplar);
    }

    pub(crate) fn record_flight_root(&self, root: FlightRoot) {
        self.flight.lock().push(root);
    }

    /// The flight journal: the last [`FLIGHT_JOURNAL_CAPACITY`] completed
    /// root span trees across every thread, oldest first. This is what the
    /// crash flight recorder dumps.
    pub fn flight_roots(&self) -> Vec<FlightRoot> {
        self.flight.lock().to_vec()
    }

    /// Retained exemplars whose trace id matches (the `TRACE` frame's
    /// lookup path).
    pub fn exemplars_for_trace(&self, trace_id: u64) -> Vec<Exemplar> {
        self.exemplars
            .lock()
            .iter()
            .filter(|e| e.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// Reads every metric into a mergeable, wire-shippable snapshot, in
    /// deterministic (sorted-name) order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(name, core)| ((*name).to_string(), core.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(name, core)| ((*name).to_string(), core.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(name, core)| ((*name).to_string(), core.snapshot()))
                .collect(),
            exemplars: self.exemplars.lock().to_vec(),
        }
    }
}

/// A point-in-time read of a whole registry: what the `METRICS` frame
/// ships and the exposition renderers consume. Plain data — safe to
/// merge, encode, and compare.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, total)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained slow-request span trees, oldest first.
    pub exemplars: Vec<Exemplar>,
}

impl MetricsSnapshot {
    /// Looks up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Merges `other` into `self`: counters and gauges add, histograms
    /// merge bucketwise, exemplars concatenate. Used to aggregate
    /// snapshots from several registries (e.g. per-process shards).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        fn merge_into<V: Clone, M: Fn(&mut V, &V)>(
            mine: &mut Vec<(String, V)>,
            theirs: &[(String, V)],
            merge: M,
        ) {
            for (name, value) in theirs {
                match mine.iter_mut().find(|(n, _)| n == name) {
                    Some((_, existing)) => merge(existing, value),
                    None => {
                        mine.push((name.clone(), value.clone()));
                        mine.sort_by(|a, b| a.0.cmp(&b.0));
                    }
                }
            }
        }
        merge_into(&mut self.counters, &other.counters, |a: &mut u64, b| {
            *a = a.saturating_add(*b)
        });
        merge_into(&mut self.gauges, &other.gauges, |a: &mut i64, b| {
            *a = a.saturating_add(*b)
        });
        merge_into(
            &mut self.histograms,
            &other.histograms,
            |a: &mut HistogramSnapshot, b| a.merge(b),
        );
        self.exemplars.extend(other.exemplars.iter().cloned());
    }
}

/// The telemetry capability threaded through broker, shards, server, and
/// simulator. `Disabled` is the default and costs a branch per call site;
/// `Enabled` carries the shared registry.
#[derive(Debug, Clone, Default)]
pub enum TelemetrySink {
    /// No-op sink: every handle it hands out is inert.
    #[default]
    Disabled,
    /// Live sink recording into the shared [`Registry`].
    Enabled(Arc<Registry>),
}

impl TelemetrySink {
    /// A fresh enabled sink with its own registry.
    pub fn enabled() -> Self {
        TelemetrySink::Enabled(Arc::new(Registry::new()))
    }

    /// True when metrics actually record.
    pub fn is_enabled(&self) -> bool {
        matches!(self, TelemetrySink::Enabled(_))
    }

    /// Registers (or re-resolves) the counter `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        match self {
            TelemetrySink::Disabled => Counter::disabled(),
            TelemetrySink::Enabled(reg) => Counter {
                core: Some(reg.counter_core(name)),
            },
        }
    }

    /// Registers (or re-resolves) the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match self {
            TelemetrySink::Disabled => Gauge::disabled(),
            TelemetrySink::Enabled(reg) => Gauge {
                core: Some(reg.gauge_core(name)),
            },
        }
    }

    /// Registers (or re-resolves) the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match self {
            TelemetrySink::Disabled => Histogram::disabled(),
            TelemetrySink::Enabled(reg) => Histogram {
                core: Some(reg.histogram_core(name)),
            },
        }
    }

    /// Opens a tracing span named `name`; the guard records on drop. On a
    /// disabled sink the guard is inert and no clock is read.
    pub fn span(&self, name: &'static str) -> Span {
        match self {
            TelemetrySink::Disabled => Span::disabled(),
            TelemetrySink::Enabled(reg) => Span::open(Arc::clone(reg), name),
        }
    }

    /// Pre-registers a span site: the returned handle resolves `name`'s
    /// histogram once, so entering on the hot path touches no
    /// registration lock.
    pub fn span_handle(&self, name: &'static str) -> crate::span::SpanHandle {
        match self {
            TelemetrySink::Disabled => crate::span::SpanHandle::disabled(),
            TelemetrySink::Enabled(reg) => crate::span::SpanHandle::resolved(Arc::clone(reg), name),
        }
    }

    /// Sets the slow-request exemplar threshold (root spans at or over
    /// `threshold` retain their full tree). No-op when disabled.
    pub fn set_slow_threshold(&self, threshold: Duration) {
        if let TelemetrySink::Enabled(reg) = self {
            reg.set_slow_threshold_ns(threshold.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    }

    /// Reads the registry (empty snapshot when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match self {
            TelemetrySink::Disabled => MetricsSnapshot::default(),
            TelemetrySink::Enabled(reg) => reg.snapshot(),
        }
    }

    /// Reads the flight journal (empty when disabled).
    pub fn flight_roots(&self) -> Vec<FlightRoot> {
        match self {
            TelemetrySink::Disabled => Vec::new(),
            TelemetrySink::Enabled(reg) => reg.flight_roots(),
        }
    }

    /// Retained exemplars stamped with `trace_id` (empty when disabled).
    pub fn exemplars_for_trace(&self, trace_id: u64) -> Vec<Exemplar> {
        match self {
            TelemetrySink::Disabled => Vec::new(),
            TelemetrySink::Enabled(reg) => reg.exemplars_for_trace(trace_id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shard_and_sum() {
        let sink = TelemetrySink::enabled();
        let c = sink.counter("t.hits");
        c.add(3);
        c.inc();
        // A second handle to the same name shares the core.
        assert_eq!(sink.counter("t.hits").get(), 4);
        let snap = sink.snapshot();
        assert_eq!(snap.counter("t.hits"), Some(4));
    }

    #[test]
    fn gauges_go_up_and_down() {
        let sink = TelemetrySink::enabled();
        let g = sink.gauge("t.inflight");
        g.add(5);
        g.add(-7);
        assert_eq!(g.get(), -2);
        g.set(9);
        assert_eq!(sink.snapshot().gauge("t.inflight"), Some(9));
    }

    #[test]
    fn disabled_sink_hands_out_inert_handles() {
        let sink = TelemetrySink::Disabled;
        assert!(!sink.is_enabled());
        sink.counter("t.x").inc();
        sink.gauge("t.y").set(1);
        sink.histogram("t.z").record(10);
        drop(sink.span("t.span"));
        let snap = sink.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn snapshot_is_name_sorted_and_merges_additively() {
        let a = TelemetrySink::enabled();
        a.counter("z.late").add(1);
        a.counter("a.early").add(2);
        a.histogram("h.lat").record(100);
        let b = TelemetrySink::enabled();
        b.counter("a.early").add(10);
        b.histogram("h.lat").record(100);

        let mut merged = a.snapshot();
        let names: Vec<&str> = merged.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.early", "z.late"]);

        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("a.early"), Some(12));
        assert_eq!(merged.counter("z.late"), Some(1));
        assert_eq!(merged.histogram("h.lat").map(|h| h.count()), Some(2));
    }

    #[test]
    fn concurrent_counting_loses_nothing() {
        let sink = TelemetrySink::enabled();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let sink = sink.clone();
                std::thread::spawn(move || {
                    let c = sink.counter("t.racy");
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("counting thread panicked");
        }
        assert_eq!(sink.snapshot().counter("t.racy"), Some(40_000));
    }
}
