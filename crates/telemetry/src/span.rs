//! Quote-path tracing spans.
//!
//! A [`Span`] is a drop guard: opening one stamps the clock, dropping it
//! records the stage's duration (a) into the histogram registered under
//! the span's name and (b) into a bounded per-thread ring-buffer journal
//! of [`SpanEvent`]s. Nesting is tracked per thread, so the journal reads
//! as an indented trace of the request path:
//!
//! ```text
//! server.request          depth 0
//!   quote.decode          depth 1
//!   quote.route           depth 1
//!   quote.cache           depth 1
//!   quote.price           depth 1
//! ```
//!
//! When a **root** span (depth 0) finishes over the registry's slow
//! threshold, its full span tree is captured as an [`Exemplar`] — a small
//! bounded store of the slowest recent requests, readable from the
//! `METRICS` exposition. Capture allocates, but only on the slow path by
//! definition; the per-span fast path is two clock reads, two relaxed
//! `fetch_add`s, and a ring-buffer write.
//!
//! On a `Disabled` sink, [`Span`] holds `None` and the entire machinery —
//! clock, thread-local, histogram — is skipped.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use qp_core::RingBuffer;

use crate::histogram::HistogramCore;
use crate::registry::Registry;

/// Per-thread journal capacity: enough for ~100 requests of trace at
/// typical span fan-out, bounded so an idle reader never sees unbounded
/// growth.
pub const JOURNAL_CAPACITY: usize = 1024;

/// Cap on events retained for a single root's tree (exemplar capture);
/// beyond this the tree is truncated, never reallocated without bound.
const MAX_TREE_EVENTS: usize = 128;

/// Sentinel shard id for spans recorded outside any shard's scope.
pub const NO_SHARD: u32 = u32::MAX;

/// One completed span, as recorded in the per-thread journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (`quote.route`, `reprice.broadcast`, …).
    pub name: &'static str,
    /// Nesting depth at open time (0 = root).
    pub depth: u16,
    /// Shard the span ran against ([`NO_SHARD`] when none was set).
    pub shard: u32,
    /// Start offset in nanoseconds, relative to the enclosing root's start.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// One span inside a captured [`Exemplar`] (owned name: exemplars cross
/// the wire, where `&'static str` cannot follow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// Nesting depth (0 = root).
    pub depth: u32,
    /// Shard the span ran against ([`NO_SHARD`] when none was set).
    pub shard: u32,
    /// Start offset in nanoseconds from the root's start.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A retained span tree for one slow request: the root's name and total
/// duration plus every stage recorded under it, in start order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Wire-level trace id the request carried (0 = untraced).
    pub trace_id: u64,
    /// Name of the root span that crossed the slow threshold.
    pub root: String,
    /// The root's total duration in nanoseconds.
    pub total_ns: u64,
    /// All spans of the tree (including the root), ordered by start time.
    pub events: Vec<SpanRecord>,
}

/// One completed root span tree as retained in the registry's flight
/// journal (the crash recorder's view of recent requests). Names stay
/// `&'static str` — the journal never crosses a process boundary until
/// the flight recorder encodes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRoot {
    /// Wire-level trace id the request carried (0 = untraced).
    pub trace_id: u64,
    /// Name of the root span.
    pub root: &'static str,
    /// The root's total duration in nanoseconds.
    pub total_ns: u64,
    /// The tree's spans, ordered by start time.
    pub events: Vec<SpanEvent>,
}

/// Per-thread tracing state: current nesting depth, the running root's
/// start instant and accumulated tree, the ambient trace/shard context,
/// and the bounded event journal.
struct ThreadTrace {
    depth: u16,
    root_start: Option<Instant>,
    trace_id: u64,
    shard: u32,
    tree: Vec<SpanEvent>,
    journal: RingBuffer<SpanEvent>,
}

impl ThreadTrace {
    fn new() -> Self {
        ThreadTrace {
            depth: 0,
            root_start: None,
            trace_id: 0,
            shard: NO_SHARD,
            tree: Vec::new(),
            journal: RingBuffer::new(JOURNAL_CAPACITY),
        }
    }
}

thread_local! {
    static TRACE: RefCell<ThreadTrace> = RefCell::new(ThreadTrace::new());
}

/// Reads this thread's journal (oldest → newest). Test/debug hook; the
/// production read path is exemplar capture through the registry.
pub fn with_thread_journal<R>(f: impl FnOnce(&[SpanEvent]) -> R) -> R {
    TRACE.with(|t| {
        let trace = t.borrow();
        let events: Vec<SpanEvent> = trace.journal.iter().copied().collect();
        f(&events)
    })
}

/// Clears this thread's journal and any in-flight tree state (tests).
pub fn reset_thread_journal() {
    TRACE.with(|t| {
        let mut trace = t.borrow_mut();
        trace.journal.clear();
        trace.tree.clear();
        trace.depth = 0;
        trace.root_start = None;
        trace.trace_id = 0;
        trace.shard = NO_SHARD;
    });
}

/// Installs the wire-level trace id for the request this thread is
/// currently serving. Spans closing while it is set stamp it into their
/// exemplar/flight captures; the context resets to 0 (untraced) when the
/// enclosing root span closes.
pub fn set_current_trace_id(trace_id: u64) {
    TRACE.with(|t| t.borrow_mut().trace_id = trace_id);
}

/// The trace id currently installed on this thread (0 = untraced).
pub fn current_trace_id() -> u64 {
    TRACE.with(|t| t.borrow().trace_id)
}

/// Installs the shard id spans on this thread are attributed to until the
/// enclosing root span closes (or [`NO_SHARD`] is set explicitly).
pub fn set_current_shard(shard: u32) {
    TRACE.with(|t| t.borrow_mut().shard = shard);
}

/// An open tracing span; dropping it records the stage. Obtained from
/// [`TelemetrySink::span`](crate::TelemetrySink::span) — `None` inside
/// means the sink was disabled and the guard is inert.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    registry: Arc<Registry>,
    hist: Arc<HistogramCore>,
    name: &'static str,
    start: Instant,
    /// Offset of this span's start from the root's start.
    start_ns: u64,
    /// Depth this span was opened at (0 = it is the root).
    depth: u16,
}

impl Span {
    /// The inert guard a disabled sink hands out.
    pub(crate) fn disabled() -> Self {
        Span { inner: None }
    }

    /// Opens a live span against `registry`, resolving the histogram by
    /// name (one registration-map lock; hot paths pre-resolve through a
    /// [`SpanHandle`] instead).
    pub(crate) fn open(registry: Arc<Registry>, name: &'static str) -> Self {
        let hist = registry.histogram_core(name);
        Span::open_with(registry, hist, name)
    }

    /// Opens a live span with a pre-resolved histogram core.
    pub(crate) fn open_with(
        registry: Arc<Registry>,
        hist: Arc<HistogramCore>,
        name: &'static str,
    ) -> Self {
        let start = Instant::now();
        let (depth, start_ns) = TRACE.with(|t| {
            let mut trace = t.borrow_mut();
            let depth = trace.depth;
            if depth == 0 {
                trace.root_start = Some(start);
                trace.tree.clear();
            }
            let start_ns = trace
                .root_start
                .map(|root| {
                    start
                        .duration_since(root)
                        .as_nanos()
                        .min(u128::from(u64::MAX)) as u64
                })
                .unwrap_or(0);
            trace.depth += 1;
            (depth, start_ns)
        });
        Span {
            inner: Some(SpanInner {
                registry,
                hist,
                name,
                start,
                start_ns,
                depth,
            }),
        }
    }

    /// True when the guard will record on drop.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }
}

/// A pre-registered span site: resolves its histogram once at setup so
/// entering the span on the hot path touches no registration lock.
/// Obtained from [`TelemetrySink::span_handle`](crate::TelemetrySink::span_handle);
/// a handle from a disabled sink hands out inert guards.
#[derive(Debug, Clone, Default)]
pub struct SpanHandle {
    inner: Option<(Arc<Registry>, Arc<HistogramCore>, &'static str)>,
}

impl SpanHandle {
    /// The inert handle a disabled sink hands out.
    pub fn disabled() -> Self {
        SpanHandle { inner: None }
    }

    pub(crate) fn resolved(registry: Arc<Registry>, name: &'static str) -> Self {
        let hist = registry.histogram_core(name);
        SpanHandle {
            inner: Some((registry, hist, name)),
        }
    }

    /// True when entering actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens the span; the returned guard records on drop.
    #[inline]
    pub fn enter(&self) -> Span {
        match &self.inner {
            None => Span::disabled(),
            Some((registry, hist, name)) => {
                Span::open_with(Arc::clone(registry), Arc::clone(hist), name)
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_ns = inner.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        inner.hist.record(dur_ns);
        let finished_root = TRACE.with(|t| {
            let mut trace = t.borrow_mut();
            let event = SpanEvent {
                name: inner.name,
                depth: inner.depth,
                shard: trace.shard,
                start_ns: inner.start_ns,
                dur_ns,
            };
            trace.depth = trace.depth.saturating_sub(1);
            trace.journal.push(event);
            if trace.tree.len() < MAX_TREE_EVENTS {
                trace.tree.push(event);
            }
            if inner.depth == 0 {
                // The root closed: hand the completed tree out (flight
                // journal always, exemplar capture when slow) and reset
                // the ambient trace/shard context for the next request.
                trace.root_start = None;
                let trace_id = trace.trace_id;
                trace.trace_id = 0;
                trace.shard = NO_SHARD;
                return Some((std::mem::take(&mut trace.tree), trace_id));
            }
            None
        });
        if let Some((mut tree, trace_id)) = finished_root {
            // Completion order is children-first; start order reads as the
            // request actually unfolded.
            tree.sort_by_key(|e| (e.start_ns, e.depth));
            if dur_ns >= inner.registry.slow_threshold_ns() {
                let exemplar = Exemplar {
                    trace_id,
                    root: inner.name.to_string(),
                    total_ns: dur_ns,
                    events: tree
                        .iter()
                        .map(|e| SpanRecord {
                            name: e.name.to_string(),
                            depth: u32::from(e.depth),
                            shard: e.shard,
                            start_ns: e.start_ns,
                            dur_ns: e.dur_ns,
                        })
                        .collect(),
                };
                inner.registry.capture_exemplar(exemplar);
            }
            inner.registry.record_flight_root(FlightRoot {
                trace_id,
                root: inner.name,
                total_ns: dur_ns,
                events: tree,
            });
        }
    }
}
