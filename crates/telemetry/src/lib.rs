//! # qp-telemetry — observability substrate for the query-pricing stack
//!
//! The serving stack (broker → shards → TCP front-end → simulator) needs
//! to *see itself* to reprice well: cache hit rates, per-stage quote
//! latency, repricing stalls, and decline spikes are exactly the signals
//! the online-pricing literature says a revenue-maximizing seller must
//! observe. This crate is the measurement substrate, built around three
//! pieces:
//!
//! * **Metrics registry** ([`TelemetrySink`] / [`Registry`]) — sharded
//!   atomic [`Counter`]s, signed [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s (power-of-two buckets, mergeable, p50/p95/p99
//!   estimation), registered by static name and read by snapshot-merge.
//!   Hot paths are lock-free; registration order is deterministic. All
//!   atomics go through the `parking_lot::atomic` facade so the
//!   `--cfg qp_verify` build can model them.
//! * **Tracing spans** ([`Span`], [`SpanEvent`]) — cheap drop guards
//!   recording stage timings into a bounded per-thread ring-buffer
//!   journal, with full span trees retained as [`Exemplar`]s for requests
//!   over a slow threshold.
//! * **Exposition** ([`expose`]) — deterministic Prometheus-style text
//!   and hand-rolled JSON renderings of a [`MetricsSnapshot`], the same
//!   structure the server's `METRICS` protocol frame ships.
//! * **Distributed trace context** ([`set_current_trace_id`],
//!   [`set_current_shard`]) — a per-thread ambient trace/shard id the
//!   server installs from the wire-level `TRACED` envelope; root spans
//!   stamp it into [`Exemplar`]s so client and server span trees sharing
//!   a trace id stitch into one cross-process trace.
//! * **Windows and the flight recorder** ([`window`], [`flight`]) —
//!   rolling per-window snapshot deltas (rates and p99-over-last-10s for
//!   the `qp-top` dashboard) and a CRC-framed crash dump of the registry,
//!   the recent-root-span flight journal, and the server's last protocol
//!   events, written on kill/panic and read back post-mortem.
//!
//! ## Out-of-band by construction
//!
//! Telemetry must never change what the system computes. Nothing in this
//! crate touches an RNG, reorders work, or feeds back into pricing; the
//! [`TelemetrySink::Disabled`] default hands out handles whose every
//! operation is a branch on `None` — no clock read, no atomic, no
//! allocation — so instrumented kernels stay allocation-free and the
//! bit-identical-revenue assertions hold with telemetry on or off.
//!
//! ```
//! use qp_telemetry::TelemetrySink;
//!
//! let sink = TelemetrySink::enabled();
//! let hits = sink.counter("cache.hit");
//! let latency = sink.histogram("quote.ns");
//! {
//!     let _span = sink.span("quote.route");
//!     hits.inc();
//!     latency.record(1_500);
//! } // span records its duration here
//! let snap = sink.snapshot();
//! assert_eq!(snap.counter("cache.hit"), Some(1));
//! println!("{}", qp_telemetry::expose::prometheus_text(&snap));
//! ```

pub mod expose;
pub mod flight;
mod histogram;
mod registry;
mod span;
pub mod window;

pub use flight::{FlightDump, ProtocolEvent, FLIGHT_FILE_NAME, FLIGHT_MAGIC};
pub use histogram::{
    bucket_bounds, bucket_index, bucket_midpoint, Histogram, HistogramSnapshot, HistogramTimer,
    NUM_BUCKETS,
};
pub use registry::{
    Counter, Gauge, MetricsSnapshot, Registry, TelemetrySink, FLIGHT_JOURNAL_CAPACITY,
};
pub use span::{
    current_trace_id, reset_thread_journal, set_current_shard, set_current_trace_id,
    with_thread_journal, Exemplar, FlightRoot, Span, SpanEvent, SpanHandle, SpanRecord,
    JOURNAL_CAPACITY, NO_SHARD,
};
pub use window::{snapshot_delta, RollingWindows};
