//! # qp-telemetry — observability substrate for the query-pricing stack
//!
//! The serving stack (broker → shards → TCP front-end → simulator) needs
//! to *see itself* to reprice well: cache hit rates, per-stage quote
//! latency, repricing stalls, and decline spikes are exactly the signals
//! the online-pricing literature says a revenue-maximizing seller must
//! observe. This crate is the measurement substrate, built around three
//! pieces:
//!
//! * **Metrics registry** ([`TelemetrySink`] / [`Registry`]) — sharded
//!   atomic [`Counter`]s, signed [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s (power-of-two buckets, mergeable, p50/p95/p99
//!   estimation), registered by static name and read by snapshot-merge.
//!   Hot paths are lock-free; registration order is deterministic. All
//!   atomics go through the `parking_lot::atomic` facade so the
//!   `--cfg qp_verify` build can model them.
//! * **Tracing spans** ([`Span`], [`SpanEvent`]) — cheap drop guards
//!   recording stage timings into a bounded per-thread ring-buffer
//!   journal, with full span trees retained as [`Exemplar`]s for requests
//!   over a slow threshold.
//! * **Exposition** ([`expose`]) — deterministic Prometheus-style text
//!   and hand-rolled JSON renderings of a [`MetricsSnapshot`], the same
//!   structure the server's `METRICS` protocol frame ships.
//!
//! ## Out-of-band by construction
//!
//! Telemetry must never change what the system computes. Nothing in this
//! crate touches an RNG, reorders work, or feeds back into pricing; the
//! [`TelemetrySink::Disabled`] default hands out handles whose every
//! operation is a branch on `None` — no clock read, no atomic, no
//! allocation — so instrumented kernels stay allocation-free and the
//! bit-identical-revenue assertions hold with telemetry on or off.
//!
//! ```
//! use qp_telemetry::TelemetrySink;
//!
//! let sink = TelemetrySink::enabled();
//! let hits = sink.counter("cache.hit");
//! let latency = sink.histogram("quote.ns");
//! {
//!     let _span = sink.span("quote.route");
//!     hits.inc();
//!     latency.record(1_500);
//! } // span records its duration here
//! let snap = sink.snapshot();
//! assert_eq!(snap.counter("cache.hit"), Some(1));
//! println!("{}", qp_telemetry::expose::prometheus_text(&snap));
//! ```

pub mod expose;
mod histogram;
mod registry;
mod span;

pub use histogram::{
    bucket_bounds, bucket_index, bucket_midpoint, Histogram, HistogramSnapshot, HistogramTimer,
    NUM_BUCKETS,
};
pub use registry::{Counter, Gauge, MetricsSnapshot, Registry, TelemetrySink};
pub use span::{
    reset_thread_journal, with_thread_journal, Exemplar, Span, SpanEvent, SpanHandle, SpanRecord,
    JOURNAL_CAPACITY,
};
