//! Histogram correctness: bucket-boundary unit tests, merge-associativity
//! laws, and a differential proptest pinning the quantile estimator to
//! exact order statistics within one bucket width.

use proptest::prelude::*;
use qp_telemetry::{bucket_bounds, bucket_index, bucket_midpoint, HistogramSnapshot, NUM_BUCKETS};

#[test]
fn every_power_of_two_boundary_lands_in_its_own_bucket() {
    // The lower bound of bucket i is the first value of that bucket; the
    // value one below it is the last value of bucket i-1.
    for i in 1..NUM_BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
        assert_eq!(bucket_index(lo - 1), i - 1, "value below bucket {i}");
        assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
    }
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
}

#[test]
fn midpoints_are_inside_their_buckets() {
    for i in 0..NUM_BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        let mid = bucket_midpoint(i);
        assert!(lo <= mid && mid <= hi, "midpoint of bucket {i} escaped");
    }
}

#[test]
fn empty_histogram_is_identity_and_zero_quantile() {
    let empty = HistogramSnapshot::new();
    assert!(empty.is_empty());
    assert_eq!(empty.count(), 0);
    assert_eq!(empty.quantile(0.5), 0);
    // float-eq: mean of an empty histogram is exactly the 0.0 literal.
    assert_eq!(empty.mean().to_bits(), 0.0f64.to_bits());

    let mut h = HistogramSnapshot::new();
    h.record(17);
    let mut merged = h.clone();
    merged.merge(&empty);
    assert_eq!(merged, h, "merging the empty histogram must be identity");
}

#[test]
fn single_value_quantiles_hit_that_values_bucket() {
    let mut h = HistogramSnapshot::new();
    h.record(100);
    let mid = bucket_midpoint(bucket_index(100));
    assert_eq!(h.quantile(0.0), mid);
    assert_eq!(h.quantile(0.5), mid);
    assert_eq!(h.quantile(1.0), mid);
}

fn from_values(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The exact order statistic the estimator targets: the same
/// `round(q * (n - 1))` rank rule, applied to the sorted raw sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..1_000_000, 0..50),
        b in proptest::collection::vec(0u64..1_000_000, 0..50),
        c in proptest::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let (ha, hb, hc) = (from_values(&a), from_values(&b), from_values(&c));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ⊕ b == b ⊕ a
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Merge equals recording the concatenated sample directly.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &from_values(&all));
    }

    /// Differential check: estimated p50/p95/p99 vs exact order
    /// statistics on random samples. The estimate reports the midpoint of
    /// the bucket the exact value falls in, so the error is bounded by
    /// that bucket's width.
    #[test]
    fn quantile_estimates_stay_within_one_bucket_width(
        values in proptest::collection::vec(0u64..10_000_000_000, 1..400),
    ) {
        let h = from_values(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &q in &[0.50, 0.95, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            let width = hi - lo;
            let err = est.abs_diff(exact);
            prop_assert!(
                err <= width.max(1),
                "q={} exact={} est={} err={} > bucket width {}",
                q, exact, est, err, width
            );
        }
        prop_assert_eq!(h.count(), sorted.len() as u64);
    }

    /// The estimator is monotone in q: higher quantiles never report
    /// smaller values.
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        let h = from_values(&values);
        let (p50, p95, p99) = h.percentiles();
        prop_assert!(p50 <= p95 && p95 <= p99);
        prop_assert!(h.quantile(0.0) <= p50);
        prop_assert!(p99 <= h.quantile(1.0));
    }
}
