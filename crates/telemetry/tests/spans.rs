//! Span tracing behavior: nesting depth, the per-thread ring journal,
//! histogram feeding, and slow-request exemplar capture.

use std::time::Duration;

use qp_telemetry::{reset_thread_journal, with_thread_journal, TelemetrySink};

#[test]
fn nested_spans_record_depths_and_feed_histograms() {
    reset_thread_journal();
    let sink = TelemetrySink::enabled();
    {
        let _root = sink.span("req");
        {
            let _child = sink.span("req.decode");
        }
        {
            let _child = sink.span("req.price");
            let _grandchild = sink.span("req.price.read");
        }
    }
    // Journal order is completion order: decode, price.read, price, req.
    with_thread_journal(|events| {
        let seen: Vec<(&str, u16)> = events.iter().map(|e| (e.name, e.depth)).collect();
        assert_eq!(
            seen,
            vec![
                ("req.decode", 1),
                ("req.price.read", 2),
                ("req.price", 1),
                ("req", 0),
            ]
        );
        // Child windows nest inside the root's duration.
        let root = events[3];
        for child in &events[..3] {
            assert!(child.start_ns <= root.dur_ns);
            assert!(child.dur_ns <= root.dur_ns);
        }
    });
    // Every span name got a histogram observation.
    let snap = sink.snapshot();
    for name in ["req", "req.decode", "req.price", "req.price.read"] {
        assert_eq!(
            snap.histogram(name).map(|h| h.count()),
            Some(1),
            "missing histogram for {name}"
        );
    }
}

#[test]
fn journal_is_bounded() {
    reset_thread_journal();
    let sink = TelemetrySink::enabled();
    for _ in 0..qp_telemetry::JOURNAL_CAPACITY + 50 {
        drop(sink.span("tick"));
    }
    with_thread_journal(|events| {
        assert_eq!(events.len(), qp_telemetry::JOURNAL_CAPACITY);
    });
    assert_eq!(
        sink.snapshot().histogram("tick").map(|h| h.count()),
        Some((qp_telemetry::JOURNAL_CAPACITY + 50) as u64)
    );
}

#[test]
fn slow_roots_capture_exemplar_trees() {
    reset_thread_journal();
    let sink = TelemetrySink::enabled();
    // Threshold zero: every root is "slow", so capture is deterministic.
    sink.set_slow_threshold(Duration::from_nanos(0));
    {
        let _root = sink.span("slow.request");
        let _stage = sink.span("slow.stage");
    }
    let snap = sink.snapshot();
    assert_eq!(snap.exemplars.len(), 1);
    let ex = &snap.exemplars[0];
    assert_eq!(ex.root, "slow.request");
    let names: Vec<&str> = ex.events.iter().map(|e| e.name.as_str()).collect();
    // Start-ordered: the root opens first.
    assert_eq!(names, vec!["slow.request", "slow.stage"]);
    assert_eq!(ex.events[0].depth, 0);
    assert_eq!(ex.events[1].depth, 1);
    assert!(ex.total_ns >= ex.events[1].dur_ns);
}

#[test]
fn fast_roots_are_not_captured_by_default() {
    reset_thread_journal();
    let sink = TelemetrySink::enabled();
    // Default threshold is effectively infinite: nothing is captured.
    {
        let _root = sink.span("fast.request");
    }
    assert!(sink.snapshot().exemplars.is_empty());
}

#[test]
fn exemplar_store_is_bounded_and_keeps_newest() {
    reset_thread_journal();
    let sink = TelemetrySink::enabled();
    sink.set_slow_threshold(Duration::from_nanos(0));
    for _ in 0..40 {
        drop(sink.span("burst"));
    }
    let snap = sink.snapshot();
    assert!(snap.exemplars.len() <= 16, "exemplar store grew unbounded");
    assert!(!snap.exemplars.is_empty());
}
