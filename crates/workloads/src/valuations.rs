//! Buyer-valuation models (paper §6.3).
//!
//! The paper studies three families of generative models for the valuation
//! `v_e` of each hyperedge:
//!
//! * **Sampled bundle valuations** — independent of the bundle structure:
//!   `Uniform[1, k]` and Zipf with exponent `a`.
//! * **Scaled bundle valuations** — correlated with the bundle size:
//!   `Exponential(β = |e|^k)` and `Normal(μ = |e|^k, σ² = 10)`.
//! * **Additive item prices** — every item `j` is assigned a distribution
//!   `D_{ℓ_j}` with `ℓ_j ~ D̃` (either `Uniform[1, k]` or `Binomial(k, ½)`),
//!   draws `x_j ~ D_{ℓ_j} = Uniform[ℓ_j, ℓ_j + 1]`, and
//!   `v_e = Σ_{j∈e} x_j`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qp_pricing::Hypergraph;

use crate::dist;

/// A generative model for bundle valuations.
#[derive(Debug, Clone, PartialEq)]
pub enum ValuationModel {
    /// `v_e ~ Uniform[1, k]`.
    SampledUniform {
        /// Upper end of the uniform range.
        k: f64,
    },
    /// `v_e` drawn from a Zipf distribution with exponent `a` over ranks
    /// `1..=max_rank` (the rank is the valuation).
    SampledZipf {
        /// Zipf exponent `a`.
        a: f64,
        /// Number of ranks in the Zipf support.
        max_rank: usize,
    },
    /// `v_e ~ Exponential(β = |e|^k)`.
    ScaledExponential {
        /// Exponent applied to the bundle size.
        k: f64,
    },
    /// `v_e ~ Normal(μ = |e|^k, σ²)` clamped at 0.
    ScaledNormal {
        /// Exponent applied to the bundle size.
        k: f64,
        /// Variance σ² (the paper uses 10).
        variance: f64,
    },
    /// Additive item-price model with `ℓ_j ~ Uniform{1, …, k}`.
    AdditiveUniform {
        /// Number of per-item distributions.
        k: usize,
    },
    /// Additive item-price model with `ℓ_j ~ Binomial(k, ½)` (clamped to ≥1).
    AdditiveBinomial {
        /// Binomial parameter `k`.
        k: usize,
    },
}

impl ValuationModel {
    /// Short label used in experiment output (matches the paper's axes).
    pub fn label(&self) -> String {
        match self {
            ValuationModel::SampledUniform { k } => format!("uniform[1,{k}]"),
            ValuationModel::SampledZipf { a, .. } => format!("zipf(a={a})"),
            ValuationModel::ScaledExponential { k } => format!("exp(|e|^{k})"),
            ValuationModel::ScaledNormal { k, .. } => format!("normal(|e|^{k})"),
            ValuationModel::AdditiveUniform { k } => format!("additive-unif[1,{k}]"),
            ValuationModel::AdditiveBinomial { k } => format!("additive-bin({k},0.5)"),
        }
    }
}

/// Assigns valuations to every hyperedge of `h` according to `model`,
/// deterministically in `seed`.
pub fn assign_valuations(h: &mut Hypergraph, model: &ValuationModel, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    match model {
        ValuationModel::SampledUniform { k } => {
            let hi = k.max(1.0);
            h.set_valuations(|_, _| rng.gen_range(1.0..=hi));
        }
        ValuationModel::SampledZipf { a, max_rank } => {
            let zipf = dist::Zipf::new((*max_rank).max(1), *a);
            h.set_valuations(|_, _| zipf.sample(&mut rng) as f64);
        }
        ValuationModel::ScaledExponential { k } => {
            h.set_valuations(|_, e| {
                let beta = (e.size() as f64).powf(*k);
                if beta <= 0.0 {
                    0.0
                } else {
                    dist::exponential(&mut rng, beta)
                }
            });
        }
        ValuationModel::ScaledNormal { k, variance } => {
            h.set_valuations(|_, e| {
                let mu = (e.size() as f64).powf(*k);
                dist::normal(&mut rng, mu, *variance).max(0.0)
            });
        }
        ValuationModel::AdditiveUniform { k } => {
            let item_prices = additive_item_prices(h.num_items(), &mut rng, |rng| {
                rng.gen_range(1..=(*k).max(1)) as f64
            });
            h.set_valuations(|_, e| e.items.iter().map(|j| item_prices[j]).sum());
        }
        ValuationModel::AdditiveBinomial { k } => {
            let item_prices = additive_item_prices(h.num_items(), &mut rng, |rng| {
                dist::binomial(rng, *k, 0.5).max(1) as f64
            });
            h.set_valuations(|_, e| e.items.iter().map(|j| item_prices[j]).sum());
        }
    }
}

/// Draws the per-item prices `x_j ~ Uniform[ℓ_j, ℓ_j + 1]` of the additive
/// model, where `ℓ_j` is produced by `level`.
fn additive_item_prices<F: FnMut(&mut StdRng) -> f64>(
    n: usize,
    rng: &mut StdRng,
    mut level: F,
) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let l = level(rng);
            rng.gen_range(l..l + 1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hypergraph() -> Hypergraph {
        let mut h = Hypergraph::new(20);
        for i in 0..15 {
            let size = 1 + (i % 5);
            h.add_edge((0..size).map(|s| (i + s) % 20), 0.0);
        }
        h.add_edge(Vec::<usize>::new(), 0.0);
        h
    }

    #[test]
    fn sampled_uniform_is_in_range_and_deterministic() {
        let mut h1 = hypergraph();
        let mut h2 = hypergraph();
        let model = ValuationModel::SampledUniform { k: 100.0 };
        assign_valuations(&mut h1, &model, 9);
        assign_valuations(&mut h2, &model, 9);
        for (a, b) in h1.edges().iter().zip(h2.edges()) {
            assert_eq!(a.valuation, b.valuation);
            assert!(a.valuation >= 1.0 && a.valuation <= 100.0);
        }
        let mut h3 = hypergraph();
        assign_valuations(&mut h3, &model, 10);
        assert_ne!(
            h1.edges().iter().map(|e| e.valuation).collect::<Vec<_>>(),
            h3.edges().iter().map(|e| e.valuation).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zipf_valuations_are_positive_integers() {
        let mut h = hypergraph();
        assign_valuations(
            &mut h,
            &ValuationModel::SampledZipf {
                a: 1.5,
                max_rank: 1000,
            },
            1,
        );
        for e in h.edges() {
            assert!(e.valuation >= 1.0);
            assert_eq!(e.valuation.fract(), 0.0);
        }
    }

    #[test]
    fn scaled_models_correlate_with_edge_size() {
        let mut h = Hypergraph::new(200);
        h.add_edge(0..2usize, 0.0);
        h.add_edge(0..150usize, 0.0);
        // Average over many seeds: the big edge must receive a much larger
        // valuation under both scaled models with k = 1.
        for model in [
            ValuationModel::ScaledExponential { k: 1.0 },
            ValuationModel::ScaledNormal {
                k: 1.0,
                variance: 10.0,
            },
        ] {
            let mut small_total = 0.0;
            let mut big_total = 0.0;
            for seed in 0..40 {
                assign_valuations(&mut h, &model, seed);
                small_total += h.edge(0).valuation;
                big_total += h.edge(1).valuation;
            }
            assert!(
                big_total > 5.0 * small_total,
                "{model:?}: big {big_total} vs small {small_total}"
            );
        }
    }

    #[test]
    fn empty_edges_get_zero_under_scaled_models() {
        let mut h = hypergraph();
        assign_valuations(&mut h, &ValuationModel::ScaledExponential { k: 2.0 }, 5);
        let empty_idx = h.num_edges() - 1;
        assert_eq!(h.edge(empty_idx).valuation, 0.0);
        assert!(h.edges().iter().all(|e| e.valuation >= 0.0));
    }

    #[test]
    fn additive_models_are_additive_over_items() {
        // Two disjoint singletons and their union as a third edge: the
        // union's valuation equals the sum of the singletons'.
        let mut h = Hypergraph::new(2);
        h.add_edge(vec![0], 0.0);
        h.add_edge(vec![1], 0.0);
        h.add_edge(vec![0, 1], 0.0);
        for model in [
            ValuationModel::AdditiveUniform { k: 10 },
            ValuationModel::AdditiveBinomial { k: 10 },
        ] {
            assign_valuations(&mut h, &model, 77);
            let v0 = h.edge(0).valuation;
            let v1 = h.edge(1).valuation;
            let v01 = h.edge(2).valuation;
            assert!((v0 + v1 - v01).abs() < 1e-9, "{model:?} not additive");
            assert!(v0 >= 1.0 && v1 >= 1.0);
        }
    }

    #[test]
    fn labels_mention_their_parameters() {
        assert!(ValuationModel::SampledUniform { k: 300.0 }
            .label()
            .contains("300"));
        assert!(ValuationModel::SampledZipf {
            a: 2.0,
            max_rank: 10
        }
        .label()
        .contains('2'));
        assert!(ValuationModel::ScaledExponential { k: 0.5 }
            .label()
            .contains("0.5"));
        assert!(ValuationModel::ScaledNormal {
            k: 1.0,
            variance: 10.0
        }
        .label()
        .contains("normal"));
        assert!(ValuationModel::AdditiveUniform { k: 4 }
            .label()
            .contains("additive"));
        assert!(ValuationModel::AdditiveBinomial { k: 4 }
            .label()
            .contains("bin"));
    }
}
