//! The TPC-H benchmark subset (dataset + the 220-query workload).
//!
//! The paper prices 220 queries generated from seven TPC-H templates
//! (Appendix C): Q1/Q4/Q6/Q12 parameterized by year (20 queries), Q2 by
//! region (5) and by part type material (5), Q16 by the 150 `p_type` values,
//! and Q17 by the 40 `p_container` values. The generator below produces a
//! scaled-down database with exactly those categorical domains, and the
//! workload builder reproduces the 220 parameterized queries with the same
//! join/aggregation structure (simplified where the original predicate logic
//! does not affect which tuples can change the answer).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qp_qdb::{AggFunc, ColumnType, Database, Expr, Query, Relation, Schema, Value};

use crate::queries::Workload;
use crate::Scale;

/// The five TPC-H regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The five part-type materials used by the parameterized Q2.
pub const TYPE_MATERIALS: [&str; 5] = ["BRASS", "TIN", "COPPER", "STEEL", "NICKEL"];

const TYPE_CLASSES: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_FINISHES: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const CONTAINER_SIZES: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
const CONTAINER_KINDS: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const ORDER_PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIP_MODES: [&str; 7] = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"];
const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];

/// Years covered by date-valued attributes.
pub const YEARS: [i64; 6] = [1993, 1994, 1995, 1996, 1997, 1998];

/// The 150 distinct `p_type` values (class × finish × material).
pub fn part_types() -> Vec<String> {
    let mut out = Vec::with_capacity(150);
    for class in TYPE_CLASSES {
        for finish in TYPE_FINISHES {
            for material in TYPE_MATERIALS {
                out.push(format!("{class} {finish} {material}"));
            }
        }
    }
    out
}

/// The 40 distinct `p_container` values (size × kind).
pub fn part_containers() -> Vec<String> {
    let mut out = Vec::with_capacity(40);
    for size in CONTAINER_SIZES {
        for kind in CONTAINER_KINDS {
            out.push(format!("{size} {kind}"));
        }
    }
    out
}

/// Table cardinalities at a given scale.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Number of parts.
    pub parts: usize,
    /// Number of suppliers.
    pub suppliers: usize,
    /// Number of `partsupp` rows.
    pub partsupps: usize,
    /// Number of orders.
    pub orders: usize,
    /// Number of lineitems.
    pub lineitems: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TpchConfig {
    /// Configuration for a scale.
    pub fn at_scale(scale: Scale) -> TpchConfig {
        let f = scale.factor();
        TpchConfig {
            parts: 160 * f,
            suppliers: 15 * f,
            partsupps: 320 * f,
            orders: 220 * f,
            lineitems: 600 * f,
            seed: 2,
        }
    }
}

/// Generates the scaled-down TPC-H database.
pub fn generate(config: &TpchConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new();
    let types = part_types();
    let containers = part_containers();

    // region(r_regionkey, r_name)
    let mut region = Relation::new(Schema::new(vec![
        ("r_regionkey", ColumnType::Int),
        ("r_name", ColumnType::Str),
    ]));
    for (i, name) in REGIONS.iter().enumerate() {
        region
            .push(vec![Value::Int(i as i64), (*name).into()])
            .unwrap();
    }
    db.add_table("region", region);

    // nation(n_nationkey, n_name, n_regionkey)
    let mut nation = Relation::new(Schema::new(vec![
        ("n_nationkey", ColumnType::Int),
        ("n_name", ColumnType::Str),
        ("n_regionkey", ColumnType::Int),
    ]));
    for i in 0..25 {
        nation
            .push(vec![
                Value::Int(i as i64),
                format!("NATION{i:02}").into(),
                Value::Int((i % REGIONS.len()) as i64),
            ])
            .unwrap();
    }
    db.add_table("nation", nation);

    // part(p_partkey, p_type, p_container, p_retailprice)
    let mut part = Relation::new(Schema::new(vec![
        ("p_partkey", ColumnType::Int),
        ("p_type", ColumnType::Str),
        ("p_container", ColumnType::Str),
        ("p_retailprice", ColumnType::Float),
    ]));
    for i in 0..config.parts {
        part.push(vec![
            Value::Int(i as i64),
            types[i % types.len()].clone().into(),
            containers[(i * 7 + 3) % containers.len()].clone().into(),
            Value::Float(rng.gen_range(900.0..2100.0)),
        ])
        .unwrap();
    }
    db.add_table("part", part);

    // supplier(s_suppkey, s_nationkey, s_acctbal)
    let mut supplier = Relation::new(Schema::new(vec![
        ("s_suppkey", ColumnType::Int),
        ("s_nationkey", ColumnType::Int),
        ("s_acctbal", ColumnType::Float),
    ]));
    for i in 0..config.suppliers {
        supplier
            .push(vec![
                Value::Int(i as i64),
                Value::Int((i % 25) as i64),
                Value::Float(rng.gen_range(-999.0..9999.0)),
            ])
            .unwrap();
    }
    db.add_table("supplier", supplier);

    // partsupp(ps_partkey, ps_suppkey, ps_supplycost, ps_availqty)
    let mut partsupp = Relation::new(Schema::new(vec![
        ("ps_partkey", ColumnType::Int),
        ("ps_suppkey", ColumnType::Int),
        ("ps_supplycost", ColumnType::Float),
        ("ps_availqty", ColumnType::Int),
    ]));
    for i in 0..config.partsupps {
        partsupp
            .push(vec![
                Value::Int((i % config.parts) as i64),
                Value::Int(((i * 31) % config.suppliers) as i64),
                Value::Float(rng.gen_range(1.0..1000.0)),
                Value::Int(rng.gen_range(1..10_000)),
            ])
            .unwrap();
    }
    db.add_table("partsupp", partsupp);

    // orders(o_orderkey, o_custkey, o_orderyear, o_orderpriority, o_totalprice)
    let mut orders = Relation::new(Schema::new(vec![
        ("o_orderkey", ColumnType::Int),
        ("o_custkey", ColumnType::Int),
        ("o_orderyear", ColumnType::Int),
        ("o_orderpriority", ColumnType::Str),
        ("o_totalprice", ColumnType::Float),
    ]));
    for i in 0..config.orders {
        orders
            .push(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..1000)),
                Value::Int(YEARS[rng.gen_range(0..YEARS.len())]),
                ORDER_PRIORITIES[rng.gen_range(0..ORDER_PRIORITIES.len())].into(),
                Value::Float(rng.gen_range(1_000.0..400_000.0)),
            ])
            .unwrap();
    }
    db.add_table("orders", orders);

    // lineitem(l_orderkey, l_partkey, l_quantity, l_extendedprice, l_discount,
    //          l_returnflag, l_shipmode, l_shipyear, l_receiptyear)
    let mut lineitem = Relation::new(Schema::new(vec![
        ("l_orderkey", ColumnType::Int),
        ("l_partkey", ColumnType::Int),
        ("l_quantity", ColumnType::Int),
        ("l_extendedprice", ColumnType::Float),
        ("l_discount", ColumnType::Float),
        ("l_returnflag", ColumnType::Str),
        ("l_shipmode", ColumnType::Str),
        ("l_shipyear", ColumnType::Int),
        ("l_receiptyear", ColumnType::Int),
    ]));
    for i in 0..config.lineitems {
        let ship_year = YEARS[rng.gen_range(0..YEARS.len())];
        lineitem
            .push(vec![
                Value::Int((i % config.orders) as i64),
                Value::Int(rng.gen_range(0..config.parts as i64)),
                Value::Int(rng.gen_range(1..50)),
                Value::Float(rng.gen_range(1_000.0..100_000.0)),
                Value::Float(rng.gen_range(0.0..0.1)),
                RETURN_FLAGS[rng.gen_range(0..RETURN_FLAGS.len())].into(),
                SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())].into(),
                Value::Int(ship_year),
                Value::Int((ship_year + i64::from(rng.gen_bool(0.5))).min(1998)),
            ])
            .unwrap();
    }
    db.add_table("lineitem", lineitem);

    db
}

/// Builds the 220-query TPC-H workload.
pub fn workload() -> Workload {
    let mut queries = Vec::with_capacity(220);

    // Q1, Q4, Q6, Q12 — one query per year in 1994..=1998 (4 × 5 = 20).
    for &year in &YEARS[1..] {
        // Q1: pricing summary report up to the given ship year.
        queries.push(
            Query::scan("lineitem")
                .filter(Expr::col("l_shipyear").le(Expr::lit(year)))
                .aggregate(
                    vec!["l_returnflag"],
                    vec![
                        (AggFunc::Sum, Some("l_quantity"), "sum_qty"),
                        (AggFunc::Sum, Some("l_extendedprice"), "sum_base_price"),
                        (AggFunc::Avg, Some("l_discount"), "avg_disc"),
                        (AggFunc::Count, None, "count_order"),
                    ],
                ),
        );
        // Q4: order priority checking for one year.
        queries.push(
            Query::scan("orders")
                .filter(Expr::col("o_orderyear").eq(Expr::lit(year)))
                .aggregate(
                    vec!["o_orderpriority"],
                    vec![(AggFunc::Count, None, "order_count")],
                ),
        );
        // Q6: forecasting revenue change for one ship year.
        queries.push(
            Query::scan("lineitem")
                .filter(
                    Expr::col("l_shipyear")
                        .eq(Expr::lit(year))
                        .and(Expr::col("l_discount").between(Expr::lit(0.02), Expr::lit(0.08)))
                        .and(Expr::col("l_quantity").lt(Expr::lit(24))),
                )
                .project(vec![(
                    Expr::col("l_extendedprice").mul(Expr::col("l_discount")),
                    "revenue",
                )])
                .aggregate(vec![], vec![(AggFunc::Sum, Some("revenue"), "revenue")]),
        );
        // Q12: shipping modes and order priority for one receipt year.
        queries.push(
            Query::scan("orders")
                .join(Query::scan("lineitem"), vec![("o_orderkey", "l_orderkey")])
                .filter(Expr::col("l_receiptyear").eq(Expr::lit(year)))
                .aggregate(vec!["l_shipmode"], vec![(AggFunc::Count, None, "c")]),
        );
    }

    // Q2 — minimum-cost supplier, one query per region (5).
    for region in REGIONS {
        queries.push(
            Query::scan("partsupp")
                .join(Query::scan("supplier"), vec![("ps_suppkey", "s_suppkey")])
                .join(Query::scan("nation"), vec![("s_nationkey", "n_nationkey")])
                .join(Query::scan("region"), vec![("n_regionkey", "r_regionkey")])
                .filter(Expr::col("r_name").eq(Expr::lit(region)))
                .aggregate(
                    vec![],
                    vec![(AggFunc::Min, Some("ps_supplycost"), "min_cost")],
                ),
        );
    }

    // Q2 — one query per part-type material (5).
    for material in TYPE_MATERIALS {
        queries.push(
            Query::scan("part")
                .filter(Expr::col("p_type").like(format!("%{material}")))
                .join(Query::scan("partsupp"), vec![("p_partkey", "ps_partkey")])
                .aggregate(
                    vec![],
                    vec![(AggFunc::Min, Some("ps_supplycost"), "min_cost")],
                ),
        );
    }

    // Q16 — supplier counts, one query per p_type (150).
    for ptype in part_types() {
        queries.push(
            Query::scan("part")
                .filter(Expr::col("p_type").eq(Expr::lit(ptype.as_str())))
                .join(Query::scan("partsupp"), vec![("p_partkey", "ps_partkey")])
                .aggregate(
                    vec![],
                    vec![(AggFunc::CountDistinct, Some("ps_suppkey"), "supplier_cnt")],
                ),
        );
    }

    // Q17 — small-quantity-order revenue, one query per p_container (40).
    for container in part_containers() {
        queries.push(
            Query::scan("part")
                .filter(Expr::col("p_container").eq(Expr::lit(container.as_str())))
                .join(Query::scan("lineitem"), vec![("p_partkey", "l_partkey")])
                .filter(Expr::col("l_quantity").lt(Expr::lit(10)))
                .aggregate(
                    vec![],
                    vec![(AggFunc::Avg, Some("l_extendedprice"), "avg_yearly")],
                ),
        );
    }

    Workload {
        name: "tpch",
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_have_paper_cardinalities() {
        assert_eq!(part_types().len(), 150);
        assert_eq!(part_containers().len(), 40);
        assert_eq!(REGIONS.len(), 5);
    }

    #[test]
    fn workload_has_220_queries() {
        assert_eq!(workload().len(), 220);
    }

    #[test]
    fn database_has_seven_tables_and_is_deterministic() {
        let cfg = TpchConfig::at_scale(Scale::Test);
        let db = generate(&cfg);
        assert_eq!(db.num_tables(), 7);
        assert_eq!(db.table("lineitem").unwrap().len(), cfg.lineitems);
        assert_eq!(db.table("nation").unwrap().len(), 25);
        assert_eq!(generate(&cfg), db);
    }

    #[test]
    fn every_query_evaluates() {
        let db = generate(&TpchConfig::at_scale(Scale::Test));
        for (i, q) in workload().queries.iter().enumerate() {
            assert!(q.evaluate(&db).is_ok(), "TPC-H query {i} failed");
        }
    }

    #[test]
    fn year_filtered_queries_have_nonempty_answers() {
        let db = generate(&TpchConfig::at_scale(Scale::Test));
        let q = Query::scan("orders")
            .filter(Expr::col("o_orderyear").eq(Expr::lit(1995)))
            .aggregate(vec![], vec![(AggFunc::Count, None, "c")]);
        let out = q.evaluate(&db).unwrap();
        assert!(out.rows()[0][0].as_i64().unwrap() > 0);
    }
}
