//! Random-variate samplers used by the valuation models.
//!
//! Only `rand`'s uniform primitives are available offline, so the Zipf,
//! Normal, Exponential and Binomial samplers needed by §6.3 of the paper are
//! implemented here directly (inverse-CDF table for Zipf, Box–Muller for the
//! normal, inverse CDF for the exponential, Bernoulli sum / normal
//! approximation for the binomial).

use rand::Rng;

/// A Zipf distribution over ranks `1..=n` with exponent `a > 1`:
/// `P(k) ∝ k^{-a}`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precomputes the CDF table for `n` ranks and exponent `a`.
    pub fn new(n: usize, a: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(a > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-a);
            cdf.push(total);
        }
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

/// Samples a standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 = 0 which would make ln(u1) = -inf.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, variance)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, variance: f64) -> f64 {
    mean + variance.max(0.0).sqrt() * standard_normal(rng)
}

/// Samples an exponential with the given mean (`β` parameterization used by
/// the paper: `v_e ~ exponential(β = |e|^k)`).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Samples `Binomial(n, p)`. Uses a direct Bernoulli sum for small `n` and a
/// (clamped, rounded) normal approximation for large `n`.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64) -> usize {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if n <= 64 {
        (0..n).filter(|_| rng.gen::<f64>() < p).count()
    } else {
        let mean = n as f64 * p;
        let var = n as f64 * p * (1.0 - p);
        let x = normal(rng, mean, var).round();
        x.clamp(0.0, n as f64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn zipf_favours_small_ranks() {
        let z = Zipf::new(100, 2.0);
        let mut rng = rng();
        let mut counts = vec![0usize; 101];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        // Rank 1 should dominate (~60% of mass at a = 2).
        assert!(counts[1] as f64 / 20_000.0 > 0.5);
        // All samples in range.
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn zipf_smaller_exponent_spreads_mass() {
        let z15 = Zipf::new(1000, 1.5);
        let z25 = Zipf::new(1000, 2.5);
        let mut rng = rng();
        let mean15: f64 = (0..5000).map(|_| z15.sample(&mut rng) as f64).sum::<f64>() / 5000.0;
        let mean25: f64 = (0..5000).map(|_| z25.sample(&mut rng) as f64).sum::<f64>() / 5000.0;
        assert!(
            mean15 > mean25,
            "a=1.5 mean {mean15} vs a=2.5 mean {mean25}"
        );
    }

    #[test]
    fn normal_mean_and_variance_are_close() {
        let mut rng = rng();
        let samples: Vec<f64> = (0..30_000).map(|_| normal(&mut rng, 5.0, 9.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = rng();
        let mean = (0..30_000).map(|_| exponential(&mut rng, 4.0)).sum::<f64>() / 30_000.0;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
        assert!(exponential(&mut rng, 4.0) >= 0.0);
    }

    #[test]
    fn binomial_both_regimes_match_expectation() {
        let mut rng = rng();
        let small: f64 = (0..20_000)
            .map(|_| binomial(&mut rng, 20, 0.5) as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!((small - 10.0).abs() < 0.2, "small-n mean {small}");
        let large: f64 = (0..20_000)
            .map(|_| binomial(&mut rng, 1000, 0.5) as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!((large - 500.0).abs() < 3.0, "large-n mean {large}");
        assert!((0..100).all(|_| binomial(&mut rng, 10, 0.0) == 0));
        assert!((0..100).all(|_| binomial(&mut rng, 10, 1.0) == 10));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn binomial_rejects_bad_probability() {
        let mut rng = rng();
        binomial(&mut rng, 10, 1.5);
    }
}
