//! The skewed workload (Appendix B, Table 7 of the paper).
//!
//! Thirty-four SQL templates over the `world` dataset — selections,
//! projections, joins and aggregations — expanded by parameterizing the
//! country-, continent- and language-valued predicates over their active
//! domains (the paper's procedure for reaching 986 queries).

use qp_qdb::{AggFunc, Database, Expr, Query};

use crate::queries::Workload;
use crate::world::{self, CONTINENTS};

/// The 34 base templates (Table 7), instantiated with representative
/// constants. `usa`, `grc`, `greek`, `english`, `spanish` name the constants
/// used by the original queries; the synthetic dataset substitutes its own
/// domain values for them.
pub fn base_queries() -> Vec<Query> {
    let usa = world::country_code(0);
    let grc = world::country_code(1);
    let greek = world::language_name(0);
    let english = world::language_name(1);
    let spanish = world::language_name(2);

    vec![
        // Q1: count of Asian countries.
        q1_for_continent("Asia"),
        // Q2: number of distinct continents.
        Query::scan("Country").aggregate(
            vec![],
            vec![(AggFunc::CountDistinct, Some("Continent"), "c")],
        ),
        // Q3 – Q5: global aggregates.
        Query::scan("Country").aggregate(vec![], vec![(AggFunc::Avg, Some("Population"), "a")]),
        Query::scan("Country").aggregate(vec![], vec![(AggFunc::Max, Some("Population"), "m")]),
        Query::scan("Country").aggregate(vec![], vec![(AggFunc::Min, Some("LifeExpectancy"), "m")]),
        // Q6: count of countries whose name starts with 'A'.
        Query::scan("Country")
            .filter(Expr::col("Name").like("Country00%"))
            .aggregate(vec![], vec![(AggFunc::Count, Some("Name"), "c")]),
        // Q7 – Q9: group-bys.
        Query::scan("Country").aggregate(
            vec!["Region"],
            vec![(AggFunc::Max, Some("SurfaceArea"), "m")],
        ),
        Query::scan("Country").aggregate(
            vec!["Continent"],
            vec![(AggFunc::Max, Some("Population"), "m")],
        ),
        Query::scan("Country")
            .aggregate(vec!["Continent"], vec![(AggFunc::Count, Some("Code"), "c")]),
        // Q10: the whole Country table.
        Query::scan("Country"),
        // Q11: names starting with 'A'.
        Query::scan("Country")
            .filter(Expr::col("Name").like("Country00%"))
            .project_cols(&["Name"]),
        // Q12: populous European countries.
        q12_for_continent("Europe"),
        // Q13 – Q15: region / population selections.
        Query::scan("Country").filter(Expr::col("Region").eq(Expr::lit("Caribbean"))),
        Query::scan("Country")
            .filter(Expr::col("Region").eq(Expr::lit("Caribbean")))
            .project_cols(&["Name"]),
        Query::scan("Country")
            .filter(Expr::col("Population").between(Expr::lit(10_000_000), Expr::lit(20_000_000)))
            .project_cols(&["Name"]),
        // Q16: LIMIT query.
        Query::scan("Country")
            .filter(Expr::col("Continent").eq(Expr::lit("Europe")))
            .limit(2),
        // Q17: a single country's population.
        q17_for_country(&usa),
        // Q18 – Q19: government forms.
        Query::scan("Country").project_cols(&["GovernmentForm"]),
        Query::scan("Country")
            .project_cols(&["GovernmentForm"])
            .distinct(),
        // Q20: large US cities.
        Query::scan("City").filter(
            Expr::col("Population")
                .ge(Expr::lit(1_000_000))
                .and(Expr::col("CountryCode").eq(Expr::lit(usa.as_str()))),
        ),
        // Q21: distinct languages of the USA.
        Query::scan("CountryLanguage")
            .filter(Expr::col("CountryCode").eq(Expr::lit(usa.as_str())))
            .project_cols(&["Language"])
            .distinct(),
        // Q22: official languages.
        Query::scan("CountryLanguage").filter(Expr::col("IsOfficial").eq(Expr::lit("T"))),
        // Q23: language histogram.
        Query::scan("CountryLanguage").aggregate(
            vec!["Language"],
            vec![(AggFunc::Count, Some("CountryCode"), "c")],
        ),
        // Q24: number of languages spoken in the USA.
        Query::scan("CountryLanguage")
            .filter(Expr::col("CountryCode").eq(Expr::lit(usa.as_str())))
            .aggregate(vec![], vec![(AggFunc::Count, Some("Language"), "c")]),
        // Q25 – Q26: per-country city statistics.
        Query::scan("City").aggregate(
            vec!["CountryCode"],
            vec![(AggFunc::Sum, Some("Population"), "s")],
        ),
        Query::scan("City").aggregate(vec!["CountryCode"], vec![(AggFunc::Count, Some("ID"), "c")]),
        // Q27: cities of Greece.
        q27_for_country(&grc),
        // Q28: does the USA have a mega-city?
        Query::scan("City")
            .filter(
                Expr::col("CountryCode")
                    .eq(Expr::lit(usa.as_str()))
                    .and(Expr::col("Population").gt(Expr::lit(10_000_000))),
            )
            .project(vec![(Expr::lit(1), "one")])
            .distinct(),
        // Q29 – Q30: join queries filtered by language.
        q29_for_language(&greek),
        q30_for_language(&english),
        // Q31: district of the US capital.
        q31_for_country(&usa),
        // Q32: countries speaking Spanish (full join rows).
        Query::scan("Country")
            .join(
                Query::scan("CountryLanguage"),
                vec![("Code", "CountryCode")],
            )
            .filter(Expr::col("Language").eq(Expr::lit(spanish.as_str()))),
        // Q33 – Q34: country–language joins.
        Query::scan("Country")
            .join(
                Query::scan("CountryLanguage"),
                vec![("Code", "CountryCode")],
            )
            .project_cols(&["Name", "Language"]),
        Query::scan("Country").join(
            Query::scan("CountryLanguage"),
            vec![("Code", "CountryCode")],
        ),
    ]
}

/// Q1 parameterized by continent.
fn q1_for_continent(continent: &str) -> Query {
    Query::scan("Country")
        .filter(Expr::col("Continent").eq(Expr::lit(continent)))
        .aggregate(vec![], vec![(AggFunc::Count, Some("Name"), "c")])
}

/// Q12 parameterized by continent.
fn q12_for_continent(continent: &str) -> Query {
    Query::scan("Country").filter(
        Expr::col("Continent")
            .eq(Expr::lit(continent))
            .and(Expr::col("Population").gt(Expr::lit(5_000_000))),
    )
}

/// Q17 parameterized by country code.
fn q17_for_country(code: &str) -> Query {
    Query::scan("Country")
        .filter(Expr::col("Code").eq(Expr::lit(code)))
        .project_cols(&["Population"])
}

/// Q27 parameterized by country code.
fn q27_for_country(code: &str) -> Query {
    Query::scan("City").filter(Expr::col("CountryCode").eq(Expr::lit(code)))
}

/// Q31 parameterized by country code.
fn q31_for_country(code: &str) -> Query {
    Query::scan("Country")
        .filter(Expr::col("Code").eq(Expr::lit(code)))
        .join(Query::scan("City"), vec![("Capital", "ID")])
        .project_cols(&["District"])
}

/// Q29 parameterized by language.
fn q29_for_language(language: &str) -> Query {
    Query::scan("Country")
        .join(
            Query::scan("CountryLanguage"),
            vec![("Code", "CountryCode")],
        )
        .filter(Expr::col("Language").eq(Expr::lit(language)))
        .project_cols(&["Name"])
}

/// Q30 parameterized by language.
fn q30_for_language(language: &str) -> Query {
    Query::scan("Country")
        .join(
            Query::scan("CountryLanguage"),
            vec![("Code", "CountryCode")],
        )
        .filter(
            Expr::col("Language")
                .eq(Expr::lit(language))
                .and(Expr::col("Percentage").ge(Expr::lit(50.0))),
        )
        .project_cols(&["Name"])
}

/// Builds the full skewed workload for a generated world database: the 34
/// templates plus one instantiation of Q17/Q27/Q31 per country, Q1/Q12 per
/// continent, and Q29/Q30 per language (the paper's expansion to 986).
pub fn workload(db: &Database, num_countries: usize) -> Workload {
    let mut queries = base_queries();
    for i in 0..num_countries {
        let code = world::country_code(i);
        queries.push(q17_for_country(&code));
        queries.push(q27_for_country(&code));
        queries.push(q31_for_country(&code));
    }
    for continent in CONTINENTS {
        queries.push(q1_for_continent(continent));
        queries.push(q12_for_continent(continent));
    }
    for language in world::languages_in(db) {
        queries.push(q29_for_language(&language));
        queries.push(q30_for_language(&language));
    }
    Workload {
        name: "skewed",
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use crate::Scale;

    #[test]
    fn has_34_base_templates() {
        assert_eq!(base_queries().len(), 34);
    }

    #[test]
    fn all_base_templates_evaluate_on_the_dataset() {
        let db = world::generate(&WorldConfig::at_scale(Scale::Test));
        for (i, q) in base_queries().iter().enumerate() {
            assert!(q.evaluate(&db).is_ok(), "template Q{} failed", i + 1);
        }
    }

    #[test]
    fn expansion_matches_paper_scale() {
        let cfg = WorldConfig::at_scale(Scale::Quick);
        let db = world::generate(&cfg);
        let w = workload(&db, cfg.countries);
        // 34 + 3·239 + 2·7 + 2·|languages| ≈ 986 with the paper's domains.
        assert!(w.len() > 900, "workload has {} queries", w.len());
        assert!(w.len() < 1100);
    }

    #[test]
    fn expansion_queries_evaluate_on_small_scale() {
        let cfg = WorldConfig::at_scale(Scale::Test);
        let db = world::generate(&cfg);
        let w = workload(&db, cfg.countries);
        for q in &w.queries {
            assert!(q.evaluate(&db).is_ok());
        }
        assert_eq!(w.name, "skewed");
    }
}
