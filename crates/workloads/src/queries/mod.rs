//! The four query workloads of Table 3.
//!
//! * [`skewed`] — 34 hand-written templates over the `world` dataset
//!   (Appendix B, Table 7), expanded per country / continent / language to
//!   ≈986 queries. The resulting hyperedges are highly skewed in size.
//! * [`uniform`] — equal-selectivity selection/projection queries whose
//!   hyperedges all have roughly the same (large) size.
//! * TPC-H and SSB workloads live next to their dataset generators in
//!   [`crate::tpch`] and [`crate::ssb`].

pub mod skewed;
pub mod uniform;

use qp_qdb::Query;

/// A named workload: the queries plus the dataset identifier they run on.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable workload name (as used in the paper's tables).
    pub name: &'static str,
    /// The buyer queries.
    pub queries: Vec<Query>,
}

impl Workload {
    /// Number of queries `m`.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_reports_its_size() {
        let w = Workload {
            name: "tiny",
            queries: vec![Query::scan("T")],
        };
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }
}
