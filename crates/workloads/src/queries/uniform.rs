//! The uniform workload.
//!
//! Selection + projection queries with (approximately) the same selectivity:
//! sliding windows over the `City` table's key. Every query returns about the
//! same number of rows, so every hyperedge contains roughly the same fraction
//! of the support set and hyperedges overlap heavily — the structure shown in
//! Figure 4b of the paper.

use qp_qdb::{Database, Expr, Query};

use crate::queries::Workload;

/// Fraction of the table selected by every query (the paper's uniform
/// workload selects ≈40% of the support per query).
pub const WINDOW_FRACTION: f64 = 0.4;

/// Builds the uniform workload of `num_queries` equal-selectivity queries
/// over the `City` table of the world database.
pub fn workload(db: &Database, num_queries: usize) -> Workload {
    let cities = db.table("City").map(|r| r.len()).unwrap_or(0) as i64;
    let width = ((cities as f64) * WINDOW_FRACTION).round() as i64;
    let max_start = (cities - width).max(1);

    let mut queries = Vec::with_capacity(num_queries);
    for i in 0..num_queries {
        let start = if num_queries > 1 {
            (i as i64 * max_start) / (num_queries as i64 - 1)
        } else {
            0
        };
        queries.push(
            Query::scan("City")
                .filter(
                    Expr::col("ID")
                        .ge(Expr::lit(start))
                        .and(Expr::col("ID").lt(Expr::lit(start + width))),
                )
                .project_cols(&["Name", "CountryCode", "Population"]),
        );
    }
    Workload {
        name: "uniform",
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{self, WorldConfig};
    use crate::Scale;

    #[test]
    fn produces_requested_number_of_queries() {
        let db = world::generate(&WorldConfig::at_scale(Scale::Test));
        let w = workload(&db, 103);
        assert_eq!(w.len(), 103);
        assert_eq!(w.name, "uniform");
    }

    #[test]
    fn queries_have_similar_selectivity() {
        let db = world::generate(&WorldConfig::at_scale(Scale::Test));
        let w = workload(&db, 25);
        let sizes: Vec<usize> = w
            .queries
            .iter()
            .map(|q| q.evaluate(&db).unwrap().len())
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min > 0);
        // All within a small factor of each other (boundary windows can be
        // slightly clipped).
        assert!(
            max <= min + 2,
            "selectivities differ too much: {min}..{max}"
        );
        // Roughly 40% of the table.
        let cities = db.table("City").unwrap().len();
        assert!((min as f64) > 0.3 * cities as f64);
        assert!((max as f64) < 0.5 * cities as f64);
    }

    #[test]
    fn single_query_workload_is_valid() {
        let db = world::generate(&WorldConfig::at_scale(Scale::Test));
        let w = workload(&db, 1);
        assert_eq!(w.len(), 1);
        assert!(w.queries[0].evaluate(&db).is_ok());
    }
}
