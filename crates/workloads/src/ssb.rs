//! The Star Schema Benchmark (dataset + the 701-query workload).
//!
//! The paper prices 701 queries generated from the thirteen SSB templates by
//! parameterizing them over years (7), regions (5), nations (25), cities
//! (250) and (region, nation) pairs. The generator reproduces the star
//! schema (a `lineorder` fact table plus `date`, `customer`, `supplier`,
//! `part` dimensions) with exactly those categorical domains at a reduced
//! scale; the workload builder reproduces the 701 parameterized queries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qp_qdb::{AggFunc, ColumnType, Database, Expr, Query, Relation, Schema, Value};

use crate::queries::Workload;
use crate::Scale;

/// The five SSB regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Years covered by the `date` dimension.
pub const YEARS: [i64; 7] = [1992, 1993, 1994, 1995, 1996, 1997, 1998];

/// Number of nations (5 per region).
pub const NUM_NATIONS: usize = 25;

/// Number of customer cities (10 per nation).
pub const NUM_CITIES: usize = 250;

/// Name of nation `i`.
pub fn nation_name(i: usize) -> String {
    format!("NATION{i:02}")
}

/// Name of city `i`.
pub fn city_name(i: usize) -> String {
    format!("CITY{i:03}")
}

/// Region of nation `i`.
pub fn region_of_nation(i: usize) -> &'static str {
    REGIONS[i % REGIONS.len()]
}

/// Table cardinalities at a given scale.
#[derive(Debug, Clone)]
pub struct SsbConfig {
    /// Number of customers.
    pub customers: usize,
    /// Number of suppliers.
    pub suppliers: usize,
    /// Number of parts.
    pub parts: usize,
    /// Number of lineorder facts.
    pub lineorders: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SsbConfig {
    /// Configuration for a scale.
    pub fn at_scale(scale: Scale) -> SsbConfig {
        let f = scale.factor();
        SsbConfig {
            customers: 150 * f,
            suppliers: 50 * f,
            parts: 100 * f,
            lineorders: 700 * f,
            seed: 3,
        }
    }
}

/// Generates the scaled-down SSB database.
pub fn generate(config: &SsbConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new();

    // date(d_datekey, d_year, d_month)
    let mut date = Relation::new(Schema::new(vec![
        ("d_datekey", ColumnType::Int),
        ("d_year", ColumnType::Int),
        ("d_month", ColumnType::Int),
    ]));
    let days_per_year = 48;
    for (yi, &year) in YEARS.iter().enumerate() {
        for d in 0..days_per_year {
            date.push(vec![
                Value::Int((yi * days_per_year + d) as i64),
                Value::Int(year),
                Value::Int((d % 12) as i64 + 1),
            ])
            .unwrap();
        }
    }
    let num_dates = YEARS.len() * days_per_year;
    db.add_table("date", date);

    // customer(c_custkey, c_city, c_nation, c_region)
    let mut customer = Relation::new(Schema::new(vec![
        ("c_custkey", ColumnType::Int),
        ("c_city", ColumnType::Str),
        ("c_nation", ColumnType::Str),
        ("c_region", ColumnType::Str),
    ]));
    for i in 0..config.customers {
        let city = i % NUM_CITIES;
        let nation = city / 10; // 10 cities per nation
        customer
            .push(vec![
                Value::Int(i as i64),
                city_name(city).into(),
                nation_name(nation).into(),
                region_of_nation(nation).into(),
            ])
            .unwrap();
    }
    db.add_table("customer", customer);

    // supplier(s_suppkey, s_city, s_nation, s_region)
    let mut supplier = Relation::new(Schema::new(vec![
        ("s_suppkey", ColumnType::Int),
        ("s_city", ColumnType::Str),
        ("s_nation", ColumnType::Str),
        ("s_region", ColumnType::Str),
    ]));
    for i in 0..config.suppliers {
        let city = (i * 7) % NUM_CITIES;
        let nation = city / 10;
        supplier
            .push(vec![
                Value::Int(i as i64),
                city_name(city).into(),
                nation_name(nation).into(),
                region_of_nation(nation).into(),
            ])
            .unwrap();
    }
    db.add_table("supplier", supplier);

    // part(p_partkey, p_category, p_brand)
    let mut part = Relation::new(Schema::new(vec![
        ("p_partkey", ColumnType::Int),
        ("p_category", ColumnType::Str),
        ("p_brand", ColumnType::Str),
    ]));
    for i in 0..config.parts {
        part.push(vec![
            Value::Int(i as i64),
            format!("MFGR#{}", i % 25).into(),
            format!("BRAND#{}", i % 40).into(),
        ])
        .unwrap();
    }
    db.add_table("part", part);

    // lineorder(lo_orderkey, lo_custkey, lo_suppkey, lo_partkey, lo_orderdate,
    //           lo_quantity, lo_extendedprice, lo_discount, lo_revenue)
    let mut lineorder = Relation::new(Schema::new(vec![
        ("lo_orderkey", ColumnType::Int),
        ("lo_custkey", ColumnType::Int),
        ("lo_suppkey", ColumnType::Int),
        ("lo_partkey", ColumnType::Int),
        ("lo_orderdate", ColumnType::Int),
        ("lo_quantity", ColumnType::Int),
        ("lo_extendedprice", ColumnType::Float),
        ("lo_discount", ColumnType::Float),
        ("lo_revenue", ColumnType::Float),
    ]));
    for i in 0..config.lineorders {
        let price: f64 = rng.gen_range(1_000.0..60_000.0);
        let discount: f64 = rng.gen_range(0.0..0.1);
        lineorder
            .push(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..config.customers as i64)),
                Value::Int(rng.gen_range(0..config.suppliers as i64)),
                Value::Int(rng.gen_range(0..config.parts as i64)),
                Value::Int(rng.gen_range(0..num_dates as i64)),
                Value::Int(rng.gen_range(1..50)),
                Value::Float(price),
                Value::Float(discount),
                Value::Float(price * (1.0 - discount)),
            ])
            .unwrap();
    }
    db.add_table("lineorder", lineorder);

    db
}

/// Builds the 701-query SSB workload: 3 templates per year (21), 6 per region
/// (30), 1 per nation (25), 2 per city (500), 1 per (region, nation) pair
/// (125).
pub fn workload() -> Workload {
    let mut queries = Vec::with_capacity(701);

    // --- per year: the three Q1.x flight variants (21 queries) -------------
    for &year in &YEARS {
        for (qty_cap, disc_lo, disc_hi) in [(25, 0.01, 0.03), (35, 0.04, 0.06), (45, 0.05, 0.07)] {
            queries.push(
                Query::scan("lineorder")
                    .join(Query::scan("date"), vec![("lo_orderdate", "d_datekey")])
                    .filter(
                        Expr::col("d_year")
                            .eq(Expr::lit(year))
                            .and(Expr::col("lo_quantity").lt(Expr::lit(qty_cap)))
                            .and(
                                Expr::col("lo_discount")
                                    .between(Expr::lit(disc_lo), Expr::lit(disc_hi)),
                            ),
                    )
                    .project(vec![(
                        Expr::col("lo_extendedprice").mul(Expr::col("lo_discount")),
                        "revenue",
                    )])
                    .aggregate(vec![], vec![(AggFunc::Sum, Some("revenue"), "revenue")]),
            );
        }
    }

    // --- per region: six Q2.x / Q3.x / Q4.x style templates (30 queries) ---
    for region in REGIONS {
        // Q2-style: revenue by year for parts sold by suppliers of a region.
        queries.push(
            Query::scan("lineorder")
                .join(Query::scan("supplier"), vec![("lo_suppkey", "s_suppkey")])
                .join(Query::scan("date"), vec![("lo_orderdate", "d_datekey")])
                .filter(Expr::col("s_region").eq(Expr::lit(region)))
                .aggregate(
                    vec!["d_year"],
                    vec![(AggFunc::Sum, Some("lo_revenue"), "rev")],
                ),
        );
        // Q3-style: customer-nation revenue inside a customer region.
        queries.push(
            Query::scan("lineorder")
                .join(Query::scan("customer"), vec![("lo_custkey", "c_custkey")])
                .filter(Expr::col("c_region").eq(Expr::lit(region)))
                .aggregate(
                    vec!["c_nation"],
                    vec![(AggFunc::Sum, Some("lo_revenue"), "rev")],
                ),
        );
        // Q4-style: average quantity by supplier nation inside a region.
        queries.push(
            Query::scan("lineorder")
                .join(Query::scan("supplier"), vec![("lo_suppkey", "s_suppkey")])
                .filter(Expr::col("s_region").eq(Expr::lit(region)))
                .aggregate(
                    vec!["s_nation"],
                    vec![(AggFunc::Avg, Some("lo_quantity"), "q")],
                ),
        );
        // Customer-region order counts.
        queries.push(
            Query::scan("lineorder")
                .join(Query::scan("customer"), vec![("lo_custkey", "c_custkey")])
                .filter(Expr::col("c_region").eq(Expr::lit(region)))
                .aggregate(vec![], vec![(AggFunc::Count, None, "orders")]),
        );
        // Supplier-region discount statistics.
        queries.push(
            Query::scan("lineorder")
                .join(Query::scan("supplier"), vec![("lo_suppkey", "s_suppkey")])
                .filter(Expr::col("s_region").eq(Expr::lit(region)))
                .aggregate(
                    vec![],
                    vec![
                        (AggFunc::Avg, Some("lo_discount"), "avg_disc"),
                        (AggFunc::Max, Some("lo_revenue"), "max_rev"),
                    ],
                ),
        );
        // Customer-region revenue by year.
        queries.push(
            Query::scan("lineorder")
                .join(Query::scan("customer"), vec![("lo_custkey", "c_custkey")])
                .join(Query::scan("date"), vec![("lo_orderdate", "d_datekey")])
                .filter(Expr::col("c_region").eq(Expr::lit(region)))
                .aggregate(
                    vec!["d_year"],
                    vec![(AggFunc::Sum, Some("lo_revenue"), "rev")],
                ),
        );
    }

    // --- per nation: revenue of a customer nation (25 queries) -------------
    for n in 0..NUM_NATIONS {
        queries.push(
            Query::scan("lineorder")
                .join(Query::scan("customer"), vec![("lo_custkey", "c_custkey")])
                .filter(Expr::col("c_nation").eq(Expr::lit(nation_name(n).as_str())))
                .aggregate(vec![], vec![(AggFunc::Sum, Some("lo_revenue"), "rev")]),
        );
    }

    // --- per city: two templates (500 queries) ------------------------------
    for c in 0..NUM_CITIES {
        let city = city_name(c);
        // Q9-style: revenue for a customer city.
        queries.push(
            Query::scan("lineorder")
                .join(Query::scan("customer"), vec![("lo_custkey", "c_custkey")])
                .filter(Expr::col("c_city").eq(Expr::lit(city.as_str())))
                .aggregate(vec![], vec![(AggFunc::Sum, Some("lo_revenue"), "rev")]),
        );
        // Q10-style: yearly order count for a supplier city.
        queries.push(
            Query::scan("lineorder")
                .join(Query::scan("supplier"), vec![("lo_suppkey", "s_suppkey")])
                .join(Query::scan("date"), vec![("lo_orderdate", "d_datekey")])
                .filter(Expr::col("s_city").eq(Expr::lit(city.as_str())))
                .aggregate(vec!["d_year"], vec![(AggFunc::Count, None, "c")]),
        );
    }

    // --- per (region, nation) pair (125 queries) ----------------------------
    for region in REGIONS {
        for n in 0..NUM_NATIONS {
            queries.push(
                Query::scan("lineorder")
                    .join(Query::scan("customer"), vec![("lo_custkey", "c_custkey")])
                    .join(Query::scan("supplier"), vec![("lo_suppkey", "s_suppkey")])
                    .filter(
                        Expr::col("c_region")
                            .eq(Expr::lit(region))
                            .and(Expr::col("s_nation").eq(Expr::lit(nation_name(n).as_str()))),
                    )
                    .aggregate(vec![], vec![(AggFunc::Sum, Some("lo_revenue"), "rev")]),
            );
        }
    }

    Workload {
        name: "ssb",
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_701_queries() {
        assert_eq!(workload().len(), 701);
    }

    #[test]
    fn database_has_five_tables_and_expected_sizes() {
        let cfg = SsbConfig::at_scale(Scale::Test);
        let db = generate(&cfg);
        assert_eq!(db.num_tables(), 5);
        assert_eq!(db.table("lineorder").unwrap().len(), cfg.lineorders);
        assert_eq!(db.table("date").unwrap().len(), YEARS.len() * 48);
        assert_eq!(generate(&cfg), db);
    }

    #[test]
    fn a_sample_of_queries_evaluates() {
        let db = generate(&SsbConfig::at_scale(Scale::Test));
        let w = workload();
        // Evaluating all 701 joins on the test database is slow in debug
        // builds; a strided sample still covers every template family.
        for (i, q) in w.queries.iter().enumerate().step_by(23) {
            assert!(q.evaluate(&db).is_ok(), "SSB query {i} failed");
        }
    }

    #[test]
    fn city_domain_supports_empty_answers() {
        // With 250 cities and a reduced customer table, some city-filtered
        // queries return empty answers — exactly the source of the
        // zero-size hyperedges the paper reports for SSB.
        let db = generate(&SsbConfig::at_scale(Scale::Test));
        let empty_city = Query::scan("customer")
            .filter(Expr::col("c_city").eq(Expr::lit(city_name(NUM_CITIES - 1).as_str())))
            .aggregate(vec![], vec![(AggFunc::Count, None, "c")]);
        let out = empty_city.evaluate(&db).unwrap();
        assert!(out.rows()[0][0].as_i64().unwrap() <= 2);
    }
}
