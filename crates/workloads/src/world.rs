//! The `world` dataset.
//!
//! A deterministic synthetic stand-in for MySQL's classic `world` sample
//! database (3 tables — `Country`, `City`, `CountryLanguage` — 21 attributes,
//! ~5 000 tuples), which the paper uses for the skewed and uniform query
//! workloads. The generator reproduces the schema and the categorical domains
//! the workload templates parameterize over (continents, regions, languages,
//! government forms); numeric columns are drawn deterministically from wide
//! ranges so that selection predicates have realistic selectivities.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qp_qdb::{ColumnType, Database, Relation, Schema, Value};

use crate::Scale;

/// The seven continents (domain of `Country.Continent`).
pub const CONTINENTS: [&str; 7] = [
    "Asia",
    "Europe",
    "North America",
    "Africa",
    "Oceania",
    "Antarctica",
    "South America",
];

/// Regions (domain of `Country.Region`).
pub const REGIONS: [&str; 15] = [
    "Caribbean",
    "Southern Europe",
    "Western Europe",
    "Eastern Europe",
    "Nordic Countries",
    "Middle East",
    "Southeast Asia",
    "Eastern Asia",
    "Southern Asia",
    "Central Africa",
    "Eastern Africa",
    "Western Africa",
    "South America",
    "Central America",
    "Polynesia",
];

/// Government forms (domain of `Country.GovernmentForm`).
pub const GOVERNMENT_FORMS: [&str; 10] = [
    "Republic",
    "Constitutional Monarchy",
    "Federal Republic",
    "Monarchy",
    "Federation",
    "Parliamentary Democracy",
    "Socialist Republic",
    "Commonwealth",
    "Territory",
    "Emirate",
];

/// Number of distinct languages generated (domain of
/// `CountryLanguage.Language`). Chosen so the skewed workload expands to
/// roughly the paper's 986 queries at `Scale::Quick`.
pub const NUM_LANGUAGES: usize = 110;

/// Configuration of the world-dataset generator.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of countries.
    pub countries: usize,
    /// Number of cities.
    pub cities: usize,
    /// Number of `CountryLanguage` rows.
    pub country_languages: usize,
    /// RNG seed.
    pub seed: u64,
}

impl WorldConfig {
    /// The configuration used at a given experiment scale.
    pub fn at_scale(scale: Scale) -> WorldConfig {
        match scale {
            Scale::Test => WorldConfig {
                countries: 60,
                cities: 120,
                country_languages: 90,
                seed: 1,
            },
            Scale::Quick => WorldConfig {
                countries: 239,
                cities: 700,
                country_languages: 500,
                seed: 1,
            },
            Scale::Full => WorldConfig {
                countries: 239,
                cities: 2500,
                country_languages: 984,
                seed: 1,
            },
        }
    }
}

/// Country code of country `i` (three uppercase letters, unique).
pub fn country_code(i: usize) -> String {
    let a = (b'A' + (i / 676) as u8 % 26) as char;
    let b = (b'A' + (i / 26) as u8 % 26) as char;
    let c = (b'A' + (i % 26) as u8) as char;
    format!("{a}{b}{c}")
}

/// Country name of country `i`.
pub fn country_name(i: usize) -> String {
    format!("Country{i:03}")
}

/// Language name of language `i`.
pub fn language_name(i: usize) -> String {
    format!("Language{i:03}")
}

/// Generates the world database.
pub fn generate(config: &WorldConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new();

    // ---- Country ---------------------------------------------------------
    let country_schema = Schema::new(vec![
        ("Code", ColumnType::Str),
        ("Name", ColumnType::Str),
        ("Continent", ColumnType::Str),
        ("Region", ColumnType::Str),
        ("SurfaceArea", ColumnType::Float),
        ("Population", ColumnType::Int),
        ("LifeExpectancy", ColumnType::Float),
        ("GovernmentForm", ColumnType::Str),
        ("Capital", ColumnType::Int),
    ]);
    let mut country = Relation::new(country_schema);
    for i in 0..config.countries {
        let continent = CONTINENTS[i % CONTINENTS.len()];
        let region = REGIONS[(i * 7 + i / 3) % REGIONS.len()];
        let population: i64 = rng.gen_range(100_000..200_000_000);
        country
            .push(vec![
                country_code(i).into(),
                country_name(i).into(),
                continent.into(),
                region.into(),
                Value::Float(rng.gen_range(1_000.0..2_000_000.0)),
                Value::Int(population),
                Value::Float(rng.gen_range(45.0..85.0)),
                GOVERNMENT_FORMS[i % GOVERNMENT_FORMS.len()].into(),
                Value::Int((i % config.cities.max(1)) as i64),
            ])
            .expect("country tuple arity");
    }
    db.add_table("Country", country);

    // ---- City -------------------------------------------------------------
    let city_schema = Schema::new(vec![
        ("ID", ColumnType::Int),
        ("Name", ColumnType::Str),
        ("CountryCode", ColumnType::Str),
        ("District", ColumnType::Str),
        ("Population", ColumnType::Int),
    ]);
    let mut city = Relation::new(city_schema);
    for i in 0..config.cities {
        let owner = rng.gen_range(0..config.countries);
        city.push(vec![
            Value::Int(i as i64),
            format!("City{i:04}").into(),
            country_code(owner).into(),
            format!("District{}", i % 40).into(),
            Value::Int(rng.gen_range(5_000..12_000_000)),
        ])
        .expect("city tuple arity");
    }
    db.add_table("City", city);

    // ---- CountryLanguage ---------------------------------------------------
    let lang_schema = Schema::new(vec![
        ("CountryCode", ColumnType::Str),
        ("Language", ColumnType::Str),
        ("IsOfficial", ColumnType::Str),
        ("Percentage", ColumnType::Float),
    ]);
    let mut lang = Relation::new(lang_schema);
    for i in 0..config.country_languages {
        let owner = i % config.countries;
        let language = language_name((i * 13 + owner) % NUM_LANGUAGES);
        lang.push(vec![
            country_code(owner).into(),
            language.into(),
            if rng.gen_bool(0.3) {
                "T".into()
            } else {
                "F".into()
            },
            Value::Float(rng.gen_range(0.1..100.0)),
        ])
        .expect("language tuple arity");
    }
    db.add_table("CountryLanguage", lang);

    db
}

/// The distinct languages present in the generated database (domain used to
/// expand the skewed workload).
pub fn languages_in(db: &Database) -> Vec<String> {
    let rel = db.table("CountryLanguage").expect("CountryLanguage exists");
    let idx = rel.schema().index_of("Language").expect("Language column");
    let mut langs: Vec<String> = rel.rows().iter().map(|r| r[idx].to_string()).collect();
    langs.sort();
    langs.dedup();
    langs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_three_tables_with_requested_cardinalities() {
        let cfg = WorldConfig::at_scale(Scale::Test);
        let db = generate(&cfg);
        assert_eq!(db.num_tables(), 3);
        assert_eq!(db.table("Country").unwrap().len(), cfg.countries);
        assert_eq!(db.table("City").unwrap().len(), cfg.cities);
        assert_eq!(
            db.table("CountryLanguage").unwrap().len(),
            cfg.country_languages
        );
        // 21 attributes in total, as in the original dataset.
        let total_cols: usize = ["Country", "City", "CountryLanguage"]
            .iter()
            .map(|t| db.table(t).unwrap().schema().arity())
            .sum();
        assert_eq!(total_cols, 9 + 5 + 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorldConfig::at_scale(Scale::Test);
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn country_codes_are_unique() {
        let cfg = WorldConfig::at_scale(Scale::Quick);
        let mut codes: Vec<String> = (0..cfg.countries).map(country_code).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), cfg.countries);
    }

    #[test]
    fn foreign_keys_reference_existing_countries() {
        let cfg = WorldConfig::at_scale(Scale::Test);
        let db = generate(&cfg);
        let codes: Vec<String> = (0..cfg.countries).map(country_code).collect();
        let city = db.table("City").unwrap();
        let cc = city.schema().index_of("CountryCode").unwrap();
        for row in city.rows() {
            assert!(codes.contains(&row[cc].to_string()));
        }
    }

    #[test]
    fn language_domain_is_bounded() {
        let cfg = WorldConfig::at_scale(Scale::Quick);
        let db = generate(&cfg);
        let langs = languages_in(&db);
        assert!(!langs.is_empty());
        assert!(langs.len() <= NUM_LANGUAGES);
    }
}
