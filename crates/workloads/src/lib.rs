//! # qp-workloads — datasets, query workloads, and buyer-valuation models
//!
//! Everything the paper's experimental section (§6) takes as input:
//!
//! * **Datasets** — deterministic synthetic generators for the `world`
//!   database ([`world`]), the TPC-H benchmark subset used by Qirana
//!   ([`tpch`]), and the Star Schema Benchmark ([`ssb`]). The paper runs on
//!   MySQL copies of the original data; here the generators reproduce the
//!   schemas and the value-domain structure (continents, regions, languages,
//!   part types, years, …) that the query templates parameterize over, at a
//!   laptop-friendly scale controlled by [`Scale`].
//! * **Query workloads** — the four workloads of Table 3: the *skewed*
//!   workload of 986 queries over `world` (Appendix B), the *uniform*
//!   workload of ~1000 equal-selectivity selections, the *TPC-H* workload of
//!   220 parameterized queries (Appendix C) and the *SSB* workload of 701
//!   parameterized queries.
//! * **Valuation models** ([`valuations`]) — sampled bundle valuations
//!   (Uniform, Zipf), scaled bundle valuations (Exponential / Normal in
//!   `|e|^k`) and the additive item-price model with `D̃ ∈ {Uniform,
//!   Binomial}`.
//! * **Distributions** ([`dist`]) — the Zipf / Normal / Exponential /
//!   Binomial samplers the valuation models need, implemented on top of
//!   `rand` so no extra dependency is required.
//! * **Arrival processes** ([`arrivals`]) — tick-based Poisson / bursty /
//!   flash-crowd traffic shapes that turn these static workloads into the
//!   time-varying buyer streams the `qp-sim` market simulator replays.

pub mod arrivals;
pub mod dist;
pub mod queries;
pub mod ssb;
pub mod tpch;
pub mod valuations;
pub mod world;

/// Dataset / workload scale.
///
/// The paper runs the world dataset at 5 000 tuples with a support of 15 000,
/// and TPC-H / SSB at scale factor 1 (≈10 M rows) with supports of 100 000.
/// Those sizes need hours of conflict-set construction even in the original
/// system; the scales below keep every experiment runnable in minutes while
/// preserving the hypergraph *structure* (relative edge sizes, degrees,
/// unique-item distribution) that drives the algorithms' behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny instances for unit/integration tests (seconds).
    Test,
    /// Default experiment scale (a few thousand tuples per dataset).
    Quick,
    /// Larger instances approaching the paper's setup (minutes per figure).
    Full,
}

impl Scale {
    /// Multiplier applied to base table cardinalities.
    pub fn factor(self) -> usize {
        match self {
            Scale::Test => 1,
            Scale::Quick => 4,
            Scale::Full => 12,
        }
    }

    /// Default support-set size used with this scale.
    pub fn default_support(self) -> usize {
        match self {
            Scale::Test => 150,
            Scale::Quick => 1500,
            Scale::Full => 6000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_are_increasing() {
        assert!(Scale::Test.factor() < Scale::Quick.factor());
        assert!(Scale::Quick.factor() < Scale::Full.factor());
        assert!(Scale::Test.default_support() < Scale::Full.default_support());
    }
}
