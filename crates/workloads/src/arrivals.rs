//! Buyer arrival processes for traffic simulation.
//!
//! The paper evaluates pricing on static hypergraph instances; driving a live
//! broker requires a model of *when* buyers show up. This module provides the
//! three traffic shapes the `qp-sim` scenario library is built from, all
//! tick-based and fully deterministic in the caller's RNG:
//!
//! * [`ArrivalProcess::Poisson`] — a memoryless stream at a constant mean
//!   rate, sampled per tick by accumulating exponential inter-arrival times
//!   (the classical construction: the count of renewals in a unit interval).
//! * [`ArrivalProcess::Bursty`] — a Poisson base stream punctuated by
//!   periodic high-rate ticks (batch jobs, market opens).
//! * [`ArrivalProcess::FlashCrowd`] — a base stream with one contiguous
//!   high-rate window (a viral link, a data release).

use rand::Rng;

use crate::dist;

/// A tick-based buyer arrival process.
///
/// Every variant reduces to "a Poisson draw at [`ArrivalProcess::rate_at`]
/// for the current tick", so the shapes differ only in how the mean rate
/// moves over time — which keeps scenario comparisons apples-to-apples.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// A constant mean of `rate` arrivals per tick.
    Poisson {
        /// Mean arrivals per tick (may be fractional).
        rate: f64,
    },
    /// `base_rate` arrivals per tick, except every `burst_every`-th tick
    /// (ticks `0, burst_every, 2·burst_every, …`) which runs at `burst_rate`.
    Bursty {
        /// Mean arrivals on ordinary ticks.
        base_rate: f64,
        /// Burst period in ticks (0 disables bursts).
        burst_every: u64,
        /// Mean arrivals on burst ticks.
        burst_rate: f64,
    },
    /// `base_rate` arrivals per tick, except the window
    /// `start..start + duration` which runs at `peak_rate`.
    FlashCrowd {
        /// Mean arrivals outside the crowd window.
        base_rate: f64,
        /// Mean arrivals inside the crowd window.
        peak_rate: f64,
        /// First tick of the crowd.
        start: u64,
        /// Length of the crowd in ticks.
        duration: u64,
    },
}

impl ArrivalProcess {
    /// Short label used in simulation reports.
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Poisson { rate } => format!("poisson({rate}/tick)"),
            ArrivalProcess::Bursty {
                base_rate,
                burst_every,
                burst_rate,
            } => format!("bursty({base_rate}/tick, {burst_rate} every {burst_every})"),
            ArrivalProcess::FlashCrowd {
                base_rate,
                peak_rate,
                start,
                duration,
            } => format!("flash-crowd({base_rate}→{peak_rate} @ {start}+{duration})"),
        }
    }

    /// The mean arrival rate at `tick`.
    pub fn rate_at(&self, tick: u64) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate } => *rate,
            ArrivalProcess::Bursty {
                base_rate,
                burst_every,
                burst_rate,
            } => {
                if *burst_every > 0 && tick.is_multiple_of(*burst_every) {
                    *burst_rate
                } else {
                    *base_rate
                }
            }
            ArrivalProcess::FlashCrowd {
                base_rate,
                peak_rate,
                start,
                duration,
            } => {
                if tick >= *start && tick < start.saturating_add(*duration) {
                    *peak_rate
                } else {
                    *base_rate
                }
            }
        }
    }

    /// Samples the number of buyers arriving during `tick`: a Poisson draw
    /// with mean [`ArrivalProcess::rate_at`], realized as the number of
    /// exponential inter-arrival gaps that fit in the unit tick interval.
    pub fn arrivals_at<R: Rng + ?Sized>(&self, tick: u64, rng: &mut R) -> usize {
        poisson_count(rng, self.rate_at(tick))
    }
}

/// Counts renewals of an exponential(mean `1/rate`) inter-arrival clock
/// within one unit of time — a Poisson(`rate`) variate.
fn poisson_count<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> usize {
    if rate <= 0.0 || !rate.is_finite() {
        return 0;
    }
    let mean_gap = 1.0 / rate;
    let mut elapsed = dist::exponential(rng, mean_gap);
    let mut count = 0usize;
    while elapsed < 1.0 {
        count += 1;
        elapsed += dist::exponential(rng, mean_gap);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_arrivals(p: &ArrivalProcess, tick: u64, draws: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(7);
        (0..draws)
            .map(|_| p.arrivals_at(tick, &mut rng) as f64)
            .sum::<f64>()
            / draws as f64
    }

    #[test]
    fn poisson_mean_matches_rate() {
        for rate in [0.5, 3.0, 12.0] {
            let p = ArrivalProcess::Poisson { rate };
            let mean = mean_arrivals(&p, 0, 20_000);
            assert!(
                (mean - rate).abs() < 0.15 * rate.max(1.0),
                "rate {rate}: mean {mean}"
            );
        }
    }

    #[test]
    fn zero_and_negative_rates_produce_no_arrivals() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = ArrivalProcess::Poisson { rate: 0.0 };
        assert!((0..100).all(|t| p.arrivals_at(t, &mut rng) == 0));
        let n = ArrivalProcess::Poisson { rate: -2.0 };
        assert!((0..100).all(|t| n.arrivals_at(t, &mut rng) == 0));
    }

    #[test]
    fn bursty_rate_spikes_on_the_period() {
        let p = ArrivalProcess::Bursty {
            base_rate: 2.0,
            burst_every: 5,
            burst_rate: 20.0,
        };
        assert_eq!(p.rate_at(0), 20.0);
        assert_eq!(p.rate_at(1), 2.0);
        assert_eq!(p.rate_at(5), 20.0);
        assert_eq!(p.rate_at(7), 2.0);
        // A zero period disables bursts entirely.
        let q = ArrivalProcess::Bursty {
            base_rate: 2.0,
            burst_every: 0,
            burst_rate: 20.0,
        };
        assert!((0..20).all(|t| q.rate_at(t) == 2.0));
    }

    #[test]
    fn flash_crowd_window_is_half_open() {
        let p = ArrivalProcess::FlashCrowd {
            base_rate: 1.0,
            peak_rate: 15.0,
            start: 10,
            duration: 5,
        };
        assert_eq!(p.rate_at(9), 1.0);
        assert_eq!(p.rate_at(10), 15.0);
        assert_eq!(p.rate_at(14), 15.0);
        assert_eq!(p.rate_at(15), 1.0);
        // The crowd raises the realized arrival mean, not just the rate.
        assert!(mean_arrivals(&p, 12, 4000) > 3.0 * mean_arrivals(&p, 0, 4000).max(0.5));
    }

    #[test]
    fn arrivals_are_deterministic_in_the_rng_seed() {
        let p = ArrivalProcess::FlashCrowd {
            base_rate: 3.0,
            peak_rate: 9.0,
            start: 4,
            duration: 3,
        };
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|t| p.arrivals_at(t, &mut rng)).collect()
        };
        assert_eq!(draw(99), draw(99));
        assert_ne!(draw(99), draw(100));
    }

    #[test]
    fn labels_name_the_shape() {
        assert!(ArrivalProcess::Poisson { rate: 4.0 }
            .label()
            .contains("poisson"));
        assert!(ArrivalProcess::Bursty {
            base_rate: 1.0,
            burst_every: 3,
            burst_rate: 9.0
        }
        .label()
        .contains("bursty"));
        assert!(ArrivalProcess::FlashCrowd {
            base_rate: 1.0,
            peak_rate: 9.0,
            start: 2,
            duration: 4
        }
        .label()
        .contains("flash"));
    }
}
