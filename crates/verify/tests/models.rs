//! Acceptance tests for the model catalog: core invariants hold over at
//! least 1,000 distinct interleavings each, and every seeded-bug variant
//! is caught with a schedule that replays to the same failure.

use qp_verify::models::{catalog, run_catalog};
use qp_verify::Config;

#[test]
fn core_models_hold_over_at_least_1000_interleavings() {
    for spec in catalog().into_iter().filter(|s| !s.expect_failure) {
        let report = spec.check(&Config::with_max_schedules(1_500));
        assert!(
            report.failure.is_none(),
            "{}: invariant violated: {}",
            spec.name,
            report.failure.unwrap()
        );
        assert!(
            report.schedules >= 1_000,
            "{}: only {} interleavings explored",
            spec.name,
            report.schedules
        );
    }
}

#[test]
fn seeded_bugs_are_caught_with_replayable_schedules() {
    for spec in catalog().into_iter().filter(|s| s.expect_failure) {
        let report = spec.check(&Config::default());
        let failure = report
            .failure
            .unwrap_or_else(|| panic!("{}: seeded bug not caught", spec.name));
        assert!(
            !failure.schedule.is_empty(),
            "{}: empty counterexample schedule",
            spec.name
        );
        let replayed = spec
            .replay(&failure.schedule)
            .expect_err("replaying the counterexample must reproduce the failure");
        assert_eq!(
            replayed.message, failure.message,
            "{}: replay diverged from the original failure",
            spec.name
        );
    }
}

#[test]
fn seeded_bugs_are_caught_even_under_the_smoke_budget() {
    for spec in catalog().into_iter().filter(|s| s.expect_failure) {
        let report = spec.check(&Config::smoke());
        assert!(
            report.failure.is_some(),
            "{}: seeded bug escaped the smoke budget",
            spec.name
        );
    }
}

#[test]
fn run_catalog_verdicts_are_all_ok() {
    for v in run_catalog(&Config::smoke()) {
        assert!(
            v.ok(),
            "{}: verdict not ok (expect_failure={}, failure={:?}, replay={:?})",
            v.name,
            v.expect_failure,
            v.report.failure,
            v.replay_confirmed
        );
    }
}
