//! Managed thread spawning for models.
//!
//! [`spawn`] inside a model run registers the thread with the scheduler so
//! its execution is interleaved deterministically; outside a run it
//! delegates to `std::thread::spawn`. Handles carry the closure's return
//! value either way, and `join` is a scheduler yield point that only
//! becomes enabled once the target thread has finished — so a join can
//! never be used to smuggle an unschedulable wait into a model.

use crate::scheduler::{self, Op, Tid};
use std::sync::mpsc;

enum Inner<T> {
    Managed { tid: Tid, result: mpsc::Receiver<T> },
    Os(std::thread::JoinHandle<T>),
}

/// Handle to a spawned thread; see [`spawn`].
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its closure's value.
    ///
    /// In a model, panics on the target thread surface through the
    /// scheduler as run failures rather than through this call.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Managed { tid, result } => {
                scheduler::acquire(Op::Join(tid));
                result
                    .try_recv()
                    .map_err(|e| Box::new(e) as Box<dyn std::any::Any + Send>)
            }
            Inner::Os(h) => h.join(),
        }
    }
}

/// Spawns a thread: scheduler-managed inside a model run, plain
/// `std::thread` outside one.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if scheduler::in_model() {
        let (tx, rx) = mpsc::channel();
        let tid = scheduler::spawn_managed(Box::new(move || {
            let _ = tx.send(f());
        }));
        JoinHandle(Inner::Managed { tid, result: rx })
    } else {
        JoinHandle(Inner::Os(std::thread::spawn(f)))
    }
}
