//! `qp-verify` CLI — run the concurrency-model catalog.
//!
//! ```text
//! qp-verify                      # full budget (default 2000 schedules/model)
//! qp-verify --smoke              # CI budget: 300 schedules, preemption bound 3
//! qp-verify --max 5000           # raise the per-model schedule budget
//! qp-verify --model NAME         # check a single catalog model
//! qp-verify --replay NAME 0,1,2  # re-execute one schedule of one model
//! qp-verify --list               # list catalog models
//! ```
//!
//! Exit status is non-zero when any model's outcome differs from its
//! expectation: a core model with a counterexample, a seeded-bug model the
//! checker failed to catch, or a counterexample that does not replay.

use qp_verify::models::{catalog, run_catalog, ModelVerdict};
use qp_verify::{parse_schedule, Config};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: qp-verify [--smoke] [--max N] [--model NAME] [--replay NAME SCHEDULE] [--list]"
    );
    ExitCode::from(2)
}

fn print_verdict(v: &ModelVerdict) {
    let budget = if v.report.truncated {
        " (budget-capped)"
    } else {
        " (exhaustive)"
    };
    match (&v.report.failure, v.expect_failure) {
        (None, false) => println!(
            "PASS  {:<32} {:>6} interleavings{budget}, invariant held on all",
            v.name, v.report.schedules
        ),
        (Some(f), true) => {
            let replayed = if v.replay_confirmed == Some(true) {
                "replay confirmed"
            } else {
                "REPLAY FAILED"
            };
            println!(
                "PASS  {:<32} seeded bug caught after {} clean interleavings ({replayed})",
                v.name, v.report.schedules
            );
            println!("      counterexample: {f}");
        }
        (Some(f), false) => {
            println!("FAIL  {:<32} invariant violated", v.name);
            println!("      counterexample: {f}");
            println!(
                "      reproduce: cargo run --release -p qp-verify -- --replay {} \"{}\"",
                v.name,
                f.schedule_string()
            );
        }
        (None, true) => println!(
            "FAIL  {:<32} seeded bug NOT caught in {} interleavings{budget}",
            v.name, v.report.schedules
        ),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config::default();
    let mut only: Option<String> = None;
    let mut replay_req: Option<(String, String)> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => cfg = Config::smoke(),
            "--max" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => cfg.max_schedules = n,
                    None => return usage(),
                }
            }
            "--model" => {
                i += 1;
                match args.get(i) {
                    Some(name) => only = Some(name.clone()),
                    None => return usage(),
                }
            }
            "--replay" => {
                i += 2;
                match (args.get(i - 1), args.get(i)) {
                    (Some(name), Some(sched)) => replay_req = Some((name.clone(), sched.clone())),
                    _ => return usage(),
                }
            }
            "--list" => {
                for spec in catalog() {
                    let kind = if spec.expect_failure {
                        "seeded-bug"
                    } else {
                        "invariant "
                    };
                    println!("{kind}  {:<32} {}", spec.name, spec.about);
                }
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
        i += 1;
    }

    if let Some((name, sched)) = replay_req {
        let Some(schedule) = parse_schedule(&sched) else {
            eprintln!("qp-verify: malformed schedule '{sched}' (expected e.g. \"0,1,2\")");
            return ExitCode::from(2);
        };
        let Some(spec) = catalog().into_iter().find(|s| s.name == name) else {
            eprintln!("qp-verify: no model named '{name}' (see --list)");
            return ExitCode::from(2);
        };
        return match spec.replay(&schedule) {
            Err(f) => {
                println!("replayed {name}: {f}");
                ExitCode::SUCCESS
            }
            Ok(()) => {
                println!("replayed {name}: schedule completed without violation");
                ExitCode::FAILURE
            }
        };
    }

    let verdicts: Vec<ModelVerdict> = match only {
        Some(name) => match catalog().into_iter().find(|s| s.name == name) {
            Some(spec) => {
                let report = spec.check(&cfg);
                let replay_confirmed = report.failure.as_ref().map(|f| {
                    spec.replay(&f.schedule)
                        .err()
                        .is_some_and(|r| r.message == f.message)
                });
                vec![ModelVerdict {
                    name: spec.name,
                    expect_failure: spec.expect_failure,
                    report,
                    replay_confirmed,
                }]
            }
            None => {
                eprintln!("qp-verify: no model named '{name}' (see --list)");
                return ExitCode::from(2);
            }
        },
        None => run_catalog(&cfg),
    };

    let mut all_ok = true;
    for v in &verdicts {
        print_verdict(v);
        all_ok &= v.ok();
    }
    if all_ok {
        println!(
            "qp-verify: all {} models behaved as expected",
            verdicts.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("qp-verify: FAILURES above");
        ExitCode::FAILURE
    }
}
